//! The paper's §7 outlook: "a periodic scheduler might give even better
//! results than the [online] one proposed in this paper". Compare the
//! §3.2 periodic scheduler (full knowledge, precomputed timetable)
//! against the §3.1 online heuristics on the same periodic applications.
//!
//! ```sh
//! cargo run --release --example periodic_vs_online
//! ```

use hpc_io_sched::core::heuristics::{MaxSysEff, MinDilation};
use hpc_io_sched::core::periodic::{
    InsertionHeuristic, PeriodSearch, PeriodicAppSpec, PeriodicObjective,
};
use hpc_io_sched::model::Platform;
use hpc_io_sched::sim::{simulate, SimConfig};
use hpc_io_sched::workload::congestion::congested_moment;

fn main() {
    let platform = Platform::intrepid();
    let apps = congested_moment(&platform, 21);
    let periodic_specs: Vec<PeriodicAppSpec> = apps
        .iter()
        .map(|a| PeriodicAppSpec::from_app(a).expect("generator emits periodic apps"))
        .collect();

    println!("== online heuristics (event-driven, no lookahead) ==");
    for (name, policy) in [
        (
            "mindilation",
            &mut MinDilation as &mut dyn hpc_io_sched::core::policy::OnlinePolicy,
        ),
        ("maxsyseff", &mut MaxSysEff),
    ] {
        let out = simulate(&platform, &apps, policy, &SimConfig::default()).unwrap();
        println!(
            "  {name:<12} SysEfficiency {:>5.1}%   Dilation {:>5.2}",
            out.report.sys_efficiency * 100.0,
            out.report.dilation
        );
    }

    println!("\n== periodic schedules (full knowledge, (1+eps) period search) ==");
    for (label, heuristic, objective) in [
        (
            "insert-in-schedule-cong ",
            InsertionHeuristic::Congestion,
            PeriodicObjective::Dilation,
        ),
        (
            "insert-in-schedule-throu",
            InsertionHeuristic::Throughput,
            PeriodicObjective::SysEfficiency,
        ),
    ] {
        let result = PeriodSearch::new(objective)
            .with_epsilon(0.05)
            .run(&platform, &periodic_specs, heuristic)
            .expect("non-empty application set");
        println!(
            "  {label} T = {:>7.1}s  SysEfficiency {:>5.1}%   Dilation {:>5}   ({} periods tried)",
            result.schedule.period.as_secs(),
            result.report.sys_efficiency * 100.0,
            if result.report.dilation.is_finite() {
                format!("{:.2}", result.report.dilation)
            } else {
                "inf".into()
            },
            result.candidates_tried,
        );
        result
            .schedule
            .validate(&platform)
            .expect("search returns valid schedules");
    }
    println!("\n(the periodic schedule trades online adaptivity for a precomputed,");
    println!(" contention-free timetable — §7 expects it to complement the online mode)");
}
