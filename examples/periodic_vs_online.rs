//! The paper's §7 outlook: "a periodic scheduler might give even better
//! results than the [online] one proposed in this paper". Since the
//! scenario-aware policy registry, that comparison is *one campaign*:
//! the §3.1 online heuristics and the §3.2 periodic schedulers sit on
//! the same policy axis, and the runner builds each `periodic:*` entry's
//! timetable from the scenario it is about to simulate.
//!
//! ```sh
//! cargo run --release --example periodic_vs_online
//! ```

use iosched_bench::campaign::{run_campaign, CampaignSpec, PlatformSpec};
use iosched_bench::runner::ScenarioRunner;
use iosched_bench::scenario::PolicySpec;
use iosched_workload::WorkloadSpec;

fn main() {
    let spec = CampaignSpec {
        name: "periodic-vs-online".into(),
        platforms: vec![PlatformSpec::Preset("intrepid".into())],
        workloads: vec![WorkloadSpec::Congestion { seed: 0 }],
        // Both periodic entries use Congestion insertion: Throughput
        // insertion packs I/O-cheap applications exhaustively and can
        // starve an application on a congested moment, which the
        // registry rejects with a labeled error rather than replaying a
        // timetable that never grants it.
        policies: [
            "mindilation",
            "maxsyseff",
            "minmax-0.5",
            "periodic:cong",
            "periodic:cong:syseff",
        ]
        .iter()
        .map(|name| PolicySpec::parse(name).expect("roster name"))
        .collect(),
        // A handful of the Tables-1 congested moments.
        seeds: vec![21, 22, 23, 24],
        config: None,
        threads: None,
    };
    let result = run_campaign(&spec, &ScenarioRunner::new())
        .expect("congested moments schedule cleanly under both families");

    println!("== online heuristics vs offline periodic schedules (Intrepid congested moments) ==");
    for cell in &result.cells {
        println!(
            "  {:<24} {:<8} SysEfficiency {:>5.1}%   Dilation {:>6.2}   ({} cases)",
            cell.policy,
            if cell.policy.starts_with("periodic:") {
                "offline"
            } else {
                "online"
            },
            cell.sys_efficiency.mean * 100.0,
            cell.dilation.mean,
            cell.runs,
        );
    }
    println!("\n(the periodic schedule trades online adaptivity for a precomputed,");
    println!(" contention-free timetable — §7 expects it to complement the online mode;");
    println!(" the same sweep runs from JSON via `iosched campaign`)");
}
