//! The paper's striking result (§1, §4.4): the global scheduler *without*
//! burst buffers outperforms the native scheduler *with* them. This
//! example sweeps the burst-buffer capacity to show where the crossover
//! sits.
//!
//! ```sh
//! cargo run --release --example burst_buffer_study
//! ```

use hpc_io_sched::baselines::{native_platform, run_native, NativeConfig};
use hpc_io_sched::core::heuristics::MaxSysEff;
use hpc_io_sched::model::{BurstBufferSpec, Platform, Time};
use hpc_io_sched::sim::{simulate, SimConfig};
use hpc_io_sched::workload::congestion::congested_moment;

fn main() {
    let base = native_platform(Platform::intrepid());
    let apps = congested_moment(&base, 11);

    // Our heuristic, no burst buffer at all.
    let ours = simulate(&base, &apps, &mut MaxSysEff, &SimConfig::default()).unwrap();
    println!(
        "MaxSysEff without burst buffers: SysEfficiency {:.1}%  Dilation {:.2}\n",
        ours.report.sys_efficiency * 100.0,
        ours.report.dilation
    );

    println!("native scheduler WITH burst buffers of increasing capacity:");
    println!("capacity (s of B)   SysEfficiency    vs MaxSysEff/no-BB");
    println!("------------------------------------------------------");
    for secs in [0.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0] {
        let out = if secs == 0.0 {
            run_native(
                &base,
                &apps,
                NativeConfig {
                    burst_buffers: false,
                },
            )
            .unwrap()
        } else {
            let platform = base.clone().with_burst_buffer(BurstBufferSpec {
                capacity: base.total_bw * Time::secs(secs),
                absorb_bw: base.total_bw * 4.0,
            });
            run_native(&platform, &apps, NativeConfig::default()).unwrap()
        };
        let eff = out.report.sys_efficiency;
        let verdict = if eff >= ours.report.sys_efficiency {
            "native catches up"
        } else {
            "global scheduler still ahead"
        };
        println!("{secs:>16.0}   {:>12.1}%    {verdict}", eff * 100.0);
    }
}
