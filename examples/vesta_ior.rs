//! Run the real-thread modified-IOR harness (§5) on the Fig. 16 scenario
//! (512/256/256/32 nodes) and print per-application dilations under the
//! three schedulers the paper compares.
//!
//! ```sh
//! cargo run --release --example vesta_ior
//! ```

use hpc_io_sched::baselines::FairShare;
use hpc_io_sched::core::heuristics::{MaxSysEff, MinDilation, Priority};
use hpc_io_sched::core::policy::OnlinePolicy;
use hpc_io_sched::ior::{run_ior, IorConfig};
use hpc_io_sched::model::{Interference, Platform};
use hpc_io_sched::workload::ior_profile::{fig16_scenario, scenario_apps, IorParams};

fn main() {
    let platform = Platform::vesta().with_interference(Interference::default_penalty());
    let scenario = fig16_scenario();
    let apps = scenario_apps(&scenario, &platform, IorParams::default(), 42);
    println!(
        "Vesta scenario {} — {} application groups, real threads + scheduler thread\n",
        scenario.name,
        apps.len()
    );

    let variants: Vec<(&str, Box<dyn OnlinePolicy>)> = vec![
        ("ior (uncoordinated)", Box::new(FairShare)),
        ("priority-maxsyseff", Box::new(Priority::new(MaxSysEff))),
        ("priority-mindilation", Box::new(Priority::new(MinDilation))),
    ];
    println!("scheduler              SysEff%   max dil.   per-app dilation (512/256/256/32)");
    println!("-----------------------------------------------------------------------------");
    for (name, mut policy) in variants {
        let mut cfg = IorConfig::new(platform.clone(), apps.clone());
        cfg.speedup = 1_000.0;
        let out = run_ior(&cfg, policy.as_mut()).expect("valid scenario");
        let dils: Vec<String> = out
            .report
            .per_app
            .iter()
            .map(|o| format!("{:.2}", o.dilation()))
            .collect();
        println!(
            "{name:<22} {:>6.1}   {:>8.2}   {}",
            out.report.sys_efficiency * 100.0,
            out.report.dilation,
            dils.join(" / ")
        );
    }
    println!("\n(paper, Fig. 16: MaxSysEff favours the big groups at the cost of the");
    println!(" 32-node one; MinDilation lowers every group's dilation almost uniformly)");
}
