//! Replay one Intrepid congested moment (the Table 1 setting) under every
//! §3.1 heuristic and the native scheduler.
//!
//! ```sh
//! cargo run --release --example intrepid_congestion [seed]
//! ```

use hpc_io_sched::baselines::{native_platform, run_native, NativeConfig};
use hpc_io_sched::core::heuristics::PolicyKind;
use hpc_io_sched::model::Platform;
use hpc_io_sched::sim::{simulate, SimConfig};
use hpc_io_sched::workload::congestion::{aggregate_demand, congested_moment};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let platform = native_platform(Platform::intrepid());
    let apps = congested_moment(&platform, seed);
    println!(
        "congested moment #{seed}: {} applications, aggregate I/O demand {:.2}×B\n",
        apps.len(),
        aggregate_demand(&platform, &apps) / platform.total_bw
    );

    println!("scheduler              SysEfficiency   Dilation");
    println!("------------------------------------------------");
    for kind in PolicyKind::fig6_roster() {
        let mut policy = kind.build();
        let out =
            simulate(&platform, &apps, &mut policy, &SimConfig::default()).expect("valid scenario");
        println!(
            "{:<22} {:>12.1}%  {:>8.2}",
            kind.name(),
            out.report.sys_efficiency * 100.0,
            out.report.dilation
        );
    }
    let native = run_native(&platform, &apps, NativeConfig::default()).expect("native run");
    println!(
        "{:<22} {:>12.1}%  {:>8.2}   (with burst buffers)",
        "intrepid (native)",
        native.report.sys_efficiency * 100.0,
        native.report.dilation
    );
    println!(
        "{:<22} {:>12.1}%  {:>8.2}",
        "upper limit",
        native.report.upper_limit * 100.0,
        1.0
    );
}
