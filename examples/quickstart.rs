//! Quickstart: three applications contend for a shared PFS; compare
//! uncoordinated fair sharing against the paper's global scheduler.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hpc_io_sched::baselines::FairShare;
use hpc_io_sched::core::heuristics::{MaxSysEff, MinDilation};
use hpc_io_sched::model::{AppSpec, Bytes, Interference, Platform, Time};
use hpc_io_sched::sim::{simulate, SimConfig};

fn main() {
    // A small cluster: 1,000 nodes, 0.05 GiB/s per node, 10 GiB/s PFS,
    // spinning disks (locality interference on).
    let platform = Platform::new(
        "quickstart",
        1_000,
        hpc_io_sched::model::Bw::gib_per_sec(0.05),
        hpc_io_sched::model::Bw::gib_per_sec(10.0),
    )
    .with_interference(Interference::default_penalty());

    // Three periodic applications: compute w seconds, then write vol GiB,
    // ten times each (§2.1 model).
    let apps = vec![
        AppSpec::periodic(0, Time::ZERO, 400, Time::secs(50.0), Bytes::gib(120.0), 10),
        AppSpec::periodic(1, Time::ZERO, 300, Time::secs(80.0), Bytes::gib(150.0), 10),
        AppSpec::periodic(2, Time::ZERO, 200, Time::secs(30.0), Bytes::gib(80.0), 10),
    ];

    println!("policy        SysEfficiency   Dilation   makespan");
    println!("--------------------------------------------------");
    for (name, policy) in [
        (
            "fairshare",
            &mut FairShare as &mut dyn hpc_io_sched::core::policy::OnlinePolicy,
        ),
        ("mindilation", &mut MinDilation),
        ("maxsyseff", &mut MaxSysEff),
    ] {
        let out =
            simulate(&platform, &apps, policy, &SimConfig::default()).expect("valid scenario");
        println!(
            "{name:<12}  {:>12.1}%  {:>8.2}   {:>7.0}s",
            out.report.sys_efficiency * 100.0,
            out.report.dilation,
            out.report.makespan().as_secs(),
        );
    }
    println!(
        "\n(upper limit: {:.1}% — what a congestion-free oracle would reach)",
        simulate(&platform, &apps, &mut MinDilation, &SimConfig::default())
            .unwrap()
            .report
            .upper_limit
            * 100.0
    );
}
