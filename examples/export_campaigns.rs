//! Regenerate the checked-in campaign spec files under `examples/`.
//!
//! ```text
//! cargo run --release --example export_campaigns
//! ```
//!
//! * `examples/campaign_fig6.json` is exactly
//!   `iosched_bench::experiments::fig06::campaign(200)` — the paper's
//!   Fig. 6 sweep (3 mixes × 8 policies × 200 seeds).
//! * `examples/campaign_fig4.json` is exactly
//!   `iosched_bench::experiments::fig04::campaign(REPLAY_PERIODS)` — the
//!   Fig. 4 periodic schedule as an *offline-policy* campaign: the
//!   `periodic:cong:eps=0.02:tmax=1.5` registry factory searched and
//!   replayed over the paper's four applications.
//! * `examples/campaign_control.json` is exactly
//!   `iosched_bench::experiments::control::campaign(STORM_SEEDS)` — the
//!   closed-loop `control:pi` family vs FairShare / MinDilation /
//!   `periodic:cong` on congested moments under external communication
//!   storms, with telemetry export on.
//! * `examples/campaign_stream.json` is exactly
//!   `iosched_bench::experiments::load_sweep::campaign(SWEEP_SEEDS)` —
//!   the open-system saturation sweep: Poisson arrival streams at four
//!   rates λ, warmup-trimmed steady-state aggregates per
//!   `(λ, policy)` cell.
//!
//! Integration tests pin each file to its in-code campaign, so edit the
//! code and rerun this, not the JSON.

use iosched_bench::campaign::CampaignSpec;
use iosched_bench::experiments::{control, fig04, fig06, load_sweep};

fn write(spec: &CampaignSpec, path: &str) {
    let json = spec.to_json().expect("campaign serializes");
    std::fs::write(path, json + "\n").expect("examples/ is writable");
    println!(
        "wrote {path}: {} runs in {} cells",
        spec.total_runs(),
        spec.cell_count()
    );
}

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples");
    write(&fig06::campaign(200), &format!("{dir}/campaign_fig6.json"));
    write(
        &fig04::campaign(fig04::REPLAY_PERIODS),
        &format!("{dir}/campaign_fig4.json"),
    );
    write(
        &control::campaign(control::STORM_SEEDS),
        &format!("{dir}/campaign_control.json"),
    );
    write(
        &load_sweep::campaign(load_sweep::SWEEP_SEEDS),
        &format!("{dir}/campaign_stream.json"),
    );
}
