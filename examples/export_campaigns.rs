//! Regenerate the checked-in campaign spec files under `examples/`.
//!
//! ```text
//! cargo run --release --example export_campaigns
//! ```
//!
//! `examples/campaign_fig6.json` is exactly
//! `iosched_bench::experiments::fig06::campaign(200)` — the paper's
//! Fig. 6 sweep (3 mixes × 8 policies × 200 seeds) as one declarative
//! file for `iosched campaign`. An integration test pins the file to the
//! in-code campaign, so edit the code and rerun this, not the JSON.

use iosched_bench::experiments::fig06;

fn main() {
    let spec = fig06::campaign(200);
    let json = spec.to_json().expect("fig06 campaign serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/campaign_fig6.json");
    std::fs::write(path, json + "\n").expect("examples/ is writable");
    println!(
        "wrote {path}: {} runs in {} cells",
        spec.total_runs(),
        spec.cell_count()
    );
}
