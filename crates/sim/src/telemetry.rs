//! The engine's congestion-sensing tap.
//!
//! At every scheduling event the fluid engine records one
//! [`TelemetrySample`] covering the inter-event interval it just closed:
//! the offered load (sum of card limits), the granted and the
//! *delivered* aggregate bandwidth, the usable capacity, the outstanding
//! backlog and the pending count. The tap is **always on** — it is a
//! fixed-size ring buffer plus a handful of scalar accumulators, with no
//! per-event heap allocation — so every policy can read the derived
//! [`CongestionSignal`] through [`SchedContext::signal`]
//! ([`Telemetry::signal`] reflects the last completed interval; the
//! closed-loop `control:*` family feeds on it).
//!
//! Recording the full per-event utilization/contention *series* (needed
//! for the p95/p99 quantiles of the exported [`TelemetrySummary`]) does
//! allocate, so it is opt-in via [`crate::SimConfig::telemetry`]; with
//! the flag off the tap still answers [`Telemetry::signal`] and
//! maintains the windowed view, and simulation results are bit-identical
//! either way (the tap observes, it never steers the engine).
//!
//! [`SchedContext::signal`]: iosched_core::policy::SchedContext::signal

use iosched_core::control::CongestionSignal;
use iosched_model::lossless::{float_from_value, float_to_value};
use iosched_model::stats::Summary;
use iosched_model::{Bw, Bytes, Time};
use serde::{Deserialize, Serialize};

/// One closed inter-event interval, as observed by the tap. The rates
/// are the ones installed at `start` (they are constant across the
/// interval — that is the fluid model); backlog and pending are
/// measured at `start` too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySample {
    /// Interval start (the event that installed these rates).
    pub start: Time,
    /// Interval end (the next event).
    pub end: Time,
    /// Σ card limits of the pending applications.
    pub offered: Bw,
    /// Σ granted application bandwidths.
    pub granted: Bw,
    /// Σ delivered (effective) bandwidths — differs from `granted`
    /// under disk-locality interference.
    pub delivered: Bw,
    /// Usable PFS capacity (after external-load squeeze / burst-buffer
    /// throttling).
    pub capacity: Bw,
    /// Outstanding bytes across pending applications.
    pub backlog: Bytes,
    /// Number of pending applications.
    pub pending: usize,
}

impl TelemetrySample {
    /// A zero-length idle sample (nothing pending, nothing flowing) —
    /// the state an engine opens with before its first allocation, and
    /// whenever the pending set drains.
    #[must_use]
    pub fn idle(now: Time, capacity: Bw) -> Self {
        Self {
            start: now,
            end: now,
            offered: Bw::ZERO,
            granted: Bw::ZERO,
            delivered: Bw::ZERO,
            capacity,
            backlog: Bytes::ZERO,
            pending: 0,
        }
    }

    /// Interval length in seconds.
    #[must_use]
    pub fn dt(&self) -> f64 {
        (self.end - self.start).as_secs().max(0.0)
    }

    /// Delivered utilization of this interval (1 when the capacity is
    /// zero: a fully blocked pipe is vacuously full).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.capacity.get() > 0.0 {
            (self.delivered / self.capacity).max(0.0)
        } else {
            1.0
        }
    }

    /// Offered load over capacity (0 when the capacity is zero).
    #[must_use]
    pub fn contention(&self) -> f64 {
        if self.capacity.get() > 0.0 {
            (self.offered / self.capacity).max(0.0)
        } else {
            0.0
        }
    }

    /// The derived congestion signal of this interval.
    #[must_use]
    pub fn signal(&self) -> CongestionSignal {
        CongestionSignal {
            utilization: self.utilization(),
            contention: self.contention(),
            backlog: self.backlog,
            pending: self.pending,
        }
    }
}

/// Number of samples the always-on ring retains. The ring backs the
/// windowed time-series view ([`Telemetry::windowed`], [`Telemetry::last`])
/// exposed for steppable inspection through
/// [`crate::Simulation::telemetry`]; the per-event signal hand-off to
/// policies reads the cached last signal and never walks the ring.
pub const RING_CAPACITY: usize = 256;

/// The tap itself: ring buffer + whole-run accumulators, optionally a
/// full per-event series for quantile reporting.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Fixed-capacity ring, `head` = index of the next write slot.
    ring: Vec<TelemetrySample>,
    head: usize,
    /// Positive-length intervals observed (including ones evicted from
    /// the ring; zero-length intervals are not counted — they only move
    /// the peaks).
    samples: usize,
    /// Whole-run time integrals for the exported means.
    busy_secs: f64,
    utilization_integral: f64,
    contention_integral: f64,
    /// Whole-run peaks.
    peak_backlog: Bytes,
    peak_pending: usize,
    /// Signal of the newest closed interval, cached at [`Telemetry::record`]
    /// time so the per-event hand-off to the policy is a plain field read
    /// (recomputing it from the ring would put two divisions and the ring
    /// index arithmetic on the engine's hot allocation path).
    last_signal: Option<CongestionSignal>,
    /// Per-interval series (opt-in, feeds the p95/p99 quantiles).
    series: Option<SeriesBuffers>,
}

#[derive(Debug, Clone, Default)]
struct SeriesBuffers {
    utilization: Vec<f64>,
    contention: Vec<f64>,
}

impl Telemetry {
    /// A fresh tap. `track_series` opts into per-interval series
    /// collection (the only allocating part; required for
    /// [`Telemetry::summary`]).
    #[must_use]
    pub fn new(track_series: bool) -> Self {
        Self {
            ring: Vec::with_capacity(RING_CAPACITY),
            head: 0,
            samples: 0,
            busy_secs: 0.0,
            utilization_integral: 0.0,
            contention_integral: 0.0,
            peak_backlog: Bytes::ZERO,
            peak_pending: 0,
            last_signal: None,
            series: track_series.then(SeriesBuffers::default),
        }
    }

    /// Record one closed interval. Zero-length intervals (simultaneous
    /// events) update the peaks but are not stored — they carry no time
    /// weight and would only duplicate points in the distributions.
    pub fn record(&mut self, sample: TelemetrySample) {
        self.peak_backlog = self.peak_backlog.max(sample.backlog);
        self.peak_pending = self.peak_pending.max(sample.pending);
        let dt = sample.dt();
        if dt <= 0.0 {
            return;
        }
        self.samples += 1;
        self.busy_secs += dt;
        let utilization = sample.utilization();
        let contention = sample.contention();
        self.utilization_integral += utilization * dt;
        self.contention_integral += contention * dt;
        self.last_signal = Some(CongestionSignal {
            utilization,
            contention,
            backlog: sample.backlog,
            pending: sample.pending,
        });
        if self.ring.len() < RING_CAPACITY {
            self.ring.push(sample);
        } else {
            self.ring[self.head] = sample;
        }
        self.head = (self.head + 1) % RING_CAPACITY;
        if let Some(series) = &mut self.series {
            series.utilization.push(utilization);
            series.contention.push(contention);
        }
    }

    /// Completed (positive-length) intervals observed so far.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The (up to) `n` most recently closed intervals, oldest first —
    /// the view a live telemetry subscriber streams from: after each
    /// engine step it asks for the intervals closed since its last read
    /// and forwards them in chronological order.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<TelemetrySample> {
        let take = n.min(self.ring.len());
        (0..take)
            .map(|k| {
                let idx = (self.head + self.ring.len() - take + k) % self.ring.len();
                self.ring[idx]
            })
            .collect()
    }

    /// The most recently closed interval.
    #[must_use]
    pub fn last(&self) -> Option<&TelemetrySample> {
        if self.ring.is_empty() {
            return None;
        }
        let idx = (self.head + self.ring.len() - 1) % self.ring.len();
        Some(&self.ring[idx])
    }

    /// The signal handed to policies: derived from the last completed
    /// interval (`None` until the first one closes — the initial
    /// allocation runs unobserved). A cached field read: this sits on
    /// the engine's per-event allocation path.
    #[must_use]
    pub fn signal(&self) -> Option<CongestionSignal> {
        self.last_signal
    }

    /// Time-weighted signal over (up to) the trailing `window`, walking
    /// the ring newest to oldest. Backlog and pending are taken from the
    /// newest sample. `None` while no interval has closed.
    #[must_use]
    pub fn windowed(&self, window: Time) -> Option<CongestionSignal> {
        let newest = *self.last()?;
        let mut covered = 0.0;
        let mut u = 0.0;
        let mut c = 0.0;
        let want = window.as_secs().max(0.0);
        for k in 0..self.ring.len() {
            let idx = (self.head + self.ring.len() - 1 - k) % self.ring.len();
            let s = &self.ring[idx];
            let take = s.dt().min((want - covered).max(0.0));
            if take <= 0.0 {
                break;
            }
            u += s.utilization() * take;
            c += s.contention() * take;
            covered += take;
        }
        if covered <= 0.0 {
            return Some(newest.signal());
        }
        Some(CongestionSignal {
            utilization: u / covered,
            contention: c / covered,
            backlog: newest.backlog,
            pending: newest.pending,
        })
    }

    /// Export the per-run summary. `None` when the series was not
    /// tracked (see [`Telemetry::new`]) or no interval closed.
    #[must_use]
    pub fn summary(&self) -> Option<TelemetrySummary> {
        let series = self.series.as_ref()?;
        let utilization = Summary::from_slice(&series.utilization)?;
        let contention = Summary::from_slice(&series.contention)?;
        Some(TelemetrySummary {
            samples: self.samples,
            busy_secs: self.busy_secs,
            mean_utilization: self.utilization_integral / self.busy_secs,
            mean_contention: self.contention_integral / self.busy_secs,
            utilization,
            contention,
            peak_backlog_gib: self.peak_backlog.as_gib(),
            peak_pending: self.peak_pending,
        })
    }
}

/// Exportable per-run congestion record (the `iosched telemetry`
/// command prints and serializes this; campaign cells aggregate the
/// time-weighted mean utilization across seeds).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Positive-length inter-event intervals observed.
    pub samples: usize,
    /// Simulated seconds covered by those intervals.
    pub busy_secs: f64,
    /// Time-weighted mean delivered utilization over the run.
    pub mean_utilization: f64,
    /// Time-weighted mean contention over the run.
    pub mean_contention: f64,
    /// Per-interval utilization distribution (unweighted; the p95/p99
    /// tail shows how deep congestion episodes cut).
    pub utilization: Summary,
    /// Per-interval contention distribution.
    pub contention: Summary,
    /// Peak outstanding bytes, GiB.
    pub peak_backlog_gib: f64,
    /// Peak number of simultaneously pending applications.
    pub peak_pending: usize,
}

// Manual serde through the shared lossless float encoding
// ([`iosched_model::lossless`]): a mean over an empty window or an
// infinite backlog must survive a JSON round trip bit-for-bit, and the
// derived impl would flatten NaN/∞ to `null` and `-0.0` to `0`.
impl Serialize for TelemetrySummary {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("samples".into(), self.samples.to_value()),
            ("busy_secs".into(), float_to_value(self.busy_secs)),
            (
                "mean_utilization".into(),
                float_to_value(self.mean_utilization),
            ),
            (
                "mean_contention".into(),
                float_to_value(self.mean_contention),
            ),
            ("utilization".into(), self.utilization.to_value()),
            ("contention".into(), self.contention.to_value()),
            (
                "peak_backlog_gib".into(),
                float_to_value(self.peak_backlog_gib),
            ),
            ("peak_pending".into(), self.peak_pending.to_value()),
        ])
    }
}

impl Deserialize for TelemetrySummary {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a telemetry-summary object"))?;
        let float = |key: &str| float_from_value(serde::map_get(m, key)).map_err(|e| e.at(key));
        Ok(Self {
            samples: usize::from_value(serde::map_get(m, "samples"))
                .map_err(|e| e.at("samples"))?,
            busy_secs: float("busy_secs")?,
            mean_utilization: float("mean_utilization")?,
            mean_contention: float("mean_contention")?,
            utilization: Summary::from_value(serde::map_get(m, "utilization"))
                .map_err(|e| e.at("utilization"))?,
            contention: Summary::from_value(serde::map_get(m, "contention"))
                .map_err(|e| e.at("contention"))?,
            peak_backlog_gib: float("peak_backlog_gib")?,
            peak_pending: usize::from_value(serde::map_get(m, "peak_pending"))
                .map_err(|e| e.at("peak_pending"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(start: f64, end: f64, delivered: f64, capacity: f64) -> TelemetrySample {
        TelemetrySample {
            start: Time::secs(start),
            end: Time::secs(end),
            offered: Bw::gib_per_sec(delivered * 2.0),
            granted: Bw::gib_per_sec(delivered),
            delivered: Bw::gib_per_sec(delivered),
            capacity: Bw::gib_per_sec(capacity),
            backlog: Bytes::gib(delivered),
            pending: 3,
        }
    }

    #[test]
    fn signal_reflects_the_last_interval() {
        let mut t = Telemetry::new(false);
        assert!(t.signal().is_none());
        t.record(sample(0.0, 10.0, 5.0, 10.0));
        let s = t.signal().unwrap();
        assert!((s.utilization - 0.5).abs() < 1e-12);
        assert!((s.contention - 1.0).abs() < 1e-12);
        assert_eq!(s.pending, 3);
        t.record(sample(10.0, 11.0, 10.0, 10.0));
        assert!((t.signal().unwrap().utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_interval_is_vacuously_full() {
        let s = sample(0.0, 1.0, 0.0, 0.0);
        assert_eq!(s.utilization(), 1.0);
        assert_eq!(s.contention(), 0.0);
    }

    #[test]
    fn zero_length_intervals_only_move_peaks() {
        let mut t = Telemetry::new(true);
        let mut s = sample(5.0, 5.0, 1.0, 10.0);
        s.backlog = Bytes::gib(123.0);
        s.pending = 9;
        t.record(s);
        assert_eq!(t.samples(), 0);
        assert!(t.signal().is_none());
        assert!(t.summary().is_none());
        t.record(sample(5.0, 6.0, 10.0, 10.0));
        let summary = t.summary().unwrap();
        assert_eq!(summary.samples, 1);
        assert_eq!(summary.peak_backlog_gib, 123.0);
        assert_eq!(summary.peak_pending, 9);
    }

    #[test]
    fn ring_wraps_without_losing_the_newest_sample() {
        let mut t = Telemetry::new(false);
        for k in 0..(RING_CAPACITY * 2 + 7) {
            let start = k as f64;
            t.record(sample(start, start + 1.0, 1.0, 10.0));
        }
        assert_eq!(t.samples(), RING_CAPACITY * 2 + 7);
        let last = t.last().unwrap();
        assert!(last
            .end
            .approx_eq(Time::secs((RING_CAPACITY * 2 + 7) as f64)));
    }

    #[test]
    fn windowed_signal_is_time_weighted() {
        let mut t = Telemetry::new(false);
        // 10 s at u = 1.0, then 10 s at u = 0.5.
        t.record(sample(0.0, 10.0, 10.0, 10.0));
        t.record(sample(10.0, 20.0, 5.0, 10.0));
        let w = t.windowed(Time::secs(20.0)).unwrap();
        assert!((w.utilization - 0.75).abs() < 1e-12);
        // A window covering only the newest interval sees only it.
        let w = t.windowed(Time::secs(10.0)).unwrap();
        assert!((w.utilization - 0.5).abs() < 1e-12);
        // A partial window weights the older interval's tail.
        let w = t.windowed(Time::secs(15.0)).unwrap();
        assert!((w.utilization - (0.5 * 10.0 + 1.0 * 5.0) / 15.0).abs() < 1e-12);
    }

    #[test]
    fn recent_returns_chronological_tail() {
        let mut t = Telemetry::new(false);
        assert!(t.recent(4).is_empty());
        for k in 0..(RING_CAPACITY + 5) {
            let start = k as f64;
            t.record(sample(start, start + 1.0, 1.0, 10.0));
        }
        let tail = t.recent(3);
        assert_eq!(tail.len(), 3);
        // Oldest first, ending at the newest interval — across a wrap.
        let newest_end = (RING_CAPACITY + 5) as f64;
        assert!(tail[2].end.approx_eq(Time::secs(newest_end)));
        assert!(tail[0].end.approx_eq(Time::secs(newest_end - 2.0)));
        // Asking for more than the ring holds returns the whole ring.
        assert_eq!(t.recent(RING_CAPACITY * 2).len(), RING_CAPACITY);
    }

    #[test]
    fn summary_serde_round_trips_non_finite_fields() {
        let mut t = Telemetry::new(true);
        t.record(sample(0.0, 30.0, 9.0, 10.0));
        let mut s = t.summary().unwrap();
        s.mean_contention = f64::NAN;
        s.peak_backlog_gib = f64::INFINITY;
        s.busy_secs = -0.0;
        let json = serde_json::to_string(&s).unwrap();
        let back: TelemetrySummary = serde_json::from_str(&json).unwrap();
        assert!(back.mean_contention.is_nan());
        assert_eq!(back.peak_backlog_gib, f64::INFINITY);
        assert_eq!(back.busy_secs.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.samples, s.samples);
        // Summary serde intentionally drops the quantile reservoir.
        assert_eq!(back.utilization.mean, s.utilization.mean);
        assert_eq!(back.utilization.p99, s.utilization.p99);
    }

    #[test]
    fn summary_aggregates_means_and_tails() {
        let mut t = Telemetry::new(true);
        t.record(sample(0.0, 30.0, 9.0, 10.0));
        t.record(sample(30.0, 40.0, 2.0, 10.0));
        let s = t.summary().unwrap();
        assert_eq!(s.samples, 2);
        assert!((s.busy_secs - 40.0).abs() < 1e-12);
        // Time-weighted: (0.9·30 + 0.2·10) / 40.
        assert!((s.mean_utilization - 0.725).abs() < 1e-12);
        assert_eq!(s.utilization.n, 2);
        assert!((s.utilization.max - 0.9).abs() < 1e-12);
        // Without series tracking there is no summary.
        assert!(Telemetry::new(false).summary().is_none());
    }
}
