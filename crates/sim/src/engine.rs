//! The fluid discrete-event engine.
//!
//! Between two scheduling events every transferring application receives a
//! constant bandwidth, so remaining volumes decay linearly and the next
//! event time is computed in closed form — no time stepping, no drift.
//! Event kinds:
//!
//! * application release (`r_k`),
//! * compute-chunk completion (deterministic: resources are dedicated),
//! * I/O-transfer completion (depends on the granted rates),
//! * burst-buffer throttle flips (full / re-opened).
//!
//! After every event the installed [`OnlinePolicy`] re-allocates bandwidth
//! (§3.1: "at each event, the scheduler looks at the current state of the
//! system […] then, based on a given strategy, it chooses a subset of
//! applications and allows them to start or continue their I/O").
//!
//! ## Numerical discipline
//!
//! I/O completions are *predicted* (`remaining / rate`) while scanning for
//! the next event and the winners' residual volumes are zeroed explicitly
//! after the advance, so floating-point residue can never spawn phantom
//! micro-events. Times compare through the global `EPS` of
//! [`iosched_model::units`].

use crate::burst_buffer::BurstBufferState;
use crate::error::SimError;
use crate::external_load::ExternalLoad;
use crate::outcome::SimOutcome;
use crate::state::{AppRuntime, Phase};
use crate::trace::{BandwidthTrace, TraceSegment};
use iosched_core::policy::{AppState, OnlinePolicy, SchedContext};
use iosched_model::{app::validate_scenario, AppSpec, Bw, Platform, Time};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Route application I/O through the platform's burst buffer (the
    /// platform must carry a [`iosched_model::BurstBufferSpec`]).
    pub use_burst_buffer: bool,
    /// Record the full piecewise-constant allocation trace.
    pub record_trace: bool,
    /// Hard event budget (guards against configuration bugs).
    pub max_events: usize,
    /// §7 extension — shared I/O/communication network: periodic
    /// communication traffic stealing a fraction of `B`. Mutually
    /// exclusive with `use_burst_buffer` (the communication network sits
    /// between compute nodes and the storage tier).
    pub external_load: Option<ExternalLoad>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            use_burst_buffer: false,
            record_trace: false,
            max_events: 10_000_000,
            external_load: None,
        }
    }
}

impl SimConfig {
    /// Default configuration with trace recording on.
    #[must_use]
    pub fn traced() -> Self {
        Self {
            record_trace: true,
            ..Self::default()
        }
    }

    /// Default configuration with the burst buffer enabled.
    #[must_use]
    pub fn with_burst_buffer() -> Self {
        Self {
            use_burst_buffer: true,
            ..Self::default()
        }
    }
}

/// Run `policy` over `apps` on `platform` until every application
/// completes; returns the objective report (and optional trace).
pub fn simulate(
    platform: &Platform,
    apps: &[AppSpec],
    policy: &mut dyn OnlinePolicy,
    config: &SimConfig,
) -> Result<SimOutcome, SimError> {
    validate_scenario(platform, apps).map_err(|e| SimError::InvalidScenario(e.to_string()))?;
    if apps.is_empty() {
        return Err(SimError::InvalidScenario(
            "simulation needs at least one application".into(),
        ));
    }
    let mut bb = if config.use_burst_buffer {
        let spec = platform.burst_buffer.ok_or_else(|| {
            SimError::InvalidScenario(
                "use_burst_buffer requires a platform burst buffer".into(),
            )
        })?;
        Some(BurstBufferState::new(spec))
    } else {
        None
    };
    if let Some(load) = &config.external_load {
        load.validate()
            .map_err(|e| SimError::InvalidScenario(e.to_string()))?;
        if bb.is_some() {
            return Err(SimError::InvalidScenario(
                "external_load and use_burst_buffer are mutually exclusive".into(),
            ));
        }
    }

    let mut rts: Vec<AppRuntime> = apps
        .iter()
        .map(|a| AppRuntime::new(a.clone(), platform))
        .collect();

    let mut now = Time::ZERO;
    let mut trace = config.record_trace.then(BandwidthTrace::default);
    let mut seg_start = now;
    let mut seg_grants: Vec<(iosched_model::AppId, Bw)> = Vec::new();
    let mut seg_effective: Vec<(iosched_model::AppId, Bw)> = Vec::new();
    let mut seg_capacity = platform.total_bw;

    process_transitions(&mut rts, now);
    let mut drain_bw = allocate(
        platform,
        policy,
        &mut rts,
        bb.as_ref(),
        config.external_load.as_ref(),
        now,
    )?;
    snapshot_segment(
        &rts,
        bb.as_ref(),
        config.external_load.as_ref(),
        now,
        platform,
        &mut seg_grants,
        &mut seg_effective,
        &mut seg_capacity,
    );

    let debug = std::env::var_os("IOSCHED_SIM_DEBUG").is_some();
    let mut events: usize = 0;
    while !rts.iter().all(AppRuntime::is_finished) {
        events += 1;
        if events > config.max_events {
            return Err(SimError::EventLimitExceeded {
                limit: config.max_events,
            });
        }
        if debug && events % 100_000 == 0 {
            let pending = rts.iter().filter(|r| r.wants_io()).count();
            let done = rts.iter().filter(|r| r.is_finished()).count();
            eprintln!(
                "[sim] event {events}: t={:.6}s pending={pending} finished={done} bb={:?}",
                now.as_secs(),
                bb.as_ref().map(|b| (b.level().as_gib(), b.is_throttled()))
            );
        }

        // --- Find the next event. ------------------------------------
        let mut t_next = Time::INFINITY;
        // Predicted I/O completion per app index (to zero residues exactly).
        let mut predicted: Vec<(usize, Time)> = Vec::new();
        for (i, rt) in rts.iter().enumerate() {
            match rt.phase {
                Phase::NotReleased => t_next = t_next.min(rt.spec.release()),
                Phase::Computing { done_at } => t_next = t_next.min(done_at),
                Phase::Io { remaining, .. } => {
                    if rt.effective_rate.get() > 0.0 {
                        let done = now + remaining / rt.effective_rate;
                        predicted.push((i, done));
                        t_next = t_next.min(done);
                    }
                }
                Phase::Finished => {}
            }
        }
        if let Some(b) = &bb {
            let inflow = total_inflow(&rts);
            if let Some(dt) = b.next_event_in(inflow, drain_bw) {
                t_next = t_next.min(now + dt.max(Time::ZERO));
            }
        }
        // Timetable-style policies re-allocate at their own boundaries.
        if let Some(t) = policy.next_wakeup(now) {
            if t.approx_gt(now) {
                t_next = t_next.min(t);
            }
        }
        // Communication traffic changes the available capacity at its
        // busy/idle transitions.
        if let Some(load) = &config.external_load {
            if let Some(t) = load.next_boundary(now) {
                if t.approx_gt(now) {
                    t_next = t_next.min(t);
                }
            }
        }
        if !t_next.is_finite() {
            // Applications remain but nothing can ever happen again.
            return Err(SimError::PolicyStalledSystem {
                policy: policy.name(),
                at: now.as_secs(),
            });
        }

        // --- Advance the fluid state to t_next. -----------------------
        let dt = (t_next - now).max(Time::ZERO);
        let inflow = total_inflow(&rts);
        for rt in &mut rts {
            if let Phase::Io { remaining, started } = rt.phase {
                if rt.effective_rate.get() > 0.0 && dt.get() > 0.0 {
                    let moved = rt.effective_rate * dt;
                    let new_remaining = (remaining - moved).max(iosched_model::Bytes::ZERO);
                    rt.bytes_transferred += moved.min(remaining);
                    rt.phase = Phase::Io {
                        remaining: new_remaining,
                        started: true,
                    };
                } else {
                    rt.phase = Phase::Io { remaining, started };
                }
            }
        }
        // Zero the winners' residues exactly.
        for &(i, done) in &predicted {
            if done.approx_le(t_next) {
                if let Phase::Io { started, .. } = rts[i].phase {
                    rts[i].phase = Phase::Io {
                        remaining: iosched_model::Bytes::ZERO,
                        started,
                    };
                }
            }
        }
        if let Some(b) = &mut bb {
            b.advance(dt, inflow, drain_bw);
        }
        now = t_next;

        // --- State transitions and re-allocation. ---------------------
        process_transitions(&mut rts, now);
        if let Some(t) = &mut trace {
            t.push(TraceSegment {
                start: seg_start,
                end: now,
                capacity: seg_capacity,
                grants: seg_grants.clone(),
                effective: seg_effective.clone(),
            });
        }
        drain_bw = allocate(
            platform,
            policy,
            &mut rts,
            bb.as_ref(),
            config.external_load.as_ref(),
            now,
        )?;
        seg_start = now;
        snapshot_segment(
            &rts,
            bb.as_ref(),
            config.external_load.as_ref(),
            now,
            platform,
            &mut seg_grants,
            &mut seg_effective,
            &mut seg_capacity,
        );
    }

    Ok(SimOutcome::collect(platform, rts, trace, events, now))
}

/// Aggregate effective inflow of all transferring applications.
fn total_inflow(rts: &[AppRuntime]) -> Bw {
    rts.iter()
        .filter(|rt| rt.wants_io())
        .map(|rt| rt.effective_rate)
        .sum()
}

/// Fire every transition enabled at `now`, repeatedly (a compute completion
/// may expose a zero-volume I/O that immediately completes, etc.).
fn process_transitions(rts: &mut [AppRuntime], now: Time) {
    loop {
        let mut changed = false;
        for rt in rts.iter_mut() {
            match rt.phase {
                Phase::NotReleased => {
                    if rt.spec.release().approx_le(now) {
                        rt.start_instance(rt.spec.release().max(Time::ZERO));
                        changed = true;
                    }
                }
                Phase::Computing { done_at } => {
                    if done_at.approx_le(now) {
                        let inst = rt.spec.instance(rt.instance);
                        rt.io_requested_at = now;
                        rt.phase = Phase::Io {
                            remaining: inst.vol,
                            started: false,
                        };
                        changed = true;
                    }
                }
                Phase::Io { remaining, .. } => {
                    if remaining.is_zero() {
                        rt.progress.complete_instance();
                        rt.last_io_end = now;
                        rt.rate = Bw::ZERO;
                        rt.effective_rate = Bw::ZERO;
                        rt.instance += 1;
                        if rt.instance == rt.spec.instance_count() {
                            rt.progress.finish(now);
                            rt.phase = Phase::Finished;
                        } else {
                            rt.start_instance(now);
                        }
                        changed = true;
                    }
                }
                Phase::Finished => {}
            }
        }
        if !changed {
            break;
        }
    }
}

/// Re-run the policy and install the granted/effective rates. Returns the
/// effective PFS drain bandwidth for the burst buffer (equal to `B` when no
/// buffer is in use).
fn allocate(
    platform: &Platform,
    policy: &mut dyn OnlinePolicy,
    rts: &mut [AppRuntime],
    bb: Option<&BurstBufferState>,
    external_load: Option<&ExternalLoad>,
    now: Time,
) -> Result<Bw, SimError> {
    // Communication traffic (§7 extension) shrinks the shared pipe.
    let load_factor = external_load.map_or(1.0, |l| l.capacity_factor(now));
    let capacity = match bb {
        Some(b) => b.ingest_capacity(platform.total_bw),
        None => platform.total_bw * load_factor,
    };
    let pending_idx: Vec<usize> = (0..rts.len()).filter(|&i| rts[i].wants_io()).collect();
    for rt in rts.iter_mut() {
        rt.rate = Bw::ZERO;
        rt.effective_rate = Bw::ZERO;
    }
    if pending_idx.is_empty() {
        return Ok(platform.total_bw);
    }
    let states: Vec<AppState> = pending_idx
        .iter()
        .map(|&i| {
            let rt = &rts[i];
            let started = matches!(rt.phase, Phase::Io { started: true, .. });
            AppState {
                id: rt.spec.id(),
                procs: rt.spec.procs(),
                dilation_ratio: rt.progress.dilation_ratio(now),
                syseff_key: rt.progress.syseff_key(now),
                last_io_end: rt.last_io_end,
                io_requested_at: rt.io_requested_at,
                started_io: started,
                max_bw: (platform.proc_bw * rt.spec.procs() as f64).min(capacity),
            }
        })
        .collect();
    let ctx = SchedContext {
        now,
        total_bw: capacity,
        pending: &states,
    };
    let alloc = policy.allocate(&ctx);
    alloc.validate(&ctx).map_err(|detail| SimError::InvalidAllocation {
        policy: policy.name(),
        detail,
    })?;
    // A policy that schedules its own wakeups (a timetable) may stall
    // everyone between reservation windows; an event-driven policy that
    // grants nothing would livelock the system.
    if alloc.total().is_zero() && capacity.get() > 0.0 && policy.next_wakeup(now).is_none() {
        return Err(SimError::PolicyStalledSystem {
            policy: policy.name(),
            at: now.as_secs(),
        });
    }
    let active = alloc.grants.iter().filter(|(_, b)| b.get() > 0.0).count();
    // Disk-locality interference: `n` uncoordinated streams degrade the
    // disk-backed tier's delivered bandwidth (Fig. 1). Without a burst
    // buffer the penalty hits the application rates directly. With one,
    // the SSD absorb tier itself is penalty-free (§3.1: "solid-state
    // drives do not present the problem"), but the buffered data of `n`
    // applications interleaves, so the PFS *drain* — and, under
    // back-pressure once the buffer is full, the ingest too — runs at
    // `B·factor(n)`. This is why "burst buffers cannot prevent congestion
    // at all times" (§1): the penalty merely hides until the buffer fills.
    let contended = platform.interference.factor(active);
    let ingest_factor = match bb {
        Some(b) if !b.is_throttled() => 1.0,
        _ => contended,
    };
    for &i in &pending_idx {
        let granted = alloc.granted(rts[i].spec.id());
        rts[i].rate = granted;
        rts[i].effective_rate = granted * ingest_factor;
    }
    let drain_bw = if bb.is_some() {
        platform.total_bw * contended
    } else {
        platform.total_bw
    };
    Ok(drain_bw)
}

/// Capture the current allocation for the trace segment being built.
fn snapshot_segment(
    rts: &[AppRuntime],
    bb: Option<&BurstBufferState>,
    external_load: Option<&ExternalLoad>,
    now: Time,
    platform: &Platform,
    grants: &mut Vec<(iosched_model::AppId, Bw)>,
    effective: &mut Vec<(iosched_model::AppId, Bw)>,
    capacity: &mut Bw,
) {
    grants.clear();
    effective.clear();
    let load_factor = external_load.map_or(1.0, |l| l.capacity_factor(now));
    *capacity = match bb {
        Some(b) => b.ingest_capacity(platform.total_bw),
        None => platform.total_bw * load_factor,
    };
    for rt in rts {
        if rt.rate.get() > 0.0 {
            grants.push((rt.spec.id(), rt.rate));
            effective.push((rt.spec.id(), rt.effective_rate));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_core::heuristics::{MaxSysEff, MinDilation, RoundRobin};
    use iosched_model::{AppId, Bytes};

    fn platform() -> Platform {
        Platform::new("t", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    /// w = 8 s, vol = 20 GiB on 100 procs: dedicated span 10 s/instance.
    fn app(id: usize, instances: usize) -> AppSpec {
        AppSpec::periodic(
            id,
            Time::ZERO,
            100,
            Time::secs(8.0),
            Bytes::gib(20.0),
            instances,
        )
    }

    #[test]
    fn single_app_runs_at_dedicated_speed() {
        let p = platform();
        let out = simulate(
            &p,
            &[app(0, 3)],
            &mut RoundRobin,
            &SimConfig::traced(),
        )
        .unwrap();
        let o = out.report.app(AppId(0)).unwrap();
        assert!(o.finish.approx_eq(Time::secs(30.0)), "finish {}", o.finish);
        assert!((o.rho_tilde - 0.8).abs() < 1e-9);
        assert!((out.report.dilation - 1.0).abs() < 1e-9);
        // Conservation: the trace delivered exactly 60 GiB.
        let trace = out.trace.as_ref().unwrap();
        assert!(trace.delivered(AppId(0)).approx_eq(Bytes::gib(60.0)));
        trace.validate(&p, &|_| Some(100)).unwrap();
    }

    #[test]
    fn two_apps_contend_and_someone_waits() {
        let p = platform();
        let out = simulate(
            &p,
            &[app(0, 2), app(1, 2)],
            &mut MinDilation,
            &SimConfig::default(),
        )
        .unwrap();
        // Both need the full PFS for their transfers; total I/O work is
        // 80 GiB = 8 s of PFS time, computes overlap. Last finish ≥ 8+8+2+2.
        let makespan = out.report.makespan();
        assert!(
            makespan.approx_ge(Time::secs(22.0)),
            "makespan {makespan} too small"
        );
        assert!(out.report.dilation > 1.0);
        // Work conserved for both apps.
        for id in [AppId(0), AppId(1)] {
            let bytes = out.bytes_of(id).unwrap();
            assert!(bytes.approx_eq(Bytes::gib(40.0)), "{id}: {bytes}");
        }
    }

    #[test]
    fn release_times_are_respected() {
        let p = platform();
        let mut late = app(1, 1);
        late.set_release(Time::secs(100.0));
        let out = simulate(
            &p,
            &[app(0, 1), late],
            &mut RoundRobin,
            &SimConfig::default(),
        )
        .unwrap();
        let o = out.report.app(AppId(1)).unwrap();
        assert!(o.finish.approx_ge(Time::secs(110.0)));
        assert!((o.rho_tilde - 0.8).abs() < 1e-9, "late app ran dedicated");
    }

    #[test]
    fn zero_work_and_zero_vol_instances() {
        let p = platform();
        use iosched_model::{Instance, InstancePattern};
        let spec = AppSpec::new(
            0,
            Time::ZERO,
            100,
            InstancePattern::Explicit(vec![
                Instance::new(Time::ZERO, Bytes::gib(10.0)), // pure I/O
                Instance::new(Time::secs(5.0), Bytes::ZERO), // pure compute
                Instance::new(Time::secs(1.0), Bytes::gib(10.0)),
            ]),
        );
        let out = simulate(&p, &[spec], &mut MaxSysEff, &SimConfig::default()).unwrap();
        let o = out.report.app(AppId(0)).unwrap();
        // 1 + 5 + 1 + 1 = 8 s total.
        assert!(o.finish.approx_eq(Time::secs(8.0)), "finish {}", o.finish);
        assert!((out.report.dilation - 1.0).abs() < 1e-9);
    }

    #[test]
    fn burst_buffer_requires_spec() {
        let p = platform();
        let err = simulate(
            &p,
            &[app(0, 1)],
            &mut RoundRobin,
            &SimConfig::with_burst_buffer(),
        );
        assert!(matches!(err, Err(SimError::InvalidScenario(_))));
    }

    #[test]
    fn burst_buffer_absorbs_bursts_faster() {
        let p = platform().with_default_burst_buffer();
        let apps = [app(0, 2), app(1, 2), app(2, 2)];
        let without = simulate(&p, &apps, &mut RoundRobin, &SimConfig::default()).unwrap();
        let with = simulate(
            &p,
            &apps,
            &mut RoundRobin,
            &SimConfig::with_burst_buffer(),
        )
        .unwrap();
        assert!(
            with.report.sys_efficiency >= without.report.sys_efficiency - 1e-9,
            "BB must not hurt: {} vs {}",
            with.report.sys_efficiency,
            without.report.sys_efficiency
        );
        assert!(with.report.makespan().approx_le(without.report.makespan()));
    }

    #[test]
    fn interference_slows_fair_sharing_policies_less_serialized_ones() {
        use iosched_model::Interference;
        let p = platform().with_interference(Interference::default_penalty());
        // Heuristics serialize (one app at a time at 10 GiB/s) → factor 1.
        let out = simulate(
            &p,
            &[app(0, 2), app(1, 2)],
            &mut MinDilation,
            &SimConfig::default(),
        )
        .unwrap();
        let clean = simulate(
            &platform(),
            &[app(0, 2), app(1, 2)],
            &mut MinDilation,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(
            (out.report.sys_efficiency - clean.report.sys_efficiency).abs() < 1e-9,
            "serializing policy unaffected by locality penalty"
        );
    }

    #[test]
    fn invalid_scenario_is_rejected() {
        let p = platform();
        // 600 + 600 procs > 1000.
        let a = AppSpec::periodic(0, Time::ZERO, 600, Time::secs(1.0), Bytes::gib(1.0), 1);
        let b = AppSpec::periodic(1, Time::ZERO, 600, Time::secs(1.0), Bytes::gib(1.0), 1);
        let err = simulate(&p, &[a, b], &mut RoundRobin, &SimConfig::default());
        assert!(matches!(err, Err(SimError::InvalidScenario(_))));
        let err = simulate(&p, &[], &mut RoundRobin, &SimConfig::default());
        assert!(matches!(err, Err(SimError::InvalidScenario(_))));
    }

    #[test]
    fn event_budget_guard_triggers() {
        let p = platform();
        let cfg = SimConfig {
            max_events: 3,
            ..SimConfig::default()
        };
        let apps: Vec<AppSpec> = (0..4).map(|i| app(i, 5)).collect();
        let err = simulate(&p, &apps, &mut RoundRobin, &cfg);
        assert!(matches!(err, Err(SimError::EventLimitExceeded { .. })));
    }

    /// Failure injection: a policy that overcommits the PFS.
    struct RoguePolicy;
    impl OnlinePolicy for RoguePolicy {
        fn name(&self) -> String {
            "rogue".into()
        }
        fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
            (0..ctx.pending.len()).collect()
        }
        fn allocate(&mut self, ctx: &SchedContext<'_>) -> iosched_core::policy::Allocation {
            iosched_core::policy::Allocation {
                grants: ctx
                    .pending
                    .iter()
                    .map(|a| (a.id, ctx.total_bw * 2.0))
                    .collect(),
            }
        }
    }

    /// Failure injection: a policy that grants nothing and never wakes up.
    struct SilentPolicy;
    impl OnlinePolicy for SilentPolicy {
        fn name(&self) -> String {
            "silent".into()
        }
        fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
            (0..ctx.pending.len()).collect()
        }
        fn allocate(&mut self, _ctx: &SchedContext<'_>) -> iosched_core::policy::Allocation {
            iosched_core::policy::Allocation::empty()
        }
    }

    #[test]
    fn external_load_slows_io_exactly() {
        use crate::external_load::ExternalLoad;
        let p = platform();
        // Fully-blocking communication for the first 10 s of each 20 s.
        let cfg = SimConfig {
            external_load: Some(ExternalLoad {
                period: Time::secs(20.0),
                busy: Time::secs(10.0),
                fraction: 1.0,
            }),
            ..SimConfig::default()
        };
        // One app: compute [0, 8), then 20 GiB needing 2 s at full B —
        // but the network is blocked until t = 10, so I/O runs [10, 12).
        let out = simulate(&p, &[app(0, 1)], &mut MaxSysEff, &cfg).unwrap();
        let o = out.report.app(AppId(0)).unwrap();
        assert!(
            o.finish.approx_eq(Time::secs(12.0)),
            "finish {} (expected 12 s: stall until the busy phase ends)",
            o.finish
        );
        // §7 (ii): without communication traffic the run is unaffected.
        let quiet = SimConfig {
            external_load: Some(ExternalLoad {
                period: Time::secs(20.0),
                busy: Time::secs(10.0),
                fraction: 0.0,
            }),
            ..SimConfig::default()
        };
        let out = simulate(&p, &[app(0, 1)], &mut MaxSysEff, &quiet).unwrap();
        assert!(out.report.app(AppId(0)).unwrap().finish.approx_eq(Time::secs(10.0)));
    }

    #[test]
    fn external_load_partial_fraction_shares_the_pipe() {
        use crate::external_load::ExternalLoad;
        let p = platform();
        // Communications permanently eat half of B → app bandwidth 5 GiB/s
        // → each 20 GiB transfer takes 4 s instead of 2.
        let cfg = SimConfig {
            external_load: Some(ExternalLoad {
                period: Time::secs(1.0),
                busy: Time::secs(1.0),
                fraction: 0.5,
            }),
            ..SimConfig::default()
        };
        let out = simulate(&p, &[app(0, 2)], &mut MinDilation, &cfg).unwrap();
        let o = out.report.app(AppId(0)).unwrap();
        assert!(
            o.finish.approx_eq(Time::secs(24.0)),
            "finish {} (expected 2 × (8 + 4) s)",
            o.finish
        );
        // The §2.2 accounting attributes the slowdown to I/O congestion.
        assert!(out.report.dilation > 1.0);
    }

    #[test]
    fn external_load_and_burst_buffer_are_exclusive() {
        use crate::external_load::ExternalLoad;
        let p = platform().with_default_burst_buffer();
        let cfg = SimConfig {
            use_burst_buffer: true,
            external_load: Some(ExternalLoad {
                period: Time::secs(1.0),
                busy: Time::secs(0.5),
                fraction: 0.5,
            }),
            ..SimConfig::default()
        };
        assert!(matches!(
            simulate(&p, &[app(0, 1)], &mut RoundRobin, &cfg),
            Err(SimError::InvalidScenario(_))
        ));
    }

    #[test]
    fn overcommitting_policy_is_rejected() {
        let p = platform();
        let err = simulate(&p, &[app(0, 1)], &mut RoguePolicy, &SimConfig::default());
        match err {
            Err(SimError::InvalidAllocation { policy, .. }) => assert_eq!(policy, "rogue"),
            other => panic!("expected InvalidAllocation, got {other:?}"),
        }
    }

    #[test]
    fn silent_policy_is_detected_as_livelock() {
        let p = platform();
        let err = simulate(&p, &[app(0, 1)], &mut SilentPolicy, &SimConfig::default());
        match err {
            Err(SimError::PolicyStalledSystem { policy, .. }) => assert_eq!(policy, "silent"),
            other => panic!("expected PolicyStalledSystem, got {other:?}"),
        }
    }

    #[test]
    fn trace_segments_tile_the_run() {
        let p = platform();
        let out = simulate(
            &p,
            &[app(0, 2), app(1, 2)],
            &mut RoundRobin,
            &SimConfig::traced(),
        )
        .unwrap();
        let trace = out.trace.unwrap();
        assert!(!trace.is_empty());
        trace.validate(&p, &|_| Some(100)).unwrap();
        for w in trace.segments.windows(2) {
            assert!(w[0].end.approx_le(w[1].start));
        }
    }
}
