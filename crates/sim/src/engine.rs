//! The fluid discrete-event engine.
//!
//! Between two scheduling events every transferring application receives a
//! constant bandwidth, so remaining volumes decay linearly and the next
//! event time is computed in closed form — no time stepping, no drift.
//! Event kinds:
//!
//! * application release (`r_k`),
//! * compute-chunk completion (deterministic: resources are dedicated),
//! * I/O-transfer completion (depends on the granted rates),
//! * burst-buffer throttle flips (full / re-opened).
//!
//! After every event the installed [`OnlinePolicy`] re-allocates bandwidth
//! (§3.1: "at each event, the scheduler looks at the current state of the
//! system […] then, based on a given strategy, it chooses a subset of
//! applications and allows them to start or continue their I/O").
//!
//! ## Lifecycle
//!
//! The engine is an explicit state machine: [`Simulation::new`] validates
//! the scenario and performs the initial allocation,
//! [`Simulation::step`] advances to exactly one next event, and
//! [`Simulation::run_to_completion`] drives steps until every application
//! finished and assembles the [`SimOutcome`]. The free function
//! [`simulate`] wraps the three for the common one-shot case; steppable
//! use (debuggers, the IOR harness, future checkpointing) talks to the
//! struct directly:
//!
//! ```
//! use iosched_model::{AppSpec, Bytes, Platform, Time};
//! use iosched_core::heuristics::MinDilation;
//! use iosched_sim::engine::{SimConfig, Simulation};
//!
//! let platform = Platform::vesta();
//! let apps = [AppSpec::periodic(0, Time::ZERO, 64, Time::secs(10.0), Bytes::gib(50.0), 3)];
//! let mut policy = MinDilation;
//! let config = SimConfig::default();
//! let mut sim = Simulation::new(&platform, &apps, &mut policy, &config).unwrap();
//! while !sim.is_finished() {
//!     sim.step().unwrap(); // inspect sim.now(), sim.pending_apps(), …
//! }
//! let outcome = sim.into_outcome();
//! assert!(outcome.report.dilation >= 1.0);
//! ```
//!
//! ## Performance discipline
//!
//! The steady-state step path performs no per-event heap allocation on
//! the engine side: the pending set (indices of applications that
//! currently want I/O) is maintained incrementally across events instead
//! of rescanned, releases live in a pre-sorted stack, compute completions
//! in a binary heap, and the predicted-completion scratch plus the
//! [`StateBuffer`] policy snapshot are reused across events. The
//! predicted completions themselves are cached as absolute times behind a
//! dirty flag — a transfer at constant rate finishes at the same instant
//! no matter when it is predicted — so events that change no grant,
//! capacity or phase (burst-buffer level crossings, timetable wakeups
//! that confirm the running allocation, external-load boundaries) skip
//! the per-event rescan of the pending set entirely. (Policies
//! themselves return a fresh [`iosched_core::policy::Allocation`] per
//! event — a handful of grant pairs.) Trace segments are only
//! materialized when [`SimConfig::record_trace`] asks for them.
//!
//! ## Numerical discipline
//!
//! I/O completions are *predicted* (`remaining / rate`) while scanning for
//! the next event and the winners' residual volumes are zeroed explicitly
//! after the advance, so floating-point residue can never spawn phantom
//! micro-events. Times compare through the global `EPS` of
//! [`iosched_model::units`].

use crate::burst_buffer::BurstBufferState;
use crate::calendar::{CalendarQueue, ComputeEvent};
use crate::error::SimError;
use crate::external_load::ExternalLoad;
use crate::outcome::SimOutcome;
use crate::state::{AppRuntime, HotState, PhaseTag};
use crate::steady::SteadyAccum;
use crate::telemetry::{Telemetry, TelemetrySample};
use crate::trace::{BandwidthTrace, TraceSegment};
use iosched_core::policy::{AllocScratch, AppState, OnlinePolicy, StateBuffer};
use iosched_model::app::{validate_open_arrival, validate_open_scenario, validate_scenario};
use iosched_model::{
    AppId, AppOutcome, AppSpec, Bw, Bytes, ObjectiveAccumulator, ObjectiveReport, Platform, Time,
    EPS,
};
use iosched_obs::{DecisionTrace, TraceEvent};
use std::collections::VecDeque;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Route application I/O through the platform's burst buffer (the
    /// platform must carry a [`iosched_model::BurstBufferSpec`]).
    pub use_burst_buffer: bool,
    /// Record the full piecewise-constant allocation trace.
    pub record_trace: bool,
    /// Hard event budget (guards against configuration bugs).
    pub max_events: usize,
    /// §7 extension — shared I/O/communication network: periodic
    /// communication traffic stealing a fraction of `B`. Mutually
    /// exclusive with `use_burst_buffer` (the communication network sits
    /// between compute nodes and the storage tier).
    pub external_load: Option<ExternalLoad>,
    /// Collect the full per-event telemetry series and attach a
    /// [`crate::telemetry::TelemetrySummary`] to the outcome. The tap
    /// itself (ring buffer + congestion signal for policies) is always
    /// on; this flag only opts into the allocating series needed for
    /// the exported quantiles. Simulated results are bit-identical with
    /// the flag on or off.
    pub telemetry: bool,
    /// Steady-state transient to trim: the [`crate::SteadySummary`]
    /// attached to the outcome ignores everything before this instant.
    /// A positive warmup (or a `horizon`, or a stream-driven run) turns
    /// the steady-state accumulator on; it observes only and never
    /// changes simulated results.
    pub warmup: Time,
    /// Hard stop: the run halts once the next event would land past
    /// this instant, reporting whatever completed by then. `None` (the
    /// default) runs every application to completion — required for the
    /// closed-roster experiments, whose pins predate this knob.
    pub horizon: Option<Time>,
    /// Keep the per-application outcome detail (`report.per_app`,
    /// `per_app_bytes`). On by default; switching it off makes the
    /// outcome `O(1)` in the number of applications — the aggregate
    /// objectives and the steady-state summary are folded streamingly —
    /// which is what lets a 10k-application stream run in memory
    /// proportional to its *concurrency*. With the flag off,
    /// `report.per_app` is empty and `report.makespan()` is therefore 0;
    /// use `end_time` and the steady summary instead.
    pub per_app_detail: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            use_burst_buffer: false,
            record_trace: false,
            max_events: 10_000_000,
            external_load: None,
            telemetry: false,
            warmup: Time::ZERO,
            horizon: None,
            per_app_detail: true,
        }
    }
}

impl serde::Serialize for SimConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                "use_burst_buffer".to_string(),
                self.use_burst_buffer.to_value(),
            ),
            ("record_trace".to_string(), self.record_trace.to_value()),
            ("max_events".to_string(), self.max_events.to_value()),
            ("external_load".to_string(), self.external_load.to_value()),
            ("telemetry".to_string(), self.telemetry.to_value()),
            ("warmup".to_string(), self.warmup.to_value()),
            ("horizon".to_string(), self.horizon.to_value()),
            ("per_app_detail".to_string(), self.per_app_detail.to_value()),
        ])
    }
}

/// Deserializes leniently: absent fields keep their [`SimConfig::default`]
/// values, so experiment specs only state what they change
/// (`{"use_burst_buffer": true}`).
impl serde::Deserialize for SimConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for SimConfig"))?;
        let defaults = Self::default();
        fn field<T: serde::Deserialize>(
            m: &[(String, serde::Value)],
            key: &str,
            default: T,
        ) -> Result<T, serde::Error> {
            match serde::map_get(m, key) {
                serde::Value::Null => Ok(default),
                present => T::from_value(present).map_err(|e| e.at(key)),
            }
        }
        for (key, _) in m {
            if !matches!(
                key.as_str(),
                "use_burst_buffer"
                    | "record_trace"
                    | "max_events"
                    | "external_load"
                    | "telemetry"
                    | "warmup"
                    | "horizon"
                    | "per_app_detail"
            ) {
                return Err(serde::Error::custom(format!(
                    "unknown SimConfig field '{key}'"
                )));
            }
        }
        let config = Self {
            use_burst_buffer: field(m, "use_burst_buffer", defaults.use_burst_buffer)?,
            record_trace: field(m, "record_trace", defaults.record_trace)?,
            max_events: field(m, "max_events", defaults.max_events)?,
            external_load: field(m, "external_load", defaults.external_load)?,
            telemetry: field(m, "telemetry", defaults.telemetry)?,
            warmup: field(m, "warmup", defaults.warmup)?,
            horizon: field(m, "horizon", defaults.horizon)?,
            per_app_detail: field(m, "per_app_detail", defaults.per_app_detail)?,
        };
        config.validate().map_err(serde::Error::custom)?;
        Ok(config)
    }
}

impl SimConfig {
    /// Default configuration with trace recording on.
    #[must_use]
    pub fn traced() -> Self {
        Self {
            record_trace: true,
            ..Self::default()
        }
    }

    /// Default configuration with the burst buffer enabled.
    #[must_use]
    pub fn with_burst_buffer() -> Self {
        Self {
            use_burst_buffer: true,
            ..Self::default()
        }
    }

    /// Default configuration with telemetry-summary export enabled.
    #[must_use]
    pub fn with_telemetry() -> Self {
        Self {
            telemetry: true,
            ..Self::default()
        }
    }

    /// Default configuration windowed for steady-state observation:
    /// trim `warmup`, stop at `horizon`.
    #[must_use]
    pub fn windowed(warmup: Time, horizon: Time) -> Self {
        Self {
            warmup,
            horizon: Some(horizon),
            ..Self::default()
        }
    }

    /// Window-knob sanity: a negative/non-finite warmup or a
    /// non-positive horizon is always a configuration bug.
    pub fn validate(&self) -> Result<(), String> {
        if !self.warmup.is_finite() || self.warmup.get() < 0.0 {
            return Err(format!(
                "warmup {} must be finite and non-negative",
                self.warmup
            ));
        }
        if let Some(h) = self.horizon {
            if !h.is_finite() || h.get() <= 0.0 {
                return Err(format!("horizon {h} must be positive and finite"));
            }
            if h <= self.warmup {
                return Err(format!(
                    "horizon {h} must lie past the warmup {}",
                    self.warmup
                ));
            }
        }
        Ok(())
    }

    /// True when the steady-state accumulator should run (a window knob
    /// is set; stream-driven constructions force it regardless).
    #[must_use]
    fn wants_steady(&self) -> bool {
        self.warmup.get() > 0.0 || self.horizon.is_some() || !self.per_app_detail
    }
}

/// What one [`Simulation::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The engine advanced to the next event; more remain possible.
    Advanced,
    /// Every application has finished; the step was a no-op.
    Finished,
    /// Open admission, nothing in the system and nothing queued: the
    /// engine is waiting for an external [`Simulation::offer`]. The
    /// step was a no-op (no event was consumed, the clock did not
    /// move). Never returned by the closed-roster or stream modes —
    /// there an eventless unfinished system is a policy bug and stays
    /// the [`SimError::PolicyStalledSystem`] diagnostic.
    Idle,
}

/// Where [`Simulation::run_until`] stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunStatus {
    /// Every admitted application finished and admission is exhausted
    /// (or the horizon halted the run).
    Finished,
    /// The next scheduling event lies past the requested bound; the
    /// payload is its time. The engine clock stays at the last event —
    /// advancement bounds never inject events, which is what keeps a
    /// bounded drive bit-identical to free running.
    Blocked(Time),
    /// Open admission with nothing to do before the bound: the engine
    /// is waiting for an external [`Simulation::offer`].
    Idle,
}

/// Membership of the I/O-pending set: dense `(AppId, slot)` pairs kept
/// in ascending `AppId` order (which policies rely on). Storing the id
/// inline makes the binary searches and the per-event scans touch one
/// flat array instead of chasing `slot → spec → id` through the arena;
/// with the pending population tracking *concurrency* (tens, not the
/// admitted total), the ordered insert's memmove stays within a cache
/// line or two.
#[derive(Debug, Default)]
struct PendingSet {
    entries: Vec<(AppId, usize)>,
}

impl PendingSet {
    fn with_capacity(n: usize) -> Self {
        Self {
            entries: Vec::with_capacity(n),
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn entries(&self) -> &[(AppId, usize)] {
        &self.entries
    }

    /// Insert if absent; true when the membership changed.
    fn insert(&mut self, id: AppId, slot: usize) -> bool {
        match self.entries.binary_search_by_key(&id, |&(pid, _)| pid) {
            Err(pos) => {
                self.entries.insert(pos, (id, slot));
                true
            }
            Ok(_) => false,
        }
    }

    /// Remove if present; true when the membership changed.
    fn remove(&mut self, id: AppId) -> bool {
        match self.entries.binary_search_by_key(&id, |&(pid, _)| pid) {
            Ok(pos) => {
                self.entries.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

/// Where applications come from: the closed roster installed at
/// construction, or open admission fed by a queue.
enum Admission<'a> {
    /// Every application was installed up-front; future releases sit on
    /// the pre-sorted stack.
    Roster,
    /// Open admission: arrivals wait in release order on `queue` until
    /// the clock reaches them. The queue has two writers — an optional
    /// `feeder` iterator auto-refilled after every admission (the
    /// stream mode: the engine never holds more than the live set plus
    /// one lookahead), and external [`Simulation::offer`] calls (the
    /// daemon mode). Admission is *exhausted* once `closed` is set, the
    /// feeder is drained and the queue is empty.
    Open {
        queue: VecDeque<AppSpec>,
        /// Auto-refill source (`None` when drained or never installed).
        /// Installed by [`Simulation::from_stream`]; mutually exclusive
        /// with external offers.
        feeder: Option<Box<dyn Iterator<Item = AppSpec> + 'a>>,
        /// No further arrivals can appear: set at construction by the
        /// stream mode (the feeder is the only source) and by
        /// [`Simulation::close_admission`] in daemon mode.
        closed: bool,
    },
}

/// One in-flight fluid simulation: the explicit state machine behind
/// [`simulate`].
///
/// See the [module docs](self) for the lifecycle and the buffer-reuse
/// guarantees of the step path.
pub struct Simulation<'a> {
    platform: &'a Platform,
    policy: &'a mut dyn OnlinePolicy,
    config: &'a SimConfig,
    /// Cold slot arena of live (and recently finished) application
    /// records (spec, ρ̃/ρ bookkeeping, instance counter) — touched at
    /// instance boundaries only. In closed-roster mode slots are the
    /// input positions; in stream mode finished slots are recycled
    /// through `free`, so the arena size tracks peak *concurrency*, not
    /// total admissions.
    rts: Vec<AppRuntime>,
    /// Dense struct-of-arrays hot state, parallel to `rts`: everything
    /// the per-event passes (decay, completion scan, policy snapshot,
    /// grant application) read or write.
    hot: HotState,
    /// Recycled slots of retired applications (stream mode).
    free: Vec<usize>,
    /// Where new applications come from.
    admission: Admission<'a>,
    /// Applications admitted so far (stream mode validates dense ids
    /// against this; closed mode admits everything at construction).
    admitted: usize,
    /// Release time of the last admitted application (stream-order
    /// validation).
    last_release: Time,
    /// Compact per-application results, drained out of the slots at
    /// retirement (kept iff [`SimConfig::per_app_detail`]).
    retired: Vec<(AppOutcome, Bytes)>,
    /// Streaming objective aggregates (maintained iff the per-app
    /// detail is off).
    agg: ObjectiveAccumulator,
    /// Warmup-trimmed steady-state accumulator (see
    /// [`SimConfig::warmup`]); `None` when no window knob asked for it.
    steady: Option<SteadyAccum>,
    /// Set when the horizon cut the run short.
    halted: bool,
    bb: Option<BurstBufferState>,
    now: Time,
    events: usize,
    finished: usize,
    drain_bw: Bw,
    /// Aggregate effective inflow installed by the last allocation
    /// (`Σ effective` over the pending set, accumulated during the
    /// grant-application walk). Nothing mutates a rate between an
    /// allocation and the next event scan, so the cache replaces the
    /// per-scan rescan of the pending set bit-for-bit.
    inflow: Bw,
    /// Applications currently in the `Io` phase. Maintained
    /// incrementally by the transition handlers.
    pending: PendingSet,
    /// Future releases of the closed roster, sorted descending by
    /// `(release, id)` so `pop()` yields the earliest; empty in stream
    /// mode.
    releases: Vec<(Time, AppId, usize)>,
    /// Outstanding compute completions (bucket queue with a far-future
    /// heap fallback; pop order is identical to the former binary
    /// heap's).
    compute: CalendarQueue,
    /// Reused scratch: predicted I/O completions, as *absolute* times.
    /// Valid across events as long as no grant, capacity or phase
    /// changed: a transfer at constant rate completes at the same
    /// absolute instant no matter when it is predicted, so the per-event
    /// rescan of all pending applications is skipped until
    /// `predicted_dirty` says otherwise.
    predicted: Vec<(usize, Time)>,
    /// Double-buffer for the fused rebuild: the grant-merge walk in
    /// [`Simulation::allocate`] computes every pending application's
    /// predicted completion *as it installs the rates* — same `now`, same
    /// residues, same effective rates as the event-scan rebuild would see
    /// one step later, hence bit-identical — and commits it by swap iff
    /// the step left the predictions dirty. The scan-time rebuild remains
    /// only as the rare fallback (first event, empty-pending steps).
    predicted_next: Vec<(usize, Time)>,
    /// Minimum of the cached predictions (`INFINITY` when none),
    /// maintained alongside the rebuild so the clean path folds one value
    /// into `t_next` instead of rescanning the scratch.
    predicted_min: Time,
    /// Set by every mutation that can move a predicted completion: a
    /// pending-set change, an instance completion, or an allocation that
    /// installed a different rate for any application.
    predicted_dirty: bool,
    /// Slots whose transfer completed during the advance to the current
    /// event, in `AppId` order (inherited from the predicted scan) —
    /// the settle pass visits exactly these instead of rescanning the
    /// whole pending set.
    completed: Vec<usize>,
    /// Reused policy-snapshot arena.
    snapshot: StateBuffer,
    /// Reused policy workspace: the grant vector the policy fills in
    /// place plus its ordering scratch — no per-event allocation on
    /// either side of the policy boundary.
    scratch: AllocScratch,
    trace: Option<BandwidthTrace>,
    seg_start: Time,
    seg_grants: Vec<(AppId, Bw)>,
    seg_effective: Vec<(AppId, Bw)>,
    seg_capacity: Bw,
    /// Always-on congestion tap (see [`crate::telemetry`]): ring buffer
    /// of closed inter-event intervals, whose derived signal is handed
    /// to the policy at every allocation. Kept (with its open interval)
    /// at the end of the struct so the step path's hot fields stay
    /// densely packed.
    telemetry: Telemetry,
    /// The interval opened by the last allocation, closed at the next
    /// event.
    tel_open: TelemetrySample,
    /// Runtime-attached decision trace (see
    /// [`Simulation::enable_decision_trace`]): a bounded ring of
    /// structured scheduling events. Observation-only — `None` (the
    /// default) costs one branch per record site, and attaching one
    /// never changes simulation results.
    dtrace: Option<Box<DecisionTrace>>,
    /// The policy wakeup that entered the last event scan (INFINITY
    /// when none was due): cached by `peek_next_event` so the traced
    /// step can attribute wakeup-won events without a second
    /// `next_wakeup` call.
    wakeup_candidate: Time,
    /// Per-phase wall-clock timing of the step path, recorded into an
    /// engine-owned obs registry (compiled out unless the `obs-timing`
    /// feature is on; read back via [`Simulation::timing_snapshot`]).
    #[cfg(feature = "obs-timing")]
    timing: StepTiming,
}

/// The `obs-timing` section set: one histogram per `step()` phase plus
/// a step counter, registered in an engine-owned registry under
/// `sim.step.*`.
#[cfg(feature = "obs-timing")]
#[derive(Debug)]
struct StepTiming {
    registry: iosched_obs::Registry,
    sections: iosched_obs::Sections,
    steps: iosched_obs::Counter,
}

#[cfg(feature = "obs-timing")]
impl StepTiming {
    const PEEK: usize = 0;
    const ADVANCE: usize = 1;
    const SETTLE: usize = 2;
    const ALLOCATE: usize = 3;

    fn new() -> Self {
        let registry = iosched_obs::Registry::new();
        let sections = iosched_obs::Sections::new(
            &registry,
            "sim.step",
            &["peek", "advance", "settle", "allocate"],
        );
        let steps = registry.counter("sim.steps");
        Self {
            registry,
            sections,
            steps,
        }
    }

    fn lap(&self, section: usize, watch: &mut iosched_obs::Stopwatch) {
        self.sections.record(section, watch.elapsed_ns());
        *watch = iosched_obs::Stopwatch::start();
    }
}

impl<'a> Simulation<'a> {
    /// Validate the closed scenario, install every application and
    /// perform the initial allocation at `t = 0`.
    pub fn new(
        platform: &'a Platform,
        apps: &[AppSpec],
        policy: &'a mut dyn OnlinePolicy,
        config: &'a SimConfig,
    ) -> Result<Self, SimError> {
        validate_scenario(platform, apps).map_err(|e| SimError::InvalidScenario(e.to_string()))?;
        if apps.is_empty() {
            return Err(SimError::InvalidScenario(
                "simulation needs at least one application".into(),
            ));
        }
        let rts: Vec<AppRuntime> = apps
            .iter()
            .map(|a| AppRuntime::new(a.clone(), platform))
            .collect();
        let mut releases: Vec<(Time, AppId, usize)> = rts
            .iter()
            .enumerate()
            .map(|(i, rt)| (rt.spec.release(), rt.spec.id(), i))
            .collect();
        releases.sort_by(|a, b| b.0.get().total_cmp(&a.0.get()).then(b.1.cmp(&a.1)));
        let admitted = rts.len();
        Self::start(
            platform,
            policy,
            config,
            rts,
            releases,
            Admission::Roster,
            admitted,
        )
    }

    /// Open-system construction: pull applications from a release-sorted
    /// `source` as the clock reaches them. The engine holds the live set
    /// plus one lookahead — peak memory tracks *concurrency*, not the
    /// stream length. Each admitted application is validated on arrival
    /// (individually feasible, ids dense in release order); the closed
    /// `Σβ ≤ N` budget deliberately does not apply.
    pub fn from_stream(
        platform: &'a Platform,
        source: impl Iterator<Item = AppSpec> + 'a,
        policy: &'a mut dyn OnlinePolicy,
        config: &'a SimConfig,
    ) -> Result<Self, SimError> {
        platform
            .validate()
            .map_err(|e| SimError::InvalidScenario(e.to_string()))?;
        let mut source: Box<dyn Iterator<Item = AppSpec> + 'a> = Box::new(source);
        let mut queue = VecDeque::new();
        match source.next() {
            Some(first) => queue.push_back(first),
            None => {
                return Err(SimError::InvalidScenario(
                    "application stream produced no applications".into(),
                ))
            }
        }
        Self::start(
            platform,
            policy,
            config,
            Vec::new(),
            Vec::new(),
            Admission::Open {
                queue,
                feeder: Some(source),
                closed: true, // the feeder is the only source
            },
            0,
        )
    }

    /// Reentrant open-system construction: the engine starts empty with
    /// admission *open*, and arrivals are pushed in from outside via
    /// [`Simulation::offer`] while stepping — the daemon mode. Stepping
    /// an empty open engine yields [`StepStatus::Idle`] instead of the
    /// stalled-system error; [`Simulation::close_admission`] declares
    /// the arrival sequence complete, after which the run can finish.
    ///
    /// The trajectory is a pure function of the accepted offer sequence:
    /// driving an open engine through the same arrivals as a
    /// release-sorted stream produces bit-identical state, event counts
    /// and outcomes (see [`Simulation::offer`] for the invariant that
    /// guarantees it).
    pub fn open(
        platform: &'a Platform,
        policy: &'a mut dyn OnlinePolicy,
        config: &'a SimConfig,
    ) -> Result<Self, SimError> {
        platform
            .validate()
            .map_err(|e| SimError::InvalidScenario(e.to_string()))?;
        Self::start(
            platform,
            policy,
            config,
            Vec::new(),
            Vec::new(),
            Admission::Open {
                queue: VecDeque::new(),
                feeder: None,
                closed: false,
            },
            0,
        )
    }

    /// Shared second half of the constructors: engine-config validation,
    /// initial transitions and the `t = 0` allocation.
    #[allow(clippy::too_many_arguments)]
    fn start(
        platform: &'a Platform,
        policy: &'a mut dyn OnlinePolicy,
        config: &'a SimConfig,
        rts: Vec<AppRuntime>,
        releases: Vec<(Time, AppId, usize)>,
        admission: Admission<'a>,
        admitted: usize,
    ) -> Result<Self, SimError> {
        config.validate().map_err(SimError::InvalidScenario)?;
        let bb = if config.use_burst_buffer {
            let spec = platform.burst_buffer.ok_or_else(|| {
                SimError::InvalidScenario(
                    "use_burst_buffer requires a platform burst buffer".into(),
                )
            })?;
            Some(BurstBufferState::new(spec))
        } else {
            None
        };
        if let Some(load) = &config.external_load {
            load.validate()
                .map_err(|e| SimError::InvalidScenario(e.to_string()))?;
            if bb.is_some() {
                return Err(SimError::InvalidScenario(
                    "external_load and use_burst_buffer are mutually exclusive".into(),
                ));
            }
        }
        let streamed = matches!(admission, Admission::Open { .. });
        let n = rts.len();
        let mut hot = HotState::with_capacity(n);
        for rt in &rts {
            hot.push_app(rt, platform);
        }
        let mut sim = Self {
            platform,
            policy,
            config,
            rts,
            hot,
            free: Vec::new(),
            admission,
            admitted,
            last_release: Time::ZERO,
            // Pre-sized so a closed roster never reallocates mid-run
            // (`retire` debug-asserts this); streams grow with the flag
            // on, but the bounded-memory campaigns run with it off.
            retired: Vec::with_capacity(if config.per_app_detail { n } else { 0 }),
            agg: ObjectiveAccumulator::default(),
            steady: (streamed || config.wants_steady()).then(|| SteadyAccum::new(config.warmup)),
            halted: false,
            bb,
            now: Time::ZERO,
            events: 0,
            finished: 0,
            drain_bw: platform.total_bw,
            inflow: Bw::ZERO,
            pending: PendingSet::with_capacity(n),
            releases,
            compute: CalendarQueue::new(),
            predicted: Vec::with_capacity(n),
            predicted_next: Vec::with_capacity(n),
            predicted_min: Time::INFINITY,
            predicted_dirty: true,
            completed: Vec::with_capacity(n),
            snapshot: StateBuffer::new(),
            scratch: AllocScratch::new(),
            trace: config.record_trace.then(BandwidthTrace::default),
            seg_start: Time::ZERO,
            seg_grants: Vec::with_capacity(if config.record_trace { n } else { 0 }),
            seg_effective: Vec::with_capacity(if config.record_trace { n } else { 0 }),
            seg_capacity: platform.total_bw,
            telemetry: Telemetry::new(config.telemetry),
            tel_open: TelemetrySample::idle(Time::ZERO, platform.total_bw),
            dtrace: None,
            wakeup_candidate: Time::INFINITY,
            #[cfg(feature = "obs-timing")]
            timing: StepTiming::new(),
        };
        sim.settle_transitions()?;
        sim.allocate()?;
        sim.snapshot_segment();
        Ok(sim)
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Scheduling events processed so far.
    #[must_use]
    pub fn events(&self) -> usize {
        self.events
    }

    /// True once every admitted application completed its last instance
    /// and no further arrivals are possible — or the horizon halted the
    /// run.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        let exhausted = match &self.admission {
            Admission::Roster => true, // everything admitted at construction
            Admission::Open {
                queue,
                feeder,
                closed,
            } => *closed && feeder.is_none() && queue.is_empty(),
        };
        self.halted || (exhausted && self.finished == self.admitted)
    }

    /// True while external [`Simulation::offer`]s can still be accepted:
    /// open admission that has not been closed. Always false for the
    /// closed-roster and stream modes.
    #[must_use]
    pub fn admission_open(&self) -> bool {
        matches!(
            &self.admission,
            Admission::Open { closed: false, .. } if !self.halted
        )
    }

    /// Arrivals accepted but not yet admitted (their releases lie ahead
    /// of the clock). At most 1 in stream mode (the lookahead).
    #[must_use]
    pub fn queued(&self) -> usize {
        match &self.admission {
            Admission::Roster => 0,
            Admission::Open { queue, .. } => queue.len(),
        }
    }

    /// Push one external arrival into open admission. The accepted offer
    /// sequence fully determines the trajectory: replaying the same
    /// sequence into a fresh [`Simulation::open`] engine reproduces the
    /// run bit-for-bit — which is what makes a write-ahead journal of
    /// accepted offers a complete checkpoint.
    ///
    /// Three acceptance rules, each rejected with an actionable error
    /// and no state change:
    ///
    /// * admission must be open (not a roster/stream engine, not closed,
    ///   not halted),
    /// * the app must be a valid open-system arrival at its queue
    ///   position ([`validate_open_arrival`]: individually feasible,
    ///   dense id, release no earlier than the last queued release),
    /// * its release must lie strictly *after* the engine clock
    ///   ([`Time::approx_gt`]). This is the equivalence invariant: every
    ///   accepted offer enters the queue before the clock reaches its
    ///   release — exactly the relationship a release-sorted stream's
    ///   lookahead has — so the open engine admits it at the same event,
    ///   with the same event count, as [`simulate_stream`] over the same
    ///   sequence would.
    pub fn offer(&mut self, app: AppSpec) -> Result<(), SimError> {
        if self.halted {
            return Err(SimError::InvalidScenario(
                "admission is closed: the horizon already halted this run".into(),
            ));
        }
        let (queue, position, last) = match &mut self.admission {
            Admission::Roster => {
                return Err(SimError::InvalidScenario(
                    "this engine was built from a closed roster; \
                     external submissions need Simulation::open"
                        .into(),
                ))
            }
            Admission::Open {
                feeder: Some(_), ..
            } => {
                return Err(SimError::InvalidScenario(
                    "admission is fed by a stream source; \
                     external submissions need Simulation::open"
                        .into(),
                ))
            }
            Admission::Open { closed: true, .. } => {
                return Err(SimError::InvalidScenario(
                    "admission has been closed; no further submissions are accepted".into(),
                ))
            }
            Admission::Open {
                queue,
                feeder: None,
                closed: false,
            } => {
                let last = queue.back().map_or(self.last_release, AppSpec::release);
                let position = self.admitted + queue.len();
                (queue, position, last)
            }
        };
        if !app.release().approx_gt(self.now) {
            return Err(SimError::InvalidScenario(format!(
                "submission release {} is not after the engine clock {}; \
                 assign a release strictly later than the current time",
                app.release(),
                self.now
            )));
        }
        validate_open_arrival(self.platform, &app, position, last)
            .map_err(|e| SimError::InvalidScenario(e.to_string()))?;
        queue.push_back(app);
        Ok(())
    }

    /// Declare the external arrival sequence complete: no further
    /// [`Simulation::offer`] is accepted, and once the queue drains and
    /// every admitted application finishes the run is
    /// [`Simulation::is_finished`]. Idempotent; a no-op for the
    /// closed-roster and stream modes (they are born closed).
    pub fn close_admission(&mut self) {
        if let Admission::Open { closed, .. } = &mut self.admission {
            *closed = true;
        }
    }

    /// Applications admitted so far (the full roster for a closed run).
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.admitted
    }

    /// Applications that completed their last instance so far.
    #[must_use]
    pub fn finished_count(&self) -> usize {
        self.finished
    }

    /// Applications currently in the system (admitted, not finished).
    #[must_use]
    pub fn live(&self) -> usize {
        self.admitted - self.finished
    }

    /// Slot indices of applications currently wanting I/O, in ascending
    /// `AppId` order, materialized into a fresh vector (the membership
    /// itself lives in a dense id-keyed structure; see
    /// [`Simulation::pending_len`] for the allocation-free count). For a
    /// closed release-sorted roster, slots equal positions in the input
    /// `apps` slice.
    #[must_use]
    pub fn pending_apps(&self) -> Vec<usize> {
        self.pending.entries().iter().map(|&(_, i)| i).collect()
    }

    /// Number of applications currently wanting I/O.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Cold per-application runtime slots (inspection hook for
    /// steppable use). For a closed roster, indices match the input
    /// `apps` slice; in stream mode a slot may hold a *retired* runtime
    /// until a later admission recycles it.
    #[must_use]
    pub fn runtimes(&self) -> &[AppRuntime] {
        &self.rts
    }

    /// Dense hot state parallel to [`Simulation::runtimes`] (phase
    /// tags, residual volumes, installed rates).
    #[must_use]
    pub fn hot(&self) -> &HotState {
        &self.hot
    }

    /// Effective PFS drain bandwidth installed by the last allocation
    /// (equals the platform bandwidth when no burst buffer is in use).
    #[must_use]
    pub fn drain_bw(&self) -> Bw {
        self.drain_bw
    }

    /// The congestion tap (inspection hook for steppable use: the last
    /// closed interval's signal, windowed aggregates, peaks).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Min-fold over every event source: the earliest instant at which
    /// anything can happen (`INFINITY` when nothing ever will). Mutating
    /// only through the predicted-completion cache fill — the exact scan
    /// [`Simulation::step`] would run — so peeking then stepping is
    /// bit-identical to stepping directly.
    fn peek_next_event(&mut self) -> Time {
        let mut t_next = Time::INFINITY;
        if let Some(&(t, _, _)) = self.releases.last() {
            t_next = t_next.min(t);
        }
        if let Admission::Open { queue, .. } = &self.admission {
            if let Some(app) = queue.front() {
                t_next = t_next.min(app.release());
            }
        }
        if let Some(at) = self.compute.peek_min_at() {
            t_next = t_next.min(at);
        }
        // Predicted I/O completions (to zero residues exactly). The
        // absolute completion instants only move when a rate, the
        // pending set or a phase changed, so the scan is skipped while
        // the cached predictions are still valid.
        if self.predicted_dirty {
            self.predicted.clear();
            let mut pmin = Time::INFINITY;
            for &(_, i) in self.pending.entries() {
                if self.hot.effective[i].get() > 0.0 {
                    let done = self.now + self.hot.remaining[i] / self.hot.effective[i];
                    self.predicted.push((i, done));
                    pmin = pmin.min(done);
                }
            }
            self.predicted_min = pmin;
            self.predicted_dirty = false;
        }
        // Min-folding is associative on these well-formed times (no NaN,
        // equal values share one bit pattern), so the cached minimum is
        // bit-identical to re-folding the scratch here.
        t_next = t_next.min(self.predicted_min);
        if let Some(b) = &self.bb {
            if let Some(dt) = b.next_event_in(self.inflow, self.drain_bw) {
                t_next = t_next.min(self.now + dt.max(Time::ZERO));
            }
        }
        // Timetable-style policies re-allocate at their own boundaries.
        // The candidate is cached for the decision trace's wakeup
        // attribution, sparing the traced step a second virtual call.
        self.wakeup_candidate = Time::INFINITY;
        if let Some(t) = self.policy.next_wakeup(self.now) {
            if t.approx_gt(self.now) {
                t_next = t_next.min(t);
                self.wakeup_candidate = t;
            }
        }
        // Communication traffic changes the available capacity at its
        // busy/idle transitions.
        if let Some(load) = &self.config.external_load {
            if let Some(t) = load.next_boundary(self.now) {
                if t.approx_gt(self.now) {
                    t_next = t_next.min(t);
                }
            }
        }
        t_next
    }

    /// The instant of the next scheduling event, `None` when no event is
    /// currently scheduled (run finished, or an open engine waiting for
    /// offers). A daemon uses this to sleep until either the event or
    /// the next external submission, whichever comes first.
    #[must_use]
    pub fn next_event_time(&mut self) -> Option<Time> {
        if self.is_finished() {
            return None;
        }
        let t = self.peek_next_event();
        t.is_finite().then_some(t)
    }

    /// Drive [`Simulation::step`] through every event scheduled at or
    /// before `bound`, then report why the drive stopped. The clock only
    /// ever sits on event instants — a bound between events does **not**
    /// advance the fluid state to the bound, so driving in bounded
    /// increments is bit-identical to free running (same events, same
    /// telemetry intervals, same outcome). This is the daemon's main
    /// loop primitive: advance to the virtual wall-clock, then wait for
    /// the earlier of the next event and the next submission.
    pub fn run_until(&mut self, bound: Time) -> Result<RunStatus, SimError> {
        loop {
            if self.is_finished() {
                return Ok(RunStatus::Finished);
            }
            let next = self.peek_next_event();
            if !next.is_finite() {
                if self.admission_open() && self.live() == 0 {
                    return Ok(RunStatus::Idle);
                }
                return Err(SimError::PolicyStalledSystem {
                    policy: self.policy.name(),
                    at: self.now.as_secs(),
                });
            }
            if next.approx_gt(bound) {
                return Ok(RunStatus::Blocked(next));
            }
            self.step()?;
        }
    }

    /// Advance to the next scheduling event: pick the earliest event
    /// time, move the fluid state there, fire the enabled transitions and
    /// re-run the policy.
    pub fn step(&mut self) -> Result<StepStatus, SimError> {
        if self.is_finished() {
            return Ok(StepStatus::Finished);
        }
        self.events += 1;
        if self.events > self.config.max_events {
            return Err(SimError::EventLimitExceeded {
                limit: self.config.max_events,
            });
        }
        #[cfg(feature = "obs-timing")]
        self.timing.steps.inc();
        #[cfg(feature = "obs-timing")]
        let mut watch = iosched_obs::Stopwatch::start();

        // --- Find the next event. ------------------------------------
        let t_next = self.peek_next_event();
        #[cfg(feature = "obs-timing")]
        self.timing.lap(StepTiming::PEEK, &mut watch);
        // The horizon halts the run before the next event would land
        // past it: advance the fluid state to exactly the horizon (so
        // the windowed integrals cover it) and stop. No transition is
        // due in `(now, horizon]`, so there is nothing to settle — in
        // particular no predicted completion (they are all `> horizon`
        // here) and no re-allocation. The approx tolerance of the event
        // guard means a just-past-horizon event may already have put
        // `now` a hair beyond `h`; the clock never moves backwards (a
        // regressing clock would emit a negative-length telemetry
        // sample and a trace segment with `end < start`). An *infinite*
        // t_next deliberately falls through to the stalled-system error
        // below — while the run is unfinished it can only mean a policy
        // stalled every pending application, and a horizon must not
        // convert that diagnostic into plausible-looking idle time.
        if let Some(h) = self.config.horizon {
            if t_next.is_finite() && t_next.approx_gt(h) {
                let h = h.max(self.now);
                self.advance_to(h, false);
                self.now = h;
                self.tel_open.end = self.now;
                let closed = self.tel_open;
                self.telemetry.record(closed);
                if let Some(steady) = &mut self.steady {
                    steady.record_interval(&closed);
                }
                if let Some(t) = &mut self.trace {
                    t.push(TraceSegment {
                        start: self.seg_start,
                        end: self.now,
                        capacity: self.seg_capacity,
                        grants: self.seg_grants.clone(),
                        effective: self.seg_effective.clone(),
                    });
                }
                self.halted = true;
                return Ok(StepStatus::Advanced);
            }
        }
        if !t_next.is_finite() {
            if self.admission_open() && self.live() == 0 {
                // Nothing in the system and admission still open: the
                // engine is waiting for an external offer. Hand the
                // event number back — an idle poll consumed nothing, and
                // the count must stay bit-identical to a run where the
                // poll never happened.
                self.events -= 1;
                return Ok(StepStatus::Idle);
            }
            // Applications remain but nothing can ever happen again.
            return Err(SimError::PolicyStalledSystem {
                policy: self.policy.name(),
                at: self.now.as_secs(),
            });
        }
        // Decision trace: attribute the step to a policy-scheduled
        // wakeup when that is what won the event scan (the candidate
        // was cached by `peek_next_event`, so this costs no extra
        // policy call). Bit-compare — the trace must not blur
        // coincident events into wakeups.
        if self.dtrace.is_some() && self.wakeup_candidate.get().to_bits() == t_next.get().to_bits()
        {
            self.trace_push(TraceEvent::PolicyWakeup {
                t: t_next.as_secs(),
            });
        }

        // --- Advance the fluid state to t_next. -----------------------
        self.advance_to(t_next, true);
        self.now = t_next;
        // Close the telemetry interval the last allocation opened (the
        // installed rates were constant across it — the fluid model).
        self.tel_open.end = self.now;
        let closed = self.tel_open;
        self.telemetry.record(closed);
        if let Some(steady) = &mut self.steady {
            steady.record_interval(&closed);
        }
        #[cfg(feature = "obs-timing")]
        self.timing.lap(StepTiming::ADVANCE, &mut watch);

        // --- State transitions and re-allocation. ---------------------
        self.settle_transitions()?;
        if let Some(t) = &mut self.trace {
            t.push(TraceSegment {
                start: self.seg_start,
                end: self.now,
                capacity: self.seg_capacity,
                grants: self.seg_grants.clone(),
                effective: self.seg_effective.clone(),
            });
        }
        #[cfg(feature = "obs-timing")]
        self.timing.lap(StepTiming::SETTLE, &mut watch);
        self.allocate()?;
        self.snapshot_segment();
        #[cfg(feature = "obs-timing")]
        self.timing.lap(StepTiming::ALLOCATE, &mut watch);
        Ok(StepStatus::Advanced)
    }

    /// Drive [`Simulation::step`] until every application finished (or
    /// the horizon halts the run) and assemble the outcome.
    pub fn run_to_completion(mut self) -> Result<SimOutcome, SimError> {
        while !self.is_finished() {
            if self.step()? == StepStatus::Idle {
                // Waiting forever on offers that cannot come — the
                // caller forgot to close admission.
                return Err(SimError::InvalidScenario(
                    "open admission was never closed; call close_admission \
                     before running to completion"
                        .into(),
                ));
            }
        }
        if self.finished == 0 {
            // Only a horizon can halt a run before anything finished;
            // objectives over zero applications are undefined.
            return Err(SimError::InvalidScenario(format!(
                "horizon {} ended the run before any application finished",
                self.config.horizon.unwrap_or(self.now)
            )));
        }
        Ok(self.into_outcome())
    }

    /// Consume the engine and assemble the objective report for the work
    /// completed so far (normally called once [`Simulation::is_finished`];
    /// applications still in flight — possible only under a horizon —
    /// are reported through the steady summary's `left_in_system`).
    ///
    /// # Panics
    /// Panics when no application finished yet.
    #[must_use]
    pub fn into_outcome(self) -> SimOutcome {
        let telemetry = self
            .config
            .telemetry
            .then(|| self.telemetry.summary())
            .flatten();
        // `admitted` for the summary counts applications that actually
        // entered the system: a closed roster cut by a horizon still
        // holds its never-released applications on the release stack,
        // and they must not inflate `left_in_system` (the stream path
        // admits on release, so the two modes agree).
        let entered = self.admitted - self.releases.len();
        let steady = self
            .steady
            .as_ref()
            .map(|acc| acc.summary(entered, self.finished));
        let (report, per_app_bytes) = if self.config.per_app_detail {
            let mut retired = self.retired;
            retired.sort_by_key(|(o, _)| o.id);
            let per_app_bytes = retired.iter().map(|(o, b)| (o.id, *b)).collect();
            let per_app: Vec<AppOutcome> = retired.into_iter().map(|(o, _)| o).collect();
            assert!(!per_app.is_empty(), "engine only collects finished runs");
            (ObjectiveReport::from_outcomes(per_app), per_app_bytes)
        } else {
            (self.agg.report(Vec::new()), Vec::new())
        };
        SimOutcome {
            report,
            trace: self.trace,
            events: self.events,
            end_time: self.now,
            per_app_bytes,
            telemetry,
            steady,
            decision_trace: self.dtrace,
        }
    }

    /// Attach a bounded decision trace keeping the last `capacity`
    /// scheduling events (admissions, grant sets, capacity-screen
    /// fallbacks, retirements, policy wakeups — plus whatever the
    /// embedding layer pushes through [`Simulation::trace_event`], e.g.
    /// the daemon's journal flushes). Observation-only: results are
    /// bit-identical with the trace on or off (pinned in
    /// `tests/obs_identity.rs`). Idempotent per attach — calling again
    /// replaces the trace.
    pub fn enable_decision_trace(&mut self, capacity: usize) {
        self.dtrace = Some(Box::new(DecisionTrace::new(capacity)));
    }

    /// The attached decision trace, if any.
    #[must_use]
    pub fn decision_trace(&self) -> Option<&DecisionTrace> {
        self.dtrace.as_deref()
    }

    /// Record an externally observed event into the attached trace
    /// (no-op without one). The daemon uses this to interleave journal
    /// flushes with the engine's own decisions.
    pub fn trace_event(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.dtrace {
            t.push(event);
        }
    }

    /// Outlined trace push: the hot paths branch on `is_some` and only
    /// then pay the call.
    #[cold]
    #[inline(never)]
    fn trace_push(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.dtrace {
            t.push(event);
        }
    }

    /// Snapshot of the engine-owned `obs-timing` registry: `sim.steps`
    /// counter plus `sim.step.{peek,advance,settle,allocate}.ns`
    /// histograms.
    #[cfg(feature = "obs-timing")]
    #[must_use]
    pub fn timing_snapshot(&self) -> iosched_obs::MetricsSnapshot {
        self.timing.registry.snapshot()
    }

    /// Decay the transferring volumes (and the burst-buffer level) from
    /// `self.now` to `t_next` at the installed constant rates — one
    /// fused pass over the predicted set, which is exactly the pending
    /// slots with a positive effective rate (zero-rate transfers
    /// neither decay nor complete, and every pending slot entered with
    /// a positive residue). With `collect`, winners — predicted
    /// completions at or before `t_next` — have their residues zeroed
    /// exactly, and they land (together with any residue the decay
    /// itself rounded to zero) in `completed`, in `AppId` order
    /// inherited from the predicted scan, for the settle pass. The
    /// horizon path advances without collecting: every predicted
    /// completion lies past the horizon, and the approx-tolerant
    /// winner check must not zero a transfer the pre-horizon halt will
    /// never settle.
    fn advance_to(&mut self, t_next: Time, collect: bool) {
        let dt = (t_next - self.now).max(Time::ZERO);
        let decay = dt.get() > 0.0;
        if collect {
            self.completed.clear();
        }
        for &(i, done) in &self.predicted {
            let mut due = false;
            if decay {
                let remaining = self.hot.remaining[i];
                let moved = self.hot.effective[i] * dt;
                let new_remaining = (remaining - moved).max(Bytes::ZERO);
                self.hot.bytes_moved[i] += moved.min(remaining);
                self.hot.started[i] = true;
                self.hot.remaining[i] = new_remaining;
                due = new_remaining.is_zero();
            }
            if collect {
                if done.approx_le(t_next) {
                    // Zero the winner's residue exactly.
                    self.hot.remaining[i] = Bytes::ZERO;
                    due = true;
                }
                if due {
                    self.completed.push(i);
                }
            }
        }
        if let Some(b) = &mut self.bb {
            b.advance(dt, self.inflow, self.drain_bw);
        }
    }

    /// The pending set is ordered by `AppId` (stable under roster
    /// permutation and slot reuse); slots are only the access path.
    fn pending_insert(&mut self, i: usize) {
        if self.pending.insert(self.hot.id[i], i) {
            self.predicted_dirty = true;
        }
    }

    fn pending_remove(&mut self, i: usize) {
        if self.pending.remove(self.hot.id[i]) {
            self.predicted_dirty = true;
        }
    }

    /// Fire every transition enabled at `self.now`. Transitions are
    /// per-application (they depend only on that application's state and
    /// the clock), so each source is drained once — no global fixpoint
    /// loop over all applications:
    ///
    /// * due releases pop off the release stack (closed roster) or are
    ///   admitted from the stream source (open system),
    /// * due compute completions pop off the compute heap,
    /// * pending applications whose residual volume reached zero complete
    ///   their instance (and may chain through zero-work/zero-volume
    ///   instances within [`Simulation::settle_app`]).
    ///
    /// Only stream admission can fail (a malformed source application).
    fn settle_transitions(&mut self) -> Result<(), SimError> {
        while let Some(&(t, _, i)) = self.releases.last() {
            if !t.approx_le(self.now) {
                break;
            }
            self.releases.pop();
            self.begin_instance(i, t.max(Time::ZERO));
        }
        loop {
            let due = match &self.admission {
                Admission::Open { queue, .. } => queue
                    .front()
                    .is_some_and(|app| app.release().approx_le(self.now)),
                Admission::Roster => false,
            };
            if !due {
                break;
            }
            let app = match &mut self.admission {
                Admission::Open { queue, .. } => queue.pop_front().expect("checked above"),
                Admission::Roster => unreachable!("due implies open admission"),
            };
            self.admit_streamed(app)?;
            // Eager feeder refill right after the admission — the
            // stream mode's lookahead discipline: exhaustion (and thus
            // `is_finished`) is decided the moment the last arrival is
            // admitted, never a step later.
            if let Admission::Open {
                queue,
                feeder: feeder @ Some(_),
                ..
            } = &mut self.admission
            {
                if queue.is_empty() {
                    match feeder.as_mut().expect("matched above").next() {
                        Some(next) => queue.push_back(next),
                        None => *feeder = None,
                    }
                }
            }
        }
        while let Some(at) = self.compute.peek_min_at() {
            if !at.approx_le(self.now) {
                break;
            }
            let ev = self.compute.pop_min().expect("peeked above");
            let i = ev.idx;
            let rt = &self.rts[i];
            let inst = rt.spec.instance(rt.instance);
            self.hot.io_requested_at[i] = self.now;
            self.hot.tag[i] = PhaseTag::Io;
            self.hot.remaining[i] = inst.vol;
            self.hot.started[i] = false;
            self.pending_insert(i);
            self.settle_app(i);
        }
        // Transfers whose residue reached zero in the advance to this
        // event, collected in `AppId` order — every other pending slot
        // still has a positive residue and nothing to settle. (Slots
        // admitted or unblocked above settled themselves on entry, and
        // recycling can't touch these: a collected slot is still live
        // until its own `settle_app` below retires it.)
        for k in 0..self.completed.len() {
            let i = self.completed[k];
            self.settle_app(i);
        }
        self.completed.clear();
        Ok(())
    }

    /// Admit one application from the stream source: validate it in
    /// isolation (the per-arrival slice of the open-system contract —
    /// the same [`validate_open_arrival`] rules `simulate_open` checks
    /// over whole slices), install it into a recycled or fresh slot and
    /// start its first instance.
    fn admit_streamed(&mut self, app: AppSpec) -> Result<(), SimError> {
        validate_open_arrival(self.platform, &app, self.admitted, self.last_release)
            .map_err(|e| SimError::InvalidScenario(e.to_string()))?;
        self.last_release = app.release();
        let release = app.release().max(Time::ZERO);
        let rt = AppRuntime::new(app, self.platform);
        let slot = match self.free.pop() {
            // Recycling drops the retired runtime held there — this is
            // what keeps the arena at peak-concurrency size.
            Some(slot) => {
                self.rts[slot] = rt;
                self.hot.reset_slot(slot, &self.rts[slot], self.platform);
                slot
            }
            None => {
                self.rts.push(rt);
                let slot = self.rts.len() - 1;
                let hot_slot = self.hot.push_app(&self.rts[slot], self.platform);
                debug_assert_eq!(slot, hot_slot, "hot state parallel to the arena");
                slot
            }
        };
        self.admitted += 1;
        self.begin_instance(slot, release);
        Ok(())
    }

    /// Start application `i`'s current instance at `at` and register it
    /// with the matching event source.
    fn begin_instance(&mut self, i: usize, at: Time) {
        if self.dtrace.is_some() {
            self.trace_push(TraceEvent::Admission {
                id: self.rts[i].spec.id().0 as u64,
                t: at.as_secs(),
                release: self.rts[i].spec.release().as_secs(),
            });
        }
        self.hot.start_instance(i, &self.rts[i], at);
        match self.hot.tag[i] {
            PhaseTag::Computing => self.compute.push(ComputeEvent {
                at: self.hot.done_at[i],
                id: self.hot.id[i],
                idx: i,
            }),
            PhaseTag::Io => {
                self.pending_insert(i);
                self.settle_app(i);
            }
            _ => unreachable!("start_instance enters Computing or Io"),
        }
    }

    /// Chain through instance completions of one pending application:
    /// a zero residual volume completes the instance, and the next
    /// instance may immediately complete again (zero work and zero
    /// volume), finish — and retire — the application, or hand it to the
    /// compute heap.
    fn settle_app(&mut self, i: usize) {
        loop {
            if self.hot.tag[i] != PhaseTag::Io || !self.hot.remaining[i].is_zero() {
                return;
            }
            // The completion invalidates this application's predicted
            // entry even when it stays pending (zero-work chaining).
            self.predicted_dirty = true;
            let rt = &mut self.rts[i];
            rt.progress.complete_instance();
            rt.instance += 1;
            self.hot.last_io_end[i] = self.now;
            self.hot.rate[i] = Bw::ZERO;
            self.hot.effective[i] = Bw::ZERO;
            if rt.instance == rt.spec.instance_count() {
                rt.progress.finish(self.now);
                self.hot.tag[i] = PhaseTag::Finished;
                self.finished += 1;
                self.pending_remove(i);
                self.retire(i);
                return;
            }
            self.hot.refresh_keys(i, &rt.progress);
            self.hot.start_instance(i, &self.rts[i], self.now);
            if self.hot.tag[i] == PhaseTag::Computing {
                self.compute.push(ComputeEvent {
                    at: self.hot.done_at[i],
                    id: self.hot.id[i],
                    idx: i,
                });
                self.pending_remove(i);
                return;
            }
            // Zero-work instance: straight back to Io; loop to catch a
            // zero-volume transfer completing instantly.
        }
    }

    /// Compact a just-finished application out of its slot: its objective
    /// contribution is extracted now (a handful of scalars), and in
    /// stream mode the slot goes back on the free list for the next
    /// admission to recycle — peak memory tracks concurrency, not the
    /// total application count.
    fn retire(&mut self, i: usize) {
        let rt = &self.rts[i];
        let d = self.now;
        let outcome = AppOutcome {
            id: rt.spec.id(),
            procs: rt.spec.procs(),
            release: rt.spec.release(),
            finish: d,
            rho: rt.progress.rho(d),
            rho_tilde: rt.progress.rho_tilde(d),
        };
        if let Some(steady) = &mut self.steady {
            steady.record_finish(&outcome);
        }
        if self.config.per_app_detail {
            #[cfg(debug_assertions)]
            if matches!(self.admission, Admission::Roster) {
                debug_assert!(
                    self.retired.len() < self.retired.capacity(),
                    "closed-roster retirements must fit the pre-sized buffer"
                );
            }
            self.retired.push((outcome, self.hot.bytes_moved[i]));
        } else {
            self.agg.fold(&outcome);
        }
        if matches!(self.admission, Admission::Open { .. }) {
            self.free.push(i);
        }
        if self.dtrace.is_some() {
            self.trace_push(TraceEvent::Retirement {
                id: self.rts[i].spec.id().0 as u64,
                t: d.as_secs(),
            });
        }
    }

    /// Re-run the policy and install the granted/effective rates; records
    /// the effective PFS drain bandwidth for the burst buffer (equal to
    /// `B` when no buffer is in use).
    fn allocate(&mut self) -> Result<(), SimError> {
        let now = self.now;
        // Communication traffic (§7 extension) shrinks the shared pipe.
        let load_factor = self
            .config
            .external_load
            .as_ref()
            .map_or(1.0, |l| l.capacity_factor(now));
        let capacity = match &self.bb {
            Some(b) => b.ingest_capacity(self.platform.total_bw),
            None => self.platform.total_bw * load_factor,
        };
        if self.pending.is_empty() {
            // Nothing is ingesting, but a burst buffer may still be
            // draining the interleaved data of earlier writers — that
            // drain contends on the disk tier exactly like the live
            // streams did (the Fig. 1 effect does not evaporate when the
            // writers go idle).
            self.drain_bw = match &mut self.bb {
                Some(b) => {
                    self.platform.total_bw * self.platform.interference.factor(b.note_streams(0))
                }
                None => self.platform.total_bw,
            };
            self.inflow = Bw::ZERO;
            self.tel_open = TelemetrySample::idle(now, capacity);
            return Ok(());
        }
        self.snapshot.clear();
        let mut offered = Bw::ZERO;
        let mut backlog = Bytes::ZERO;
        for &(id, i) in self.pending.entries() {
            debug_assert_eq!(self.hot.tag[i], PhaseTag::Io, "pending slots are in Io");
            backlog += self.hot.remaining[i];
            // Telemetry offered load is the *raw* card limit `β·b` —
            // under a deep storm the capacity-clamped `max_bw` handed to
            // the policy would collapse contention to the pending count,
            // under-reporting demand exactly when congestion is deepest.
            let card = self.hot.card[i];
            offered += card;
            let max_bw = card.min(capacity);
            // ρ̃ and the derived keys, rebuilt from the cached prefix
            // sums with the same operations on the same values as the
            // `AppProgress` methods — bit-identical, off flat arrays.
            // ρ's division is hoisted to the key refresh (`key_rho`).
            let elapsed = now - self.hot.release[i];
            let rho = self.hot.key_rho[i];
            let rho_tilde = if elapsed.get() <= EPS {
                rho
            } else {
                self.hot.key_work_done[i] / elapsed
            };
            let dilation_ratio = if rho <= 0.0 {
                1.0
            } else {
                (rho_tilde / rho).min(1.0)
            };
            self.snapshot.push(AppState {
                id,
                procs: self.hot.procs[i],
                dilation_ratio,
                syseff_key: self.hot.procs[i] as f64 * rho_tilde,
                last_io_end: self.hot.last_io_end[i],
                io_requested_at: self.hot.io_requested_at[i],
                started_io: self.hot.started[i],
                max_bw,
            });
        }
        // The signal reflects the last *closed* interval — the policy
        // observes the past, never the allocation it is about to make.
        let ctx = self
            .snapshot
            .context_with_signal(now, capacity, self.telemetry.signal());
        // The policy writes its grants into the reused workspace; the
        // `allocate_into` contract demands bit-identical output to the
        // allocating `allocate` path.
        self.policy.allocate_into(&ctx, &mut self.scratch);
        let grants = &self.scratch.alloc.grants;
        let active = grants.iter().filter(|(_, b)| b.get() > 0.0).count();
        // Disk-locality interference: `n` uncoordinated streams degrade the
        // disk-backed tier's delivered bandwidth (Fig. 1). Without a burst
        // buffer the penalty hits the application rates directly. With one,
        // the SSD absorb tier itself is penalty-free (§3.1: "solid-state
        // drives do not present the problem"), but the buffered data of `n`
        // applications interleaves, so the PFS *drain* — and, under
        // back-pressure once the buffer is full, the ingest too — runs at
        // `B·factor(n)`. This is why "burst buffers cannot prevent congestion
        // at all times" (§1): the penalty merely hides until the buffer fills.
        let contended = self.platform.interference.factor(active);
        let ingest_factor = match &self.bb {
            Some(b) if !b.is_throttled() => 1.0,
            _ => contended,
        };
        // Both `pending` and `alloc.grants` are in `AppId` order (the
        // StateBuffer contract and the Allocation invariant), so one merge
        // walk applies the grants in O(pending + grants) instead of a
        // binary search per application. Every pending application is
        // visited (non-granted ones install zero), so the walk doubles as
        // the change detector for the predicted-completion cache, the
        // telemetry aggregation pass, *and* the §2.1 capacity screen: the
        // exact comparisons below over-approximate [`Allocation::validate`]
        // (`approx_gt` implies `>`), and any hit drops to the cold path
        // where `validate` produces its canonical first-violation message.
        // A merge walk that matches every grant has, by construction,
        // checked sortedness, uniqueness and pending-membership.
        let states = ctx.pending;
        let mut gi = 0;
        let mut matched = 0usize;
        let mut suspect = false;
        let mut total_granted = Bw::ZERO;
        let mut total_delivered = Bw::ZERO;
        // Fused predicted-completion rebuild: the walk sees exactly the
        // values the next event scan would (the clock and the residues
        // only move *after* that scan), so building the predictions here
        // and committing them iff the step ends dirty is bit-identical to
        // rebuilding lazily — minus one full pass per event. On the rare
        // clean step the speculative buffer is simply dropped.
        self.predicted_next.clear();
        let mut pmin_next = Time::INFINITY;
        for (k, &(id, i)) in self.pending.entries().iter().enumerate() {
            while gi < grants.len() && grants[gi].0 < id {
                gi += 1;
            }
            let granted = match grants.get(gi) {
                Some(&(gid, bw)) if gid == id => {
                    matched += 1;
                    suspect |=
                        !bw.is_finite() || bw.get() < 0.0 || bw.get() > states[k].max_bw.get();
                    bw
                }
                _ => Bw::ZERO,
            };
            let effective = granted * ingest_factor;
            if self.hot.effective[i].get().to_bits() != effective.get().to_bits() {
                self.predicted_dirty = true;
            }
            self.hot.rate[i] = granted;
            self.hot.effective[i] = effective;
            total_granted += granted;
            total_delivered += effective;
            if effective.get() > 0.0 {
                let done = now + self.hot.remaining[i] / effective;
                self.predicted_next.push((i, done));
                pmin_next = pmin_next.min(done);
            }
        }
        if self.predicted_dirty {
            std::mem::swap(&mut self.predicted, &mut self.predicted_next);
            self.predicted_min = pmin_next;
            self.predicted_dirty = false;
        }
        if matched != grants.len() || total_granted.get() > ctx.total_bw.get() {
            suspect = true;
        }
        if suspect {
            // Direct field access instead of `trace_push`: `ctx` still
            // borrows the snapshot arena, so a whole-`self` method call
            // is off the table here.
            if let Some(tr) = &mut self.dtrace {
                tr.push(TraceEvent::CapacityScreen {
                    t: now.as_secs(),
                    policy: self.policy.name(),
                });
            }
            // Cold path: a screen tripped, but only the tolerance-aware
            // check decides (an overshoot within EPS is permitted, exactly
            // as before). The rates already installed above are moot on
            // the error path — a failed allocation aborts the run.
            self.scratch
                .alloc
                .validate(&ctx)
                .map_err(|detail| SimError::InvalidAllocation {
                    policy: self.policy.name(),
                    detail,
                })?;
        }
        // A policy that schedules its own wakeups (a timetable) may stall
        // everyone between reservation windows; an event-driven policy that
        // grants nothing would livelock the system. (`total_granted` folds
        // in a zero per non-granted application, which leaves the sum
        // bit-identical to `alloc.total()` — grants are non-negative here.)
        if total_granted.is_zero() && capacity.get() > 0.0 && self.policy.next_wakeup(now).is_none()
        {
            return Err(SimError::PolicyStalledSystem {
                policy: self.policy.name(),
                at: now.as_secs(),
            });
        }
        self.drain_bw = match &mut self.bb {
            Some(b) => {
                let streams = b.note_streams(active);
                self.platform.total_bw * self.platform.interference.factor(streams)
            }
            None => self.platform.total_bw,
        };
        self.inflow = total_delivered;
        // Open the telemetry interval these rates govern (closed at the
        // next event).
        self.tel_open = TelemetrySample {
            start: now,
            end: now,
            offered,
            granted: total_granted,
            delivered: total_delivered,
            capacity,
            backlog,
            pending: self.pending.len(),
        };
        if let Some(tr) = &mut self.dtrace {
            tr.push(TraceEvent::Grant {
                t: now.as_secs(),
                pending: self.pending.len() as u64,
                granted: active as u64,
                total_bw: total_granted.get(),
                capacity: capacity.get(),
            });
        }
        Ok(())
    }

    /// Capture the current allocation for the trace segment being built
    /// (skipped entirely when no trace was requested).
    fn snapshot_segment(&mut self) {
        self.seg_start = self.now;
        if self.trace.is_none() {
            return;
        }
        self.seg_grants.clear();
        self.seg_effective.clear();
        // At most one entry per pending application; reserve up front so
        // the fill below never reallocates (debug-asserted).
        let need = self.pending.len();
        self.seg_grants.reserve(need);
        self.seg_effective.reserve(need);
        #[cfg(debug_assertions)]
        let caps = (self.seg_grants.capacity(), self.seg_effective.capacity());
        let load_factor = self
            .config
            .external_load
            .as_ref()
            .map_or(1.0, |l| l.capacity_factor(self.now));
        self.seg_capacity = match &self.bb {
            Some(b) => b.ingest_capacity(self.platform.total_bw),
            None => self.platform.total_bw * load_factor,
        };
        for &(id, i) in self.pending.entries() {
            if self.hot.rate[i].get() > 0.0 {
                self.seg_grants.push((id, self.hot.rate[i]));
                self.seg_effective.push((id, self.hot.effective[i]));
            }
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            caps,
            (self.seg_grants.capacity(), self.seg_effective.capacity()),
            "trace-segment buffers must not reallocate mid-fill"
        );
    }
}

/// Run `policy` over `apps` on `platform` until every application
/// completes; returns the objective report (and optional trace).
///
/// One-shot wrapper over the [`Simulation`] lifecycle.
pub fn simulate(
    platform: &Platform,
    apps: &[AppSpec],
    policy: &mut dyn OnlinePolicy,
    config: &SimConfig,
) -> Result<SimOutcome, SimError> {
    Simulation::new(platform, apps, policy, config)?.run_to_completion()
}

/// Run `policy` over a lazy, release-sorted application stream —
/// the open-system one-shot wrapper over [`Simulation::from_stream`].
/// Peak memory tracks the stream's *concurrency*, never its length.
pub fn simulate_stream<'a>(
    platform: &'a Platform,
    source: impl Iterator<Item = AppSpec> + 'a,
    policy: &'a mut dyn OnlinePolicy,
    config: &'a SimConfig,
) -> Result<SimOutcome, SimError> {
    Simulation::from_stream(platform, source, policy, config)?.run_to_completion()
}

/// Run `policy` over a *materialized* open-system roster (release-sorted,
/// per-application feasibility instead of the closed `Σβ ≤ N` budget) —
/// the campaign layer's entry point for stream workloads whose roster a
/// seed block already shares across the policy axis.
pub fn simulate_open(
    platform: &Platform,
    apps: &[AppSpec],
    policy: &mut dyn OnlinePolicy,
    config: &SimConfig,
) -> Result<SimOutcome, SimError> {
    validate_open_scenario(platform, apps).map_err(|e| SimError::InvalidScenario(e.to_string()))?;
    Simulation::from_stream(platform, apps.iter().cloned(), policy, config)?.run_to_completion()
}
#[cfg(test)]
mod tests {
    use super::*;
    use iosched_core::heuristics::{MaxSysEff, MinDilation, RoundRobin};
    use iosched_core::policy::SchedContext;
    use iosched_model::{AppId, Bytes};

    fn platform() -> Platform {
        Platform::new("t", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    /// w = 8 s, vol = 20 GiB on 100 procs: dedicated span 10 s/instance.
    fn app(id: usize, instances: usize) -> AppSpec {
        AppSpec::periodic(
            id,
            Time::ZERO,
            100,
            Time::secs(8.0),
            Bytes::gib(20.0),
            instances,
        )
    }

    #[test]
    fn single_app_runs_at_dedicated_speed() {
        let p = platform();
        let out = simulate(&p, &[app(0, 3)], &mut RoundRobin, &SimConfig::traced()).unwrap();
        let o = out.report.app(AppId(0)).unwrap();
        assert!(o.finish.approx_eq(Time::secs(30.0)), "finish {}", o.finish);
        assert!((o.rho_tilde - 0.8).abs() < 1e-9);
        assert!((out.report.dilation - 1.0).abs() < 1e-9);
        // Conservation: the trace delivered exactly 60 GiB.
        let trace = out.trace.as_ref().unwrap();
        assert!(trace.delivered(AppId(0)).approx_eq(Bytes::gib(60.0)));
        trace.validate(&p, &|_| Some(100)).unwrap();
    }

    #[test]
    fn two_apps_contend_and_someone_waits() {
        let p = platform();
        let out = simulate(
            &p,
            &[app(0, 2), app(1, 2)],
            &mut MinDilation,
            &SimConfig::default(),
        )
        .unwrap();
        // Both need the full PFS for their transfers; total I/O work is
        // 80 GiB = 8 s of PFS time, computes overlap. Last finish ≥ 8+8+2+2.
        let makespan = out.report.makespan();
        assert!(
            makespan.approx_ge(Time::secs(22.0)),
            "makespan {makespan} too small"
        );
        assert!(out.report.dilation > 1.0);
        // Work conserved for both apps.
        for id in [AppId(0), AppId(1)] {
            let bytes = out.bytes_of(id).unwrap();
            assert!(bytes.approx_eq(Bytes::gib(40.0)), "{id}: {bytes}");
        }
    }

    #[test]
    fn release_times_are_respected() {
        let p = platform();
        let mut late = app(1, 1);
        late.set_release(Time::secs(100.0));
        let out = simulate(
            &p,
            &[app(0, 1), late],
            &mut RoundRobin,
            &SimConfig::default(),
        )
        .unwrap();
        let o = out.report.app(AppId(1)).unwrap();
        assert!(o.finish.approx_ge(Time::secs(110.0)));
        assert!((o.rho_tilde - 0.8).abs() < 1e-9, "late app ran dedicated");
    }

    #[test]
    fn zero_work_and_zero_vol_instances() {
        let p = platform();
        use iosched_model::{Instance, InstancePattern};
        let spec = AppSpec::new(
            0,
            Time::ZERO,
            100,
            InstancePattern::Explicit(vec![
                Instance::new(Time::ZERO, Bytes::gib(10.0)), // pure I/O
                Instance::new(Time::secs(5.0), Bytes::ZERO), // pure compute
                Instance::new(Time::secs(1.0), Bytes::gib(10.0)),
            ]),
        );
        let out = simulate(&p, &[spec], &mut MaxSysEff, &SimConfig::default()).unwrap();
        let o = out.report.app(AppId(0)).unwrap();
        // 1 + 5 + 1 + 1 = 8 s total.
        assert!(o.finish.approx_eq(Time::secs(8.0)), "finish {}", o.finish);
        assert!((out.report.dilation - 1.0).abs() < 1e-9);
    }

    #[test]
    fn burst_buffer_requires_spec() {
        let p = platform();
        let err = simulate(
            &p,
            &[app(0, 1)],
            &mut RoundRobin,
            &SimConfig::with_burst_buffer(),
        );
        assert!(matches!(err, Err(SimError::InvalidScenario(_))));
    }

    #[test]
    fn burst_buffer_absorbs_bursts_faster() {
        let p = platform().with_default_burst_buffer();
        let apps = [app(0, 2), app(1, 2), app(2, 2)];
        let without = simulate(&p, &apps, &mut RoundRobin, &SimConfig::default()).unwrap();
        let with = simulate(&p, &apps, &mut RoundRobin, &SimConfig::with_burst_buffer()).unwrap();
        assert!(
            with.report.sys_efficiency >= without.report.sys_efficiency - 1e-9,
            "BB must not hurt: {} vs {}",
            with.report.sys_efficiency,
            without.report.sys_efficiency
        );
        assert!(with.report.makespan().approx_le(without.report.makespan()));
    }

    #[test]
    fn interference_slows_fair_sharing_policies_less_serialized_ones() {
        use iosched_model::Interference;
        let p = platform().with_interference(Interference::default_penalty());
        // Heuristics serialize (one app at a time at 10 GiB/s) → factor 1.
        let out = simulate(
            &p,
            &[app(0, 2), app(1, 2)],
            &mut MinDilation,
            &SimConfig::default(),
        )
        .unwrap();
        let clean = simulate(
            &platform(),
            &[app(0, 2), app(1, 2)],
            &mut MinDilation,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(
            (out.report.sys_efficiency - clean.report.sys_efficiency).abs() < 1e-9,
            "serializing policy unaffected by locality penalty"
        );
    }

    #[test]
    fn invalid_scenario_is_rejected() {
        let p = platform();
        // 600 + 600 procs > 1000.
        let a = AppSpec::periodic(0, Time::ZERO, 600, Time::secs(1.0), Bytes::gib(1.0), 1);
        let b = AppSpec::periodic(1, Time::ZERO, 600, Time::secs(1.0), Bytes::gib(1.0), 1);
        let err = simulate(&p, &[a, b], &mut RoundRobin, &SimConfig::default());
        assert!(matches!(err, Err(SimError::InvalidScenario(_))));
        let err = simulate(&p, &[], &mut RoundRobin, &SimConfig::default());
        assert!(matches!(err, Err(SimError::InvalidScenario(_))));
    }

    #[test]
    fn event_budget_guard_triggers() {
        let p = platform();
        let cfg = SimConfig {
            max_events: 3,
            ..SimConfig::default()
        };
        let apps: Vec<AppSpec> = (0..4).map(|i| app(i, 5)).collect();
        let err = simulate(&p, &apps, &mut RoundRobin, &cfg);
        assert!(matches!(err, Err(SimError::EventLimitExceeded { .. })));
    }

    /// Failure injection: a policy that overcommits the PFS.
    struct RoguePolicy;
    impl OnlinePolicy for RoguePolicy {
        fn name(&self) -> String {
            "rogue".into()
        }
        fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
            (0..ctx.pending.len()).collect()
        }
        fn allocate(&mut self, ctx: &SchedContext<'_>) -> iosched_core::policy::Allocation {
            iosched_core::policy::Allocation {
                grants: ctx
                    .pending
                    .iter()
                    .map(|a| (a.id, ctx.total_bw * 2.0))
                    .collect(),
            }
        }
    }

    /// Failure injection: a policy that grants nothing and never wakes up.
    struct SilentPolicy;
    impl OnlinePolicy for SilentPolicy {
        fn name(&self) -> String {
            "silent".into()
        }
        fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
            (0..ctx.pending.len()).collect()
        }
        fn allocate(&mut self, _ctx: &SchedContext<'_>) -> iosched_core::policy::Allocation {
            iosched_core::policy::Allocation::empty()
        }
    }

    #[test]
    fn external_load_slows_io_exactly() {
        use crate::external_load::ExternalLoad;
        let p = platform();
        // Fully-blocking communication for the first 10 s of each 20 s.
        let cfg = SimConfig {
            external_load: Some(ExternalLoad {
                period: Time::secs(20.0),
                busy: Time::secs(10.0),
                fraction: 1.0,
            }),
            ..SimConfig::default()
        };
        // One app: compute [0, 8), then 20 GiB needing 2 s at full B —
        // but the network is blocked until t = 10, so I/O runs [10, 12).
        let out = simulate(&p, &[app(0, 1)], &mut MaxSysEff, &cfg).unwrap();
        let o = out.report.app(AppId(0)).unwrap();
        assert!(
            o.finish.approx_eq(Time::secs(12.0)),
            "finish {} (expected 12 s: stall until the busy phase ends)",
            o.finish
        );
        // §7 (ii): without communication traffic the run is unaffected.
        let quiet = SimConfig {
            external_load: Some(ExternalLoad {
                period: Time::secs(20.0),
                busy: Time::secs(10.0),
                fraction: 0.0,
            }),
            ..SimConfig::default()
        };
        let out = simulate(&p, &[app(0, 1)], &mut MaxSysEff, &quiet).unwrap();
        assert!(out
            .report
            .app(AppId(0))
            .unwrap()
            .finish
            .approx_eq(Time::secs(10.0)));
    }

    #[test]
    fn external_load_partial_fraction_shares_the_pipe() {
        use crate::external_load::ExternalLoad;
        let p = platform();
        // Communications permanently eat half of B → app bandwidth 5 GiB/s
        // → each 20 GiB transfer takes 4 s instead of 2.
        let cfg = SimConfig {
            external_load: Some(ExternalLoad {
                period: Time::secs(1.0),
                busy: Time::secs(1.0),
                fraction: 0.5,
            }),
            ..SimConfig::default()
        };
        let out = simulate(&p, &[app(0, 2)], &mut MinDilation, &cfg).unwrap();
        let o = out.report.app(AppId(0)).unwrap();
        assert!(
            o.finish.approx_eq(Time::secs(24.0)),
            "finish {} (expected 2 × (8 + 4) s)",
            o.finish
        );
        // The §2.2 accounting attributes the slowdown to I/O congestion.
        assert!(out.report.dilation > 1.0);
    }

    #[test]
    fn external_load_and_burst_buffer_are_exclusive() {
        use crate::external_load::ExternalLoad;
        let p = platform().with_default_burst_buffer();
        let cfg = SimConfig {
            use_burst_buffer: true,
            external_load: Some(ExternalLoad {
                period: Time::secs(1.0),
                busy: Time::secs(0.5),
                fraction: 0.5,
            }),
            ..SimConfig::default()
        };
        assert!(matches!(
            simulate(&p, &[app(0, 1)], &mut RoundRobin, &cfg),
            Err(SimError::InvalidScenario(_))
        ));
    }

    #[test]
    fn overcommitting_policy_is_rejected() {
        let p = platform();
        let err = simulate(&p, &[app(0, 1)], &mut RoguePolicy, &SimConfig::default());
        match err {
            Err(SimError::InvalidAllocation { policy, .. }) => assert_eq!(policy, "rogue"),
            other => panic!("expected InvalidAllocation, got {other:?}"),
        }
    }

    #[test]
    fn silent_policy_is_detected_as_livelock() {
        let p = platform();
        let err = simulate(&p, &[app(0, 1)], &mut SilentPolicy, &SimConfig::default());
        match err {
            Err(SimError::PolicyStalledSystem { policy, .. }) => assert_eq!(policy, "silent"),
            other => panic!("expected PolicyStalledSystem, got {other:?}"),
        }
    }

    #[test]
    fn stepping_matches_the_one_shot_run() {
        let p = platform();
        let apps = [app(0, 3), app(1, 2)];
        let one_shot = simulate(&p, &apps, &mut MinDilation, &SimConfig::traced()).unwrap();

        let config = SimConfig::traced();
        let mut policy = MinDilation;
        let mut sim = Simulation::new(&p, &apps, &mut policy, &config).unwrap();
        let mut steps = 0;
        while sim.step().unwrap() == StepStatus::Advanced {
            steps += 1;
            assert!(sim.now().approx_ge(Time::ZERO));
            assert!(sim.pending_apps().len() <= apps.len());
        }
        assert!(sim.is_finished());
        let stepped = sim.into_outcome();

        assert_eq!(stepped.events, one_shot.events);
        assert_eq!(steps, one_shot.events);
        assert!(stepped.end_time.approx_eq(one_shot.end_time));
        assert_eq!(
            stepped.report.sys_efficiency.to_bits(),
            one_shot.report.sys_efficiency.to_bits(),
            "stepped and one-shot runs must agree bit-for-bit"
        );
        assert_eq!(
            stepped.report.dilation.to_bits(),
            one_shot.report.dilation.to_bits()
        );
        assert_eq!(
            stepped.trace.as_ref().unwrap().segments.len(),
            one_shot.trace.as_ref().unwrap().segments.len()
        );
    }

    #[test]
    fn step_after_finish_is_an_idempotent_no_op() {
        let p = platform();
        let apps = [app(0, 1)];
        let config = SimConfig::default();
        let mut policy = RoundRobin;
        let mut sim = Simulation::new(&p, &apps, &mut policy, &config).unwrap();
        while !sim.is_finished() {
            sim.step().unwrap();
        }
        let events = sim.events();
        assert_eq!(sim.step().unwrap(), StepStatus::Finished);
        assert_eq!(sim.step().unwrap(), StepStatus::Finished);
        assert_eq!(sim.events(), events, "no-op steps must not count events");
    }

    /// Regression: with no application ingesting, a burst buffer still
    /// draining the interleaved data of `n` earlier writers must drain at
    /// `B·factor(n)`, not the full `B` (the empty-pending early return
    /// used to skip the contended-drain path entirely).
    #[test]
    fn idle_drain_of_buffered_data_stays_contended() {
        use iosched_model::{Instance, InstancePattern, Interference};
        let p = platform()
            .with_interference(Interference::default_penalty())
            .with_default_burst_buffer();
        // Two apps dump a burst into the buffer, then compute for a long
        // time: the buffer keeps draining while nobody ingests.
        let burst_then_compute = |id: usize| {
            AppSpec::new(
                id,
                Time::ZERO,
                100,
                InstancePattern::Explicit(vec![
                    Instance::new(Time::ZERO, Bytes::gib(30.0)),
                    Instance::new(Time::secs(1_000.0), Bytes::gib(1.0)),
                ]),
            )
        };
        let apps = [burst_then_compute(0), burst_then_compute(1)];
        let config = SimConfig::with_burst_buffer();
        let mut policy = RoundRobin;
        let mut sim = Simulation::new(&p, &apps, &mut policy, &config).unwrap();
        // Advance until both bursts were absorbed (no pending I/O left).
        while !sim.pending_apps().is_empty() {
            sim.step().unwrap();
        }
        let expected = p.total_bw * p.interference.factor(2);
        assert!(
            sim.drain_bw().approx_eq(expected),
            "idle drain {} should contend like the 2 buffered writers ({})",
            sim.drain_bw(),
            expected
        );
    }

    /// Satellite regression (PR 3 cache × §7 external load): an
    /// external-load boundary that *changes* the granted rates must
    /// invalidate the cached absolute completion instants (the merge
    /// walk's rate-bits comparison sets the dirty flag), and a boundary
    /// that leaves every rate untouched must be free to keep them — in
    /// both cases the completion instants are exact, never stale.
    #[test]
    fn external_load_boundaries_never_leave_stale_predicted_completions() {
        use crate::external_load::ExternalLoad;
        let p = platform();
        // 20 procs → card limit 2 GiB/s; w = 8 s then 20 GiB.
        let small = AppSpec::periodic(0, Time::ZERO, 20, Time::secs(8.0), Bytes::gib(20.0), 1);

        // Case 1 — boundary with *unchanged* rates: while busy the pipe
        // still offers 5 GiB/s ≥ the 2 GiB/s card limit, so the grant is
        // identical on both sides of the t = 10 s boundary and the cached
        // completion at 8 + 20/2 = 18 s stays valid.
        let quiet = SimConfig {
            external_load: Some(ExternalLoad {
                period: Time::secs(20.0),
                busy: Time::secs(10.0),
                fraction: 0.5,
            }),
            ..SimConfig::default()
        };
        let out = simulate(&p, std::slice::from_ref(&small), &mut MaxSysEff, &quiet).unwrap();
        let o = out.report.app(AppId(0)).unwrap();
        assert!(
            o.finish.approx_eq(Time::secs(18.0)),
            "finish {} (expected 18 s: rate constant across the boundary)",
            o.finish
        );

        // Case 2 — boundary that changes the rate: while busy only
        // 1 GiB/s remains, so I/O runs [8, 10) at 1 GiB/s (2 GiB done)
        // and [10, 19) at 2 GiB/s. A stale cached prediction from the
        // busy interval (8 + 20/1 = 28 s) would overshoot by 9 s.
        let squeeze = SimConfig {
            external_load: Some(ExternalLoad {
                period: Time::secs(20.0),
                busy: Time::secs(10.0),
                fraction: 0.9,
            }),
            ..SimConfig::default()
        };
        let out = simulate(&p, &[small], &mut MaxSysEff, &squeeze).unwrap();
        let o = out.report.app(AppId(0)).unwrap();
        assert!(
            o.finish.approx_eq(Time::secs(19.0)),
            "finish {} (expected 19 s: the boundary re-rate must invalidate the cache)",
            o.finish
        );
    }

    #[test]
    fn telemetry_tap_observes_the_run_and_exports_on_request() {
        let p = platform();
        let apps = [app(0, 2), app(1, 2)];
        let config = SimConfig::with_telemetry();
        let mut policy = MinDilation;
        let mut sim = Simulation::new(&p, &apps, &mut policy, &config).unwrap();
        assert!(sim.telemetry().signal().is_none(), "nothing closed yet");
        sim.step().unwrap();
        let signal = sim.telemetry().signal().expect("first interval closed");
        // Both apps compute for the first 8 s: an idle, uncontended pipe.
        assert_eq!(signal.pending, 0);
        assert!(signal.contention == 0.0 && signal.utilization == 0.0);
        while !sim.is_finished() {
            sim.step().unwrap();
        }
        let samples = sim.telemetry().samples();
        assert!(samples > 0);
        let out = sim.into_outcome();
        let summary = out.telemetry.expect("telemetry flag requested a summary");
        assert_eq!(summary.samples, samples);
        assert!(summary.busy_secs > 0.0);
        // Two 20 GiB transfers through a 10 GiB/s serializing policy:
        // the pipe saturates while both contend.
        assert!(summary.utilization.max > 0.99);
        assert!(summary.peak_pending == 2);
        assert!(summary.peak_backlog_gib >= 20.0);
        assert!(summary.mean_utilization > 0.0 && summary.mean_utilization <= 1.0);
        // Without the flag the outcome carries no summary…
        let out = simulate(&p, &apps, &mut MinDilation, &SimConfig::default()).unwrap();
        assert!(out.telemetry.is_none());
    }

    #[test]
    fn telemetry_flag_does_not_move_a_single_bit() {
        let p = platform();
        let apps = [app(0, 3), app(1, 2), app(2, 2)];
        let on = simulate(&p, &apps, &mut MinDilation, &SimConfig::with_telemetry()).unwrap();
        let off = simulate(&p, &apps, &mut MinDilation, &SimConfig::default()).unwrap();
        assert_eq!(on.events, off.events);
        assert_eq!(
            on.report.sys_efficiency.to_bits(),
            off.report.sys_efficiency.to_bits()
        );
        assert_eq!(on.report.dilation.to_bits(), off.report.dilation.to_bits());
        assert!(on.telemetry.is_some() && off.telemetry.is_none());
    }

    #[test]
    fn control_policy_closes_its_loop_through_the_engine() {
        use iosched_core::control::ControlPolicy;
        let p = platform();
        let apps: Vec<AppSpec> = (0..4).map(|i| app(i, 3)).collect();
        let mut policy = ControlPolicy::pi_default();
        let out = simulate(&p, &apps, &mut policy, &SimConfig::with_telemetry()).unwrap();
        assert!(out.report.dilation >= 1.0);
        // Work is conserved: every app moved its full volume.
        for i in 0..4 {
            assert!(out.bytes_of(AppId(i)).unwrap().approx_eq(Bytes::gib(60.0)));
        }
        // The same closed-loop run under an external storm still
        // completes (the signal hand-off feeds the controller at every
        // event).
        let stormy = SimConfig {
            external_load: Some(crate::external_load::ExternalLoad {
                period: Time::secs(30.0),
                busy: Time::secs(15.0),
                fraction: 0.7,
            }),
            telemetry: true,
            ..SimConfig::default()
        };
        let mut policy = ControlPolicy::pi_default();
        let out = simulate(&p, &apps, &mut policy, &stormy).unwrap();
        assert!(out.telemetry.unwrap().mean_contention > 0.0);
    }

    /// A release-sorted closed roster fed through the stream path must
    /// reproduce the closed engine bit-for-bit: admission timing is the
    /// only difference, and releases are events either way.
    #[test]
    fn stream_path_matches_closed_path_on_a_closed_roster() {
        let p = platform();
        let mut apps: Vec<AppSpec> = (0..5).map(|i| app(i, 3)).collect();
        for (i, a) in apps.iter_mut().enumerate() {
            a.set_release(Time::secs(i as f64 * 3.0));
        }
        let closed = simulate(&p, &apps, &mut MinDilation, &SimConfig::default()).unwrap();
        let streamed = simulate_open(&p, &apps, &mut MinDilation, &SimConfig::default()).unwrap();
        assert_eq!(closed.events, streamed.events);
        assert_eq!(
            closed.report.sys_efficiency.to_bits(),
            streamed.report.sys_efficiency.to_bits()
        );
        assert_eq!(
            closed.report.dilation.to_bits(),
            streamed.report.dilation.to_bits()
        );
        assert_eq!(closed.per_app_bytes, streamed.per_app_bytes);
        // The stream path carries a steady summary, the closed one not.
        assert!(closed.steady.is_none());
        let steady = streamed.steady.expect("stream runs attach steady state");
        assert_eq!(steady.admitted, 5);
        assert_eq!(steady.completed, 5);
        assert_eq!(steady.left_in_system, 0);
    }

    /// The open system's point: a stream whose *total* processor demand
    /// vastly oversubscribes the machine runs fine as long as each
    /// application fits, and the slot arena tracks concurrency.
    #[test]
    fn stream_recycles_slots_and_relaxes_the_closed_budget() {
        let p = platform(); // 1,000 processors
        let n = 200;
        // 400 procs each, spread far apart: ≤ 2 concurrent.
        let apps: Vec<AppSpec> = (0..n)
            .map(|i| {
                AppSpec::periodic(
                    i,
                    Time::secs(i as f64 * 6.0),
                    400,
                    Time::secs(4.0),
                    Bytes::gib(20.0),
                    1,
                )
            })
            .collect();
        // Closed validation rejects the total (200 × 400 ≫ 1,000)…
        assert!(matches!(
            simulate(&p, &apps, &mut MinDilation, &SimConfig::default()),
            Err(SimError::InvalidScenario(_))
        ));
        // …the stream path runs it in a concurrency-sized arena.
        let config = SimConfig::default();
        let mut policy = MinDilation;
        let mut sim =
            Simulation::from_stream(&p, apps.iter().cloned(), &mut policy, &config).unwrap();
        while !sim.is_finished() {
            sim.step().unwrap();
        }
        assert!(
            sim.runtimes().len() <= 4,
            "arena held {} slots for {} apps",
            sim.runtimes().len(),
            n
        );
        assert_eq!(sim.admitted(), n);
        assert_eq!(sim.finished_count(), n);
        let out = sim.into_outcome();
        assert_eq!(out.report.per_app.len(), n);
        assert!((out.report.dilation - 1.0).abs() < 1e-9, "no contention");
    }

    #[test]
    fn horizon_halts_and_warmup_trims_the_steady_window() {
        let p = platform();
        // One app per 10 s, forever short of the horizon: w = 8 s,
        // vol = 20 GiB → 2 s of I/O, all dedicated.
        let apps: Vec<AppSpec> = (0..100)
            .map(|i| {
                AppSpec::periodic(
                    i,
                    Time::secs(i as f64 * 10.0),
                    100,
                    Time::secs(8.0),
                    Bytes::gib(20.0),
                    1,
                )
            })
            .collect();
        let config = SimConfig {
            warmup: Time::secs(100.0),
            horizon: Some(Time::secs(500.0)),
            ..SimConfig::default()
        };
        let out = simulate_open(&p, &apps, &mut MaxSysEff, &config).unwrap();
        assert!(
            out.end_time.approx_eq(Time::secs(500.0)),
            "{}",
            out.end_time
        );
        let steady = out.steady.expect("windowed run attaches steady state");
        // Releases at 0, 10, …, 500: the event at exactly the horizon is
        // still processed, so 51 applications were admitted and the last
        // one is cut off mid-flight.
        assert_eq!(steady.admitted, 51);
        assert_eq!(steady.left_in_system, 1);
        // Completions at 10, 20, …, 500: the 41 at `t ≥ 100` count.
        assert_eq!(steady.completed, 41);
        assert!((steady.window_secs - 400.0).abs() < 1e-6);
        assert!((steady.mean_stretch - 1.0).abs() < 1e-9);
        assert!((steady.max_stretch - 1.0).abs() < 1e-9);
        // 2 s of I/O per 10 s cycle → mean queue 0.2, utilization 0.2.
        assert!(
            (steady.mean_queue - 0.2).abs() < 1e-6,
            "{}",
            steady.mean_queue
        );
        assert!((steady.mean_utilization - 0.2).abs() < 1e-6);
        assert!((steady.throughput_per_hour - 41.0 * 9.0).abs() < 1e-6);
    }

    /// The halt advance must close the run cleanly: the clock never
    /// regresses, the final trace segment ends exactly at the horizon
    /// and the segments still tile.
    #[test]
    fn horizon_halt_keeps_trace_segments_tiled() {
        let p = platform();
        let apps = [app(0, 1), app(1, 3)];
        let config = SimConfig {
            record_trace: true,
            horizon: Some(Time::secs(15.0)),
            ..SimConfig::default()
        };
        let out = simulate(&p, &apps, &mut MinDilation, &config).unwrap();
        assert!(out.end_time.approx_eq(Time::secs(15.0)));
        // App 0 finished (t = 12 under contention ≤ 15); app 1 was cut.
        assert_eq!(out.report.per_app.len(), 1);
        let trace = out.trace.unwrap();
        assert!(trace.segments.last().unwrap().end.approx_eq(out.end_time));
        for w in trace.segments.windows(2) {
            assert!(w[0].end.approx_le(w[1].start), "segments must tile");
        }
        for seg in &trace.segments {
            assert!(seg.start.approx_le(seg.end), "no negative segments");
        }
    }

    /// A horizon must not mask a stalled policy: infinite t_next while
    /// applications are pending is a diagnostic, not idle time.
    #[test]
    fn horizon_does_not_mask_a_stalled_system() {
        let p = platform();
        let config = SimConfig {
            horizon: Some(Time::secs(200_000.0)),
            ..SimConfig::default()
        };
        let err = simulate(&p, &[app(0, 1)], &mut SilentPolicy, &config);
        match err {
            Err(SimError::PolicyStalledSystem { policy, .. }) => assert_eq!(policy, "silent"),
            other => panic!("expected PolicyStalledSystem, got {other:?}"),
        }
    }

    /// A closed roster cut by a horizon counts only *released*
    /// applications as admitted — never-released ones must not read as
    /// saturation (`left_in_system`), matching the stream path.
    #[test]
    fn horizon_on_closed_roster_counts_only_released_apps() {
        let p = platform();
        // Releases at 0, 40, 80, …, 360: only 0 and 40 land before the
        // horizon at 45; the first finishes at 10, the second is cut
        // mid-compute.
        let apps: Vec<AppSpec> = (0..10)
            .map(|i| {
                let mut a = app(i, 1);
                a.set_release(Time::secs(i as f64 * 40.0));
                a
            })
            .collect();
        let config = SimConfig {
            horizon: Some(Time::secs(45.0)),
            ..SimConfig::default()
        };
        let out = simulate(&p, &apps, &mut MinDilation, &config).unwrap();
        let steady = out.steady.expect("windowed run attaches steady state");
        assert_eq!(steady.admitted, 2, "only two releases fell before the cut");
        assert_eq!(steady.completed, 1);
        assert_eq!(steady.left_in_system, 1);
    }

    #[test]
    fn horizon_before_any_completion_is_a_config_error() {
        let p = platform();
        let config = SimConfig {
            horizon: Some(Time::secs(1.0)),
            ..SimConfig::default()
        };
        let err = simulate(&p, &[app(0, 1)], &mut MinDilation, &config);
        assert!(matches!(err, Err(SimError::InvalidScenario(_))), "{err:?}");
        // Degenerate windows are rejected outright.
        let bad = SimConfig {
            warmup: Time::secs(10.0),
            horizon: Some(Time::secs(5.0)),
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(SimConfig::windowed(Time::ZERO, Time::secs(100.0))
            .validate()
            .is_ok());
    }

    /// Switching the per-app detail off only drops the detail: the
    /// aggregate objectives agree with the detailed run (to rounding —
    /// the streaming fold sums in finish order) and nothing per-app is
    /// retained.
    #[test]
    fn lean_outcome_matches_detailed_aggregates() {
        let p = platform();
        let apps: Vec<AppSpec> = (0..6).map(|i| app(i, 2)).collect();
        let detailed = simulate_open(&p, &apps, &mut MinDilation, &SimConfig::default()).unwrap();
        let lean_config = SimConfig {
            per_app_detail: false,
            ..SimConfig::default()
        };
        let lean = simulate_open(&p, &apps, &mut MinDilation, &lean_config).unwrap();
        assert_eq!(lean.events, detailed.events);
        assert!(lean.report.per_app.is_empty());
        assert!(lean.per_app_bytes.is_empty());
        assert!((lean.report.sys_efficiency - detailed.report.sys_efficiency).abs() < 1e-12);
        assert!((lean.report.upper_limit - detailed.report.upper_limit).abs() < 1e-12);
        assert_eq!(
            lean.report.dilation.to_bits(),
            detailed.report.dilation.to_bits(),
            "max is order-independent"
        );
        assert!(lean.end_time.approx_eq(detailed.end_time));
    }

    #[test]
    fn empty_stream_is_rejected() {
        let p = platform();
        let config = SimConfig::default();
        let mut policy = MinDilation;
        let err = Simulation::from_stream(&p, std::iter::empty(), &mut policy, &config);
        assert!(matches!(err, Err(SimError::InvalidScenario(_))));
    }

    #[test]
    fn malformed_stream_arrivals_are_rejected_at_admission() {
        let p = platform();
        let config = SimConfig::default();
        // Ids not dense in release order.
        let mut policy = MinDilation;
        let bad_ids = vec![app(3, 1)];
        let err = Simulation::from_stream(&p, bad_ids.into_iter(), &mut policy, &config);
        assert!(matches!(err, Err(SimError::InvalidScenario(_))));
        // Releases going backwards.
        let mut a = app(0, 1);
        a.set_release(Time::secs(50.0));
        let mut b = app(1, 1);
        b.set_release(Time::secs(10.0));
        let mut policy = MinDilation;
        let mut sim =
            Simulation::from_stream(&p, vec![a, b].into_iter(), &mut policy, &config).unwrap();
        let err = loop {
            match sim.step() {
                Ok(StepStatus::Advanced) => {}
                Ok(StepStatus::Finished | StepStatus::Idle) => {
                    panic!("unsorted stream must error")
                }
                Err(e) => break e,
            }
        };
        assert!(matches!(err, SimError::InvalidScenario(_)), "{err}");
        // An application bigger than the machine.
        let huge = AppSpec::periodic(0, Time::ZERO, 10_000, Time::secs(1.0), Bytes::gib(1.0), 1);
        let mut policy = MinDilation;
        let err = Simulation::from_stream(&p, vec![huge].into_iter(), &mut policy, &config);
        assert!(matches!(err, Err(SimError::InvalidScenario(_))));
    }

    /// The window knobs ride through serde leniently and reject
    /// degenerate values at parse time.
    #[test]
    fn sim_config_window_serde() {
        let json = r#"{"warmup": 100.0, "horizon": 4000.0, "per_app_detail": false}"#;
        let config: SimConfig = serde_json::from_str(json).unwrap();
        assert!(config.warmup.approx_eq(Time::secs(100.0)));
        assert_eq!(config.horizon, Some(Time::secs(4_000.0)));
        assert!(!config.per_app_detail);
        // Defaults when absent.
        let config: SimConfig = serde_json::from_str(r#"{"telemetry": true}"#).unwrap();
        assert!(config.warmup.is_zero());
        assert!(config.horizon.is_none());
        assert!(config.per_app_detail);
        // Roundtrip.
        let full = SimConfig::windowed(Time::secs(50.0), Time::secs(2_000.0));
        let json = serde_json::to_string(&full).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(full, back);
        // A horizon inside the warmup is rejected at parse time.
        assert!(serde_json::from_str::<SimConfig>(r#"{"warmup": 10.0, "horizon": 5.0}"#).is_err());
    }

    #[test]
    fn trace_segments_tile_the_run() {
        let p = platform();
        let out = simulate(
            &p,
            &[app(0, 2), app(1, 2)],
            &mut RoundRobin,
            &SimConfig::traced(),
        )
        .unwrap();
        let trace = out.trace.unwrap();
        assert!(!trace.is_empty());
        trace.validate(&p, &|_| Some(100)).unwrap();
        for w in trace.segments.windows(2) {
            assert!(w[0].end.approx_le(w[1].start));
        }
    }

    /// Arrivals staggered so offers and engine events interleave.
    fn staggered(n: usize) -> Vec<AppSpec> {
        (0..n)
            .map(|k| {
                let mut a = app(k, 2);
                a.set_release(Time::secs(0.25 + 3.0 * k as f64));
                a
            })
            .collect()
    }

    /// The reentrant-admission contract: driving an open engine through
    /// externally offered arrivals — interleaved with bounded stepping —
    /// is bit-identical to `simulate_stream` over the same sequence, to
    /// the event count.
    #[test]
    fn open_offers_match_simulate_stream_bit_for_bit() {
        let p = platform();
        let config = SimConfig::default();
        let apps = staggered(6);

        let mut pol = MinDilation;
        let baseline = simulate_stream(&p, apps.iter().cloned(), &mut pol, &config).unwrap();

        let mut pol = MinDilation;
        let mut sim = Simulation::open(&p, &mut pol, &config).unwrap();
        for a in &apps {
            // Drive to just before the arrival, then offer it — every
            // offer lands with the clock strictly behind its release.
            let bound = a.release() - Time::secs(0.1);
            sim.run_until(bound).unwrap();
            sim.offer(a.clone()).unwrap();
        }
        sim.close_admission();
        let out = sim.run_to_completion().unwrap();

        assert_eq!(out.events, baseline.events, "event counts diverged");
        assert_eq!(
            out.end_time.get().to_bits(),
            baseline.end_time.get().to_bits()
        );
        assert_eq!(
            out.report.dilation.to_bits(),
            baseline.report.dilation.to_bits()
        );
        assert_eq!(
            out.report.sys_efficiency.to_bits(),
            baseline.report.sys_efficiency.to_bits()
        );
        for a in &apps {
            let ours = out.report.app(a.id()).unwrap();
            let theirs = baseline.report.app(a.id()).unwrap();
            assert_eq!(ours.finish.get().to_bits(), theirs.finish.get().to_bits());
            assert_eq!(ours.rho_tilde.to_bits(), theirs.rho_tilde.to_bits());
        }
    }

    /// Replaying a prefix of the offer sequence, then the rest, matches
    /// offering everything up front — the property the daemon's
    /// journal-replay checkpoint relies on.
    #[test]
    fn offer_sequence_replay_is_deterministic() {
        let p = platform();
        let config = SimConfig::default();
        let apps = staggered(5);

        // All offers before any stepping.
        let mut pol = MinDilation;
        let mut sim = Simulation::open(&p, &mut pol, &config).unwrap();
        for a in &apps {
            sim.offer(a.clone()).unwrap();
        }
        sim.close_admission();
        let all_up_front = sim.run_to_completion().unwrap();

        // Offers trickled in while the engine runs between them.
        let mut pol = MinDilation;
        let mut sim = Simulation::open(&p, &mut pol, &config).unwrap();
        for (k, a) in apps.iter().enumerate() {
            sim.offer(a.clone()).unwrap();
            if k == 2 {
                // Mid-sequence drive: the clock advances through the
                // first arrivals before the rest are even known.
                sim.run_until(a.release() - Time::secs(0.05)).unwrap();
            }
        }
        sim.close_admission();
        let trickled = sim.run_to_completion().unwrap();

        assert_eq!(all_up_front.events, trickled.events);
        assert_eq!(
            all_up_front.end_time.get().to_bits(),
            trickled.end_time.get().to_bits()
        );
        assert_eq!(
            all_up_front.report.dilation.to_bits(),
            trickled.report.dilation.to_bits()
        );
    }

    #[test]
    fn idle_open_engine_waits_without_consuming_events() {
        let p = platform();
        let config = SimConfig::default();
        let mut pol = MinDilation;
        let mut sim = Simulation::open(&p, &mut pol, &config).unwrap();
        assert!(sim.admission_open());
        assert!(!sim.is_finished());
        // Stepping an empty open engine is a no-op poll.
        assert_eq!(sim.step().unwrap(), StepStatus::Idle);
        assert_eq!(sim.events(), 0);
        assert_eq!(sim.run_until(Time::secs(100.0)).unwrap(), RunStatus::Idle);

        // A queued future arrival turns Idle into Blocked at its release.
        let mut a = app(0, 1);
        a.set_release(Time::secs(5.0));
        sim.offer(a).unwrap();
        assert_eq!(sim.queued(), 1);
        assert_eq!(sim.next_event_time(), Some(Time::secs(5.0)));
        assert_eq!(
            sim.run_until(Time::secs(2.0)).unwrap(),
            RunStatus::Blocked(Time::secs(5.0))
        );
        assert!(sim.now().is_zero());

        sim.close_admission();
        assert!(!sim.admission_open());
        assert_eq!(sim.run_until(Time::INFINITY).unwrap(), RunStatus::Finished);
        assert!(sim.is_finished());
        let out = sim.into_outcome();
        assert_eq!(out.report.per_app.len(), 1);
    }

    #[test]
    fn rejected_offers_leave_the_engine_untouched() {
        let p = platform();
        let config = SimConfig::default();

        // Roster engines take no offers.
        let mut pol = MinDilation;
        let mut sim = Simulation::new(&p, &[app(0, 1)], &mut pol, &config).unwrap();
        let err = sim.offer(app(1, 1)).unwrap_err();
        assert!(err.to_string().contains("closed roster"), "{err}");

        // Stream engines take no offers either.
        let apps = staggered(2);
        let mut pol = MinDilation;
        let mut sim = Simulation::from_stream(&p, apps.into_iter(), &mut pol, &config).unwrap();
        let err = sim.offer(app(2, 1)).unwrap_err();
        assert!(err.to_string().contains("stream source"), "{err}");

        // Open engine: each rejection names its rule and changes nothing.
        let mut pol = MinDilation;
        let mut sim = Simulation::open(&p, &mut pol, &config).unwrap();

        // Release not after the clock (now = 0).
        let err = sim.offer(app(0, 1)).unwrap_err();
        assert!(
            err.to_string().contains("not after the engine clock"),
            "{err}"
        );

        // Id not dense at its queue position.
        let mut late = app(7, 1);
        late.set_release(Time::secs(1.0));
        let err = sim.offer(late).unwrap_err();
        assert!(err.to_string().contains("dense"), "{err}");

        // Wider than the machine.
        let mut huge = AppSpec::periodic(
            0,
            Time::secs(1.0),
            10_000,
            Time::secs(1.0),
            Bytes::gib(1.0),
            1,
        );
        huge.set_release(Time::secs(1.0));
        let err = sim.offer(huge).unwrap_err();
        assert!(err.to_string().contains("processors"), "{err}");

        // Nothing was queued or admitted by any rejection.
        assert_eq!(sim.queued(), 0);
        assert_eq!(sim.admitted(), 0);

        // A valid offer still goes through, and closing shuts the door.
        let mut ok = app(0, 1);
        ok.set_release(Time::secs(1.0));
        sim.offer(ok).unwrap();
        sim.close_admission();
        let mut more = app(1, 1);
        more.set_release(Time::secs(2.0));
        let err = sim.offer(more).unwrap_err();
        assert!(err.to_string().contains("has been closed"), "{err}");
        assert_eq!(sim.run_until(Time::INFINITY).unwrap(), RunStatus::Finished);
    }

    /// `run_until` in many small hops is the same run as free stepping —
    /// bounds never inject events.
    #[test]
    fn bounded_driving_matches_free_running() {
        let p = platform();
        let config = SimConfig::default();
        let apps = staggered(4);

        let mut pol = MaxSysEff;
        let free = simulate_stream(&p, apps.iter().cloned(), &mut pol, &config).unwrap();

        let mut pol = MaxSysEff;
        let mut sim = Simulation::from_stream(&p, apps.into_iter(), &mut pol, &config).unwrap();
        let mut bound = Time::ZERO;
        loop {
            match sim.run_until(bound).unwrap() {
                RunStatus::Finished => break,
                RunStatus::Blocked(next) => {
                    assert!(next.approx_gt(bound));
                    bound = bound.max(next - Time::secs(0.001)) + Time::secs(0.7);
                }
                RunStatus::Idle => unreachable!("stream mode never idles"),
            }
        }
        let hopped = sim.into_outcome();
        assert_eq!(free.events, hopped.events);
        assert_eq!(
            free.end_time.get().to_bits(),
            hopped.end_time.get().to_bits()
        );
        assert_eq!(
            free.report.sys_efficiency.to_bits(),
            hopped.report.sys_efficiency.to_bits()
        );
    }

    #[test]
    fn unclosed_open_engine_cannot_run_to_completion() {
        let p = platform();
        let config = SimConfig::default();
        let mut pol = MinDilation;
        let sim = Simulation::open(&p, &mut pol, &config).unwrap();
        let err = sim.run_to_completion().unwrap_err();
        assert!(err.to_string().contains("close_admission"), "{err}");
    }
}
