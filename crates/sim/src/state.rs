//! Per-application runtime state inside the fluid simulator.

use iosched_model::{AppProgress, AppSpec, Bw, Bytes, Platform, Time};

/// Execution phase of one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// `now < r_k`.
    NotReleased,
    /// Computing the current instance; completes at the stored absolute
    /// time (compute is never preempted — resources are dedicated, §2.1).
    Computing {
        /// Absolute completion time of the compute chunk.
        done_at: Time,
    },
    /// The current instance's I/O: `remaining` bytes still to transfer at
    /// the currently granted rate (zero rate = stalled by the scheduler).
    Io {
        /// Bytes left in this instance's transfer.
        remaining: Bytes,
        /// Whether any byte of this instance was already transferred
        /// (drives the Priority heuristics' `started_io` flag).
        started: bool,
    },
    /// All instances completed.
    Finished,
}

/// Full runtime record of one application.
#[derive(Debug, Clone)]
pub struct AppRuntime {
    /// Immutable description.
    pub spec: AppSpec,
    /// ρ̃/ρ accounting.
    pub progress: AppProgress,
    /// Current phase.
    pub phase: Phase,
    /// Index of the instance currently executing (or next to execute).
    pub instance: usize,
    /// Application-aggregate bandwidth granted at the last allocation.
    pub rate: Bw,
    /// Effective delivered bandwidth (grant × interference factor).
    pub effective_rate: Bw,
    /// When the application last completed an instance's I/O (its release
    /// time before any I/O) — RoundRobin's FCFS key.
    pub last_io_end: Time,
    /// When the current I/O request was issued (entered the `Io` phase).
    pub io_requested_at: Time,
    /// Total bytes actually delivered for this application (conservation
    /// checks).
    pub bytes_transferred: Bytes,
}

impl AppRuntime {
    /// Initialize at simulation start (`now = 0`).
    #[must_use]
    pub fn new(spec: AppSpec, platform: &Platform) -> Self {
        let progress = AppProgress::new(&spec, platform);
        let release = spec.release();
        Self {
            progress,
            phase: Phase::NotReleased,
            instance: 0,
            rate: Bw::ZERO,
            effective_rate: Bw::ZERO,
            last_io_end: release,
            io_requested_at: release,
            bytes_transferred: Bytes::ZERO,
            spec,
        }
    }

    /// Begin the current instance at time `now`: enter `Computing` (or the
    /// I/O phase directly when the instance has no compute part).
    pub fn start_instance(&mut self, now: Time) {
        debug_assert!(self.instance < self.spec.instance_count());
        let inst = self.spec.instance(self.instance);
        if inst.work.get() > 0.0 {
            self.phase = Phase::Computing {
                done_at: now + inst.work,
            };
        } else {
            self.io_requested_at = now;
            self.phase = Phase::Io {
                remaining: inst.vol,
                started: false,
            };
        }
    }

    /// True when the application currently wants PFS bandwidth.
    #[must_use]
    pub fn wants_io(&self) -> bool {
        matches!(self.phase, Phase::Io { .. })
    }

    /// True once all instances completed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        matches!(self.phase, Phase::Finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::Platform;

    fn platform() -> Platform {
        Platform::new("t", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    #[test]
    fn new_app_is_not_released() {
        let spec = AppSpec::periodic(0, Time::secs(5.0), 10, Time::secs(1.0), Bytes::gib(1.0), 2);
        let rt = AppRuntime::new(spec, &platform());
        assert_eq!(rt.phase, Phase::NotReleased);
        assert!(rt.last_io_end.approx_eq(Time::secs(5.0)));
        assert!(!rt.wants_io());
        assert!(!rt.is_finished());
    }

    #[test]
    fn start_instance_enters_compute() {
        let spec = AppSpec::periodic(0, Time::ZERO, 10, Time::secs(3.0), Bytes::gib(1.0), 1);
        let mut rt = AppRuntime::new(spec, &platform());
        rt.start_instance(Time::secs(2.0));
        assert_eq!(
            rt.phase,
            Phase::Computing {
                done_at: Time::secs(5.0)
            }
        );
    }

    #[test]
    fn zero_work_instance_goes_straight_to_io() {
        let spec = AppSpec::periodic(0, Time::ZERO, 10, Time::ZERO, Bytes::gib(2.0), 1);
        let mut rt = AppRuntime::new(spec, &platform());
        rt.start_instance(Time::ZERO);
        assert!(rt.wants_io());
        match rt.phase {
            Phase::Io { remaining, started } => {
                assert!(remaining.approx_eq(Bytes::gib(2.0)));
                assert!(!started);
            }
            _ => panic!("expected Io phase"),
        }
    }
}
