//! Per-application state inside the fluid simulator, split hot/cold.
//!
//! The engine's event loop touches a handful of scalars per application
//! per event (phase tag, residual volume, granted rates, the policy-key
//! inputs). Keeping those in dense parallel vectors indexed by *slot* —
//! [`HotState`] — turns the per-event passes into linear walks over flat
//! arrays instead of pointer chases through `AppSpec`/`AppProgress`. The
//! cold remainder ([`AppRuntime`]: the immutable spec, the ρ̃/ρ prefix
//! bookkeeping, the instance counter) is only touched at instance
//! boundaries and retirement.
//!
//! Slots are recycled in stream mode, so both sides grow with peak
//! *concurrency*, never with the stream length.

use iosched_model::{AppProgress, AppSpec, Bw, Bytes, Platform, Time};

/// Execution phase of one application (reassembled view over
/// [`HotState`]'s parallel arrays).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// `now < r_k`.
    NotReleased,
    /// Computing the current instance; completes at the stored absolute
    /// time (compute is never preempted — resources are dedicated, §2.1).
    Computing {
        /// Absolute completion time of the compute chunk.
        done_at: Time,
    },
    /// The current instance's I/O: `remaining` bytes still to transfer at
    /// the currently granted rate (zero rate = stalled by the scheduler).
    Io {
        /// Bytes left in this instance's transfer.
        remaining: Bytes,
        /// Whether any byte of this instance was already transferred
        /// (drives the Priority heuristics' `started_io` flag).
        started: bool,
    },
    /// All instances completed.
    Finished,
}

/// Discriminant-only phase, stored densely in [`HotState::tag`]; the
/// payloads live in their own parallel arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseTag {
    /// `now < r_k`.
    NotReleased,
    /// Computing; completion instant in [`HotState::done_at`].
    Computing,
    /// Transferring; residual volume in [`HotState::remaining`].
    Io,
    /// All instances completed.
    Finished,
}

/// Cold per-application record: touched at instance boundaries and
/// retirement, never inside the per-event fluid passes.
#[derive(Debug, Clone)]
pub struct AppRuntime {
    /// Immutable description.
    pub spec: AppSpec,
    /// ρ̃/ρ accounting.
    pub progress: AppProgress,
    /// Index of the instance currently executing (or next to execute).
    pub instance: usize,
}

impl AppRuntime {
    /// Initialize at simulation start (`now = 0`).
    #[must_use]
    pub fn new(spec: AppSpec, platform: &Platform) -> Self {
        let progress = AppProgress::new(&spec, platform);
        Self {
            progress,
            instance: 0,
            spec,
        }
    }
}

/// Struct-of-arrays hot state, indexed by slot in lockstep with the
/// engine's cold `Vec<AppRuntime>`.
///
/// The three `key_*` columns cache [`AppProgress::key_parts`] — the
/// prefix sums every policy key is derived from. They change only when
/// an instance completes, so the per-event snapshot pass rebuilds ρ̃, ρ,
/// the dilation ratio and the syseff key from flat arrays with the same
/// operations on the same values as the `AppProgress` methods —
/// bit-identical, without touching the cold side.
#[derive(Debug, Default)]
pub struct HotState {
    /// Current phase discriminant.
    pub tag: Vec<PhaseTag>,
    /// `Io`: bytes left in the current transfer.
    pub remaining: Vec<Bytes>,
    /// `Io`: whether any byte of this instance was already transferred.
    pub started: Vec<bool>,
    /// `Computing`: absolute completion instant.
    pub done_at: Vec<Time>,
    /// Application-aggregate bandwidth granted at the last allocation.
    pub rate: Vec<Bw>,
    /// Effective delivered bandwidth (grant × interference factor).
    pub effective: Vec<Bw>,
    /// The application's id (slots are the access path, ids the
    /// identity).
    pub id: Vec<iosched_model::AppId>,
    /// Processor allocation β(k).
    pub procs: Vec<u64>,
    /// Card limit `β·b`, precomputed at install from the same operands
    /// the allocator previously used per event (`proc_bw * procs as
    /// f64`), hence bit-identical.
    pub card: Vec<Bw>,
    /// Release time `r_k`.
    pub release: Vec<Time>,
    /// When the application last completed an instance's I/O (its
    /// release time before any I/O) — RoundRobin's FCFS key.
    pub last_io_end: Vec<Time>,
    /// When the current I/O request was issued (entered `Io`).
    pub io_requested_at: Vec<Time>,
    /// Total bytes actually delivered (conservation checks).
    pub bytes_moved: Vec<Bytes>,
    /// `work_prefix[completed]` — ρ̃'s numerator.
    pub key_work_done: Vec<Time>,
    /// `work_prefix[upto]` — ρ's numerator.
    pub key_rho_work: Vec<Time>,
    /// `span_prefix[upto]` — ρ's denominator.
    pub key_rho_span: Vec<Time>,
    /// ρ itself: `key_rho_work / key_rho_span` (1.0 on an empty span).
    /// Both operands change only when an instance completes, so the
    /// division is hoisted out of the per-event snapshot pass — same
    /// operands, same operation, hence bit-identical.
    pub key_rho: Vec<f64>,
}

/// ρ from its cached key parts — the one place the hoisted division
/// lives (mirrors `AppProgress::rho` exactly).
fn rho_of(rho_work: Time, rho_span: Time) -> f64 {
    if rho_span.get() <= 0.0 {
        1.0
    } else {
        rho_work / rho_span
    }
}

impl HotState {
    /// Empty state with room for `n` slots.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            tag: Vec::with_capacity(n),
            remaining: Vec::with_capacity(n),
            started: Vec::with_capacity(n),
            done_at: Vec::with_capacity(n),
            rate: Vec::with_capacity(n),
            effective: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
            procs: Vec::with_capacity(n),
            card: Vec::with_capacity(n),
            release: Vec::with_capacity(n),
            last_io_end: Vec::with_capacity(n),
            io_requested_at: Vec::with_capacity(n),
            bytes_moved: Vec::with_capacity(n),
            key_work_done: Vec::with_capacity(n),
            key_rho_work: Vec::with_capacity(n),
            key_rho_span: Vec::with_capacity(n),
            key_rho: Vec::with_capacity(n),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tag.len()
    }

    /// True when no slot was installed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tag.is_empty()
    }

    /// Append a fresh slot for `rt` (initial values mirror the pre-split
    /// `AppRuntime::new`).
    pub fn push_app(&mut self, rt: &AppRuntime, platform: &Platform) -> usize {
        let slot = self.len();
        let release = rt.spec.release();
        let (work_done, rho_work, rho_span) = rt.progress.key_parts();
        self.tag.push(PhaseTag::NotReleased);
        self.remaining.push(Bytes::ZERO);
        self.started.push(false);
        self.done_at.push(Time::ZERO);
        self.rate.push(Bw::ZERO);
        self.effective.push(Bw::ZERO);
        self.id.push(rt.spec.id());
        self.procs.push(rt.spec.procs());
        self.card.push(platform.proc_bw * rt.spec.procs() as f64);
        self.release.push(release);
        self.last_io_end.push(release);
        self.io_requested_at.push(release);
        self.bytes_moved.push(Bytes::ZERO);
        self.key_work_done.push(work_done);
        self.key_rho_work.push(rho_work);
        self.key_rho_span.push(rho_span);
        self.key_rho.push(rho_of(rho_work, rho_span));
        slot
    }

    /// Reinstall a recycled slot for `rt` (stream mode).
    pub fn reset_slot(&mut self, slot: usize, rt: &AppRuntime, platform: &Platform) {
        let release = rt.spec.release();
        let (work_done, rho_work, rho_span) = rt.progress.key_parts();
        self.tag[slot] = PhaseTag::NotReleased;
        self.remaining[slot] = Bytes::ZERO;
        self.started[slot] = false;
        self.done_at[slot] = Time::ZERO;
        self.rate[slot] = Bw::ZERO;
        self.effective[slot] = Bw::ZERO;
        self.id[slot] = rt.spec.id();
        self.procs[slot] = rt.spec.procs();
        self.card[slot] = platform.proc_bw * rt.spec.procs() as f64;
        self.release[slot] = release;
        self.last_io_end[slot] = release;
        self.io_requested_at[slot] = release;
        self.bytes_moved[slot] = Bytes::ZERO;
        self.key_work_done[slot] = work_done;
        self.key_rho_work[slot] = rho_work;
        self.key_rho_span[slot] = rho_span;
        self.key_rho[slot] = rho_of(rho_work, rho_span);
    }

    /// Refresh the cached policy-key inputs after an instance completed.
    pub fn refresh_keys(&mut self, slot: usize, progress: &AppProgress) {
        let (work_done, rho_work, rho_span) = progress.key_parts();
        self.key_work_done[slot] = work_done;
        self.key_rho_work[slot] = rho_work;
        self.key_rho_span[slot] = rho_span;
        self.key_rho[slot] = rho_of(rho_work, rho_span);
    }

    /// Begin `rt`'s current instance at time `now`: enter `Computing`
    /// (or the I/O phase directly when the instance has no compute
    /// part).
    pub fn start_instance(&mut self, slot: usize, rt: &AppRuntime, now: Time) {
        debug_assert!(rt.instance < rt.spec.instance_count());
        let inst = rt.spec.instance(rt.instance);
        if inst.work.get() > 0.0 {
            self.tag[slot] = PhaseTag::Computing;
            self.done_at[slot] = now + inst.work;
        } else {
            self.io_requested_at[slot] = now;
            self.tag[slot] = PhaseTag::Io;
            self.remaining[slot] = inst.vol;
            self.started[slot] = false;
        }
    }

    /// True when the slot currently wants PFS bandwidth.
    #[must_use]
    pub fn wants_io(&self, slot: usize) -> bool {
        self.tag[slot] == PhaseTag::Io
    }

    /// True once all instances completed.
    #[must_use]
    pub fn is_finished(&self, slot: usize) -> bool {
        self.tag[slot] == PhaseTag::Finished
    }

    /// Reassemble the enum view of a slot's phase.
    #[must_use]
    pub fn phase(&self, slot: usize) -> Phase {
        match self.tag[slot] {
            PhaseTag::NotReleased => Phase::NotReleased,
            PhaseTag::Computing => Phase::Computing {
                done_at: self.done_at[slot],
            },
            PhaseTag::Io => Phase::Io {
                remaining: self.remaining[slot],
                started: self.started[slot],
            },
            PhaseTag::Finished => Phase::Finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::Platform;

    fn platform() -> Platform {
        Platform::new("t", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    fn install(spec: AppSpec) -> (AppRuntime, HotState, usize) {
        let p = platform();
        let rt = AppRuntime::new(spec, &p);
        let mut hot = HotState::default();
        let slot = hot.push_app(&rt, &p);
        (rt, hot, slot)
    }

    #[test]
    fn new_app_is_not_released() {
        let spec = AppSpec::periodic(0, Time::secs(5.0), 10, Time::secs(1.0), Bytes::gib(1.0), 2);
        let (_, hot, slot) = install(spec);
        assert_eq!(hot.phase(slot), Phase::NotReleased);
        assert!(hot.last_io_end[slot].approx_eq(Time::secs(5.0)));
        assert!(!hot.wants_io(slot));
        assert!(!hot.is_finished(slot));
    }

    #[test]
    fn start_instance_enters_compute() {
        let spec = AppSpec::periodic(0, Time::ZERO, 10, Time::secs(3.0), Bytes::gib(1.0), 1);
        let (rt, mut hot, slot) = install(spec);
        hot.start_instance(slot, &rt, Time::secs(2.0));
        assert_eq!(
            hot.phase(slot),
            Phase::Computing {
                done_at: Time::secs(5.0)
            }
        );
    }

    #[test]
    fn zero_work_instance_goes_straight_to_io() {
        let spec = AppSpec::periodic(0, Time::ZERO, 10, Time::ZERO, Bytes::gib(2.0), 1);
        let (rt, mut hot, slot) = install(spec);
        hot.start_instance(slot, &rt, Time::ZERO);
        assert!(hot.wants_io(slot));
        match hot.phase(slot) {
            Phase::Io { remaining, started } => {
                assert!(remaining.approx_eq(Bytes::gib(2.0)));
                assert!(!started);
            }
            _ => panic!("expected Io phase"),
        }
    }

    #[test]
    fn recycled_slot_matches_a_fresh_install() {
        let p = platform();
        let a = AppRuntime::new(
            AppSpec::periodic(0, Time::ZERO, 10, Time::secs(1.0), Bytes::gib(1.0), 1),
            &p,
        );
        let b = AppRuntime::new(
            AppSpec::periodic(1, Time::secs(3.0), 20, Time::secs(2.0), Bytes::gib(2.0), 2),
            &p,
        );
        let mut fresh = HotState::default();
        let fslot = fresh.push_app(&b, &p);
        let mut recycled = HotState::default();
        let rslot = recycled.push_app(&a, &p);
        recycled.start_instance(rslot, &a, Time::ZERO);
        recycled.reset_slot(rslot, &b, &p);
        assert_eq!(recycled.phase(rslot), fresh.phase(fslot));
        assert_eq!(recycled.id[rslot], fresh.id[fslot]);
        assert_eq!(recycled.procs[rslot], fresh.procs[fslot]);
        assert_eq!(
            recycled.card[rslot].get().to_bits(),
            fresh.card[fslot].get().to_bits()
        );
        assert!(recycled.last_io_end[rslot].approx_eq(Time::secs(3.0)));
    }
}
