//! §7 extension: shared I/O and communication networks.
//!
//! "Systems with shared networks for I/O and communications (such as Blue
//! Waters) would also benefit from our scheduler. In such systems: (i)
//! with congestion caused by communications, execution will slow down with
//! or without our scheduler, but the scheduler is online and will take
//! this congestion into account when measuring application efficiency;
//! (ii) without congestion, the benefit from using the scheduler will be
//! the same as when using a dedicated I/O system."
//!
//! [`ExternalLoad`] models the communication traffic as a periodic square
//! wave stealing a fraction of the PFS bandwidth: during the busy prefix
//! of every cycle only `(1 − fraction)·B` is available for I/O. The
//! engine re-allocates at every busy/idle boundary, so the online
//! heuristics observe the reduced capacity exactly as §7 describes.

use iosched_model::{ModelError, Time};
use serde::{Deserialize, Serialize};

/// Periodic square-wave background traffic on the shared network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExternalLoad {
    /// Full cycle length.
    pub period: Time,
    /// Busy prefix of each cycle (`0 < busy ≤ period` for a real load;
    /// `busy == period` means permanently busy).
    pub busy: Time,
    /// Fraction of `B` consumed while busy (`0 ≤ fraction ≤ 1`).
    pub fraction: f64,
}

impl ExternalLoad {
    /// Validate the wave's shape.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.period.is_finite() || self.period.get() <= 0.0 {
            return Err(ModelError::InvalidPlatform(format!(
                "external load period must be positive, got {}",
                self.period
            )));
        }
        // `is_finite` explicitly: a NaN busy prefix fails *both* range
        // comparisons below and would otherwise validate, silently
        // producing a storm that never fires (every instant compares as
        // idle).
        if !self.busy.is_finite() || self.busy.get() < 0.0 || self.busy.approx_gt(self.period) {
            return Err(ModelError::InvalidPlatform(format!(
                "external load busy prefix {} outside [0, {}]",
                self.busy, self.period
            )));
        }
        if !(0.0..=1.0).contains(&self.fraction) {
            return Err(ModelError::InvalidPlatform(format!(
                "external load fraction {} outside [0, 1]",
                self.fraction
            )));
        }
        Ok(())
    }

    /// Offset within the current cycle.
    fn offset(&self, t: Time) -> Time {
        Time::secs(t.as_secs().rem_euclid(self.period.as_secs()))
    }

    /// Is the communication traffic active at `t`?
    #[must_use]
    pub fn is_busy(&self, t: Time) -> bool {
        self.offset(t).approx_lt(self.busy)
    }

    /// Multiplicative factor on the PFS bandwidth at `t`.
    #[must_use]
    pub fn capacity_factor(&self, t: Time) -> f64 {
        if self.is_busy(t) {
            1.0 - self.fraction
        } else {
            1.0
        }
    }

    /// Next busy/idle transition strictly after `now` (`None` when the
    /// wave is flat: `busy == 0`, `busy == period`, or `fraction == 0`).
    #[must_use]
    pub fn next_boundary(&self, now: Time) -> Option<Time> {
        if self.fraction == 0.0 || self.busy.is_zero() || self.busy.approx_eq(self.period) {
            return None;
        }
        let offset = self.offset(now);
        let base = now - offset;
        if offset.approx_lt(self.busy) {
            Some(base + self.busy)
        } else {
            Some(base + self.period)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load() -> ExternalLoad {
        ExternalLoad {
            period: Time::secs(10.0),
            busy: Time::secs(4.0),
            fraction: 0.5,
        }
    }

    #[test]
    fn validation() {
        load().validate().unwrap();
        let mut bad = load();
        bad.period = Time::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = load();
        bad.busy = Time::secs(11.0);
        assert!(bad.validate().is_err());
        let mut bad = load();
        bad.fraction = 1.5;
        assert!(bad.validate().is_err());
        // NaN components must not validate into a silent no-op storm
        // (NaN fails every range comparison, so each field needs an
        // explicit finiteness check).
        for nan in [f64::NAN, f64::INFINITY] {
            let mut bad = load();
            bad.busy = Time::secs(nan);
            assert!(bad.validate().is_err(), "busy {nan} accepted");
            let mut bad = load();
            bad.period = Time::secs(nan);
            assert!(bad.validate().is_err(), "period {nan} accepted");
            let mut bad = load();
            bad.fraction = nan;
            assert!(bad.validate().is_err(), "fraction {nan} accepted");
        }
    }

    #[test]
    fn square_wave_shape() {
        let l = load();
        assert!(l.is_busy(Time::secs(0.0)));
        assert!(l.is_busy(Time::secs(3.9)));
        assert!(!l.is_busy(Time::secs(4.0)));
        assert!(!l.is_busy(Time::secs(9.9)));
        assert!(l.is_busy(Time::secs(10.5))); // wraps
        assert_eq!(l.capacity_factor(Time::secs(1.0)), 0.5);
        assert_eq!(l.capacity_factor(Time::secs(5.0)), 1.0);
    }

    #[test]
    fn boundaries_advance_through_the_cycle() {
        let l = load();
        assert!(l
            .next_boundary(Time::ZERO)
            .unwrap()
            .approx_eq(Time::secs(4.0)));
        assert!(l
            .next_boundary(Time::secs(4.0))
            .unwrap()
            .approx_eq(Time::secs(10.0)));
        assert!(l
            .next_boundary(Time::secs(12.0))
            .unwrap()
            .approx_eq(Time::secs(14.0)));
    }

    #[test]
    fn flat_waves_have_no_boundaries() {
        let mut l = load();
        l.fraction = 0.0;
        assert!(l.next_boundary(Time::ZERO).is_none());
        let mut l = load();
        l.busy = Time::ZERO;
        assert!(l.next_boundary(Time::ZERO).is_none());
        let mut l = load();
        l.busy = l.period;
        assert!(l.next_boundary(Time::ZERO).is_none());
        // Permanently busy still reduces capacity.
        assert_eq!(l.capacity_factor(Time::secs(3.0)), 0.5);
    }
}
