//! Simulation outcome: the paper's objectives plus engine diagnostics.

use crate::steady::SteadySummary;
use crate::telemetry::TelemetrySummary;
use crate::trace::BandwidthTrace;
use iosched_model::{AppId, Bytes, ObjectiveReport, Time};
use iosched_obs::DecisionTrace;

/// Everything a finished simulation reports.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// SysEfficiency / Dilation / per-application detail (§2.2). With
    /// [`crate::SimConfig::per_app_detail`] off, `per_app` is empty and
    /// only the aggregates are populated (folded streamingly at
    /// retirement).
    pub report: ObjectiveReport,
    /// Optional full allocation trace.
    pub trace: Option<BandwidthTrace>,
    /// Number of scheduling events processed.
    pub events: usize,
    /// Final simulation time (= `max_k d_k`, or the horizon when it
    /// halted the run).
    pub end_time: Time,
    /// Bytes actually delivered per application, ascending by id
    /// (conservation checks; empty when the per-app detail is off).
    pub per_app_bytes: Vec<(AppId, Bytes)>,
    /// Per-run congestion record (present iff
    /// [`crate::SimConfig::telemetry`] was set).
    pub telemetry: Option<TelemetrySummary>,
    /// Warmup-trimmed steady-state record (present iff the run set a
    /// `warmup`/`horizon` window or was driven by a stream source).
    pub steady: Option<SteadySummary>,
    /// Bounded ring of structured scheduling decisions (present iff
    /// [`crate::Simulation::enable_decision_trace`] attached one before
    /// the run). Observation-only: every other field is bit-identical
    /// with this on or off.
    pub decision_trace: Option<Box<DecisionTrace>>,
}

impl SimOutcome {
    /// Bytes delivered for one application.
    #[must_use]
    pub fn bytes_of(&self, id: AppId) -> Option<Bytes> {
        self.per_app_bytes
            .iter()
            .find(|(a, _)| *a == id)
            .map(|(_, b)| *b)
    }
}
