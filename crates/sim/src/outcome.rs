//! Simulation outcome: the paper's objectives plus engine diagnostics.

use crate::state::AppRuntime;
use crate::telemetry::TelemetrySummary;
use crate::trace::BandwidthTrace;
use iosched_model::{AppId, AppOutcome, Bytes, ObjectiveReport, Platform, Time};

/// Everything a finished simulation reports.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// SysEfficiency / Dilation / per-application detail (§2.2).
    pub report: ObjectiveReport,
    /// Optional full allocation trace.
    pub trace: Option<BandwidthTrace>,
    /// Number of scheduling events processed.
    pub events: usize,
    /// Final simulation time (= `max_k d_k`).
    pub end_time: Time,
    /// Bytes actually delivered per application (conservation checks).
    pub per_app_bytes: Vec<(AppId, Bytes)>,
    /// Per-run congestion record (present iff
    /// [`crate::SimConfig::telemetry`] was set).
    pub telemetry: Option<TelemetrySummary>,
}

impl SimOutcome {
    /// Assemble the outcome from finished runtimes (engine-internal).
    #[must_use]
    pub(crate) fn collect(
        _platform: &Platform,
        rts: Vec<AppRuntime>,
        trace: Option<BandwidthTrace>,
        events: usize,
        end_time: Time,
        telemetry: Option<TelemetrySummary>,
    ) -> Self {
        let per_app: Vec<AppOutcome> = rts
            .iter()
            .map(|rt| {
                let d = rt
                    .progress
                    .finish_time()
                    .expect("engine only collects finished runs");
                AppOutcome {
                    id: rt.spec.id(),
                    procs: rt.spec.procs(),
                    release: rt.spec.release(),
                    finish: d,
                    rho: rt.progress.rho(d),
                    rho_tilde: rt.progress.rho_tilde(d),
                }
            })
            .collect();
        let per_app_bytes = rts
            .iter()
            .map(|rt| (rt.spec.id(), rt.bytes_transferred))
            .collect();
        Self {
            report: ObjectiveReport::from_outcomes(per_app),
            trace,
            events,
            end_time,
            per_app_bytes,
            telemetry,
        }
    }

    /// Bytes delivered for one application.
    #[must_use]
    pub fn bytes_of(&self, id: AppId) -> Option<Bytes> {
        self.per_app_bytes
            .iter()
            .find(|(a, _)| *a == id)
            .map(|(_, b)| *b)
    }
}
