//! Calendar (bucket) queue for compute-completion events.
//!
//! The engine's compute completions are overwhelmingly near-future: a
//! compute chunk spans seconds to minutes, so events cluster just ahead
//! of the clock. A calendar queue exploits that — a ring of fixed-width
//! time buckets holds the near window, pushes and pops touch one bucket,
//! and only events beyond the window fall back to a [`BinaryHeap`]. Pop
//! order is **exactly** the heap's order — ascending `(at, id)` with the
//! `total_cmp` float comparison — so swapping the engine's event queue
//! changes no simulated result (the regression tests below pin this,
//! ties included).
//!
//! Invariants:
//!
//! * every near event sits in bucket `max(floor(at/WIDTH), cur_at_push)`
//!   — past-due events are clamped onto the cursor bucket, which is
//!   scanned first;
//! * the cursor `cur` only moves forward and never skips a non-empty
//!   bucket (except when the whole ring is empty and it jumps to the far
//!   heap's minimum);
//! * far events were beyond the window when pushed and migrate into the
//!   ring at most once, as the advancing cursor pulls the window over
//!   them.
//!
//! Together these give: the first non-empty bucket at/after `cur`
//! contains the global minimum, and the far heap's minimum is only the
//! global minimum when the ring is empty.

use iosched_model::{AppId, Time};
use std::collections::BinaryHeap;

/// Ring size; with [`WIDTH`] this spans a 16 384 s near window.
const BUCKETS: usize = 256;
/// Bucket width in seconds, sized for compute chunks of seconds–minutes.
const WIDTH: f64 = 64.0;

/// Compute-completion entry, ordered so `BinaryHeap::peek` yields the
/// *earliest* completion (ties broken by `AppId`, which is stable under
/// roster permutation and slot reuse — the slot index `idx` is only the
/// access path).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ComputeEvent {
    pub(crate) at: Time,
    pub(crate) id: AppId,
    pub(crate) idx: usize,
}

impl PartialEq for ComputeEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for ComputeEvent {}

impl PartialOrd for ComputeEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ComputeEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the max-heap surfaces the minimum time.
        other
            .at
            .get()
            .total_cmp(&self.at.get())
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Earliest-first key, written once so the in-bucket scan and the tests
/// agree with the reversed heap `Ord` above.
fn earlier(a: &ComputeEvent, b: &ComputeEvent) -> bool {
    a.at.get()
        .total_cmp(&b.at.get())
        .then_with(|| a.id.cmp(&b.id))
        .is_lt()
}

/// Bucket-queue of [`ComputeEvent`]s; see the module docs for the
/// invariants that make its pop order identical to a binary heap's.
pub(crate) struct CalendarQueue {
    /// The near window: `BUCKETS` unordered buckets addressed by
    /// `absolute_bucket % BUCKETS`.
    near: Vec<Vec<ComputeEvent>>,
    /// Events past the window at push time.
    far: BinaryHeap<ComputeEvent>,
    /// Absolute index of the window's first bucket.
    cur: u64,
    len: usize,
    /// Memoized [`CalendarQueue::peek_min_at`] answer, dropped by any
    /// mutation. The engine peeks every event but pushes/pops only on
    /// phase transitions, so most peeks re-read an unchanged minimum —
    /// the memo skips the cursor settle and in-bucket scan for those.
    cached_min: Option<Option<Time>>,
}

fn bucket_of(at: Time) -> u64 {
    // Event times are finite and non-negative (`now + work`); the `as`
    // cast saturates rather than wrapping if that ever changes.
    (at.as_secs() / WIDTH) as u64
}

impl CalendarQueue {
    pub(crate) fn new() -> Self {
        Self {
            near: (0..BUCKETS).map(|_| Vec::new()).collect(),
            far: BinaryHeap::new(),
            cur: 0,
            len: 0,
            cached_min: None,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn push(&mut self, ev: ComputeEvent) {
        self.cached_min = None;
        let b = bucket_of(ev.at).max(self.cur);
        if b < self.cur + BUCKETS as u64 {
            self.near[(b % BUCKETS as u64) as usize].push(ev);
        } else {
            self.far.push(ev);
        }
        self.len += 1;
    }

    /// Move the cursor to the bucket holding the minimum. Returns `false`
    /// iff the queue is empty.
    fn settle(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        loop {
            // Pull far events the window now covers into the ring.
            while let Some(f) = self.far.peek() {
                let b = bucket_of(f.at).max(self.cur);
                if b < self.cur + BUCKETS as u64 {
                    let ev = self.far.pop().expect("peeked");
                    self.near[(b % BUCKETS as u64) as usize].push(ev);
                } else {
                    break;
                }
            }
            // Advance past empty buckets (at most one full revolution).
            let mut stepped = 0;
            while stepped < BUCKETS && self.near[(self.cur % BUCKETS as u64) as usize].is_empty() {
                self.cur += 1;
                stepped += 1;
            }
            if !self.near[(self.cur % BUCKETS as u64) as usize].is_empty() {
                return true;
            }
            // Ring drained: jump to the far heap's minimum and migrate.
            let f = self.far.peek().expect("len > 0 with an empty ring");
            self.cur = bucket_of(f.at);
        }
    }

    /// Earliest event time without removing it. Takes `&mut self`: the
    /// cursor may advance (a pure index move — no event is touched).
    pub(crate) fn peek_min_at(&mut self) -> Option<Time> {
        if let Some(memo) = self.cached_min {
            return memo;
        }
        let answer = if self.settle() {
            let bucket = &self.near[(self.cur % BUCKETS as u64) as usize];
            let mut best = &bucket[0];
            for ev in &bucket[1..] {
                if earlier(ev, best) {
                    best = ev;
                }
            }
            Some(best.at)
        } else {
            None
        };
        self.cached_min = Some(answer);
        answer
    }

    /// Remove and return the earliest event (ties by `AppId`).
    pub(crate) fn pop_min(&mut self) -> Option<ComputeEvent> {
        self.cached_min = None;
        if !self.settle() {
            return None;
        }
        let bucket = &mut self.near[(self.cur % BUCKETS as u64) as usize];
        let mut best = 0;
        for k in 1..bucket.len() {
            if earlier(&bucket[k], &bucket[best]) {
                best = k;
            }
        }
        let ev = bucket.swap_remove(best);
        self.len -= 1;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: f64, id: usize) -> ComputeEvent {
        ComputeEvent {
            at: Time::secs(at),
            id: AppId(id),
            idx: id,
        }
    }

    fn drain(q: &mut CalendarQueue) -> Vec<(f64, usize)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop_min() {
            out.push((e.at.as_secs(), e.id.0));
        }
        out
    }

    /// The load-bearing pin: pop order must equal the binary heap's,
    /// including `at` ties (broken by ascending `AppId`) — the engine's
    /// simulated results are bit-identical only because of this.
    #[test]
    fn pop_order_matches_binary_heap_with_ties() {
        let events = [
            ev(10.0, 3),
            ev(10.0, 1),
            ev(10.0, 2),
            ev(5.0, 7),
            ev(70.0, 0),
            ev(70.0, 9),
            ev(5.0, 4),
            ev(20_000.0, 5), // beyond the near window
            ev(20_000.0, 6), // far tie
        ];
        let mut heap = BinaryHeap::new();
        let mut cal = CalendarQueue::new();
        for e in events {
            heap.push(e);
            cal.push(e);
        }
        let mut want = Vec::new();
        while let Some(e) = heap.pop() {
            want.push((e.at.as_secs(), e.id.0));
        }
        assert_eq!(drain(&mut cal), want);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Deterministic LCG so the test needs no RNG dependency.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut heap = BinaryHeap::new();
        let mut cal = CalendarQueue::new();
        let mut popped_heap = Vec::new();
        let mut popped_cal = Vec::new();
        for round in 0..2_000usize {
            let r = next();
            // Bias toward pushes so the queue grows, with occasional
            // bursts of pops; times span several windows and collide
            // often (quantized to 0.5 s).
            if r % 3 != 0 || heap.is_empty() {
                let at = (next() % 80_000) as f64 / 2.0;
                let e = ev(at, round);
                heap.push(e);
                cal.push(e);
            } else {
                let h = heap.pop().expect("nonempty");
                let c = cal.pop_min().expect("same length");
                popped_heap.push((h.at.as_secs(), h.id.0));
                popped_cal.push((c.at.as_secs(), c.id.0));
            }
        }
        while let Some(h) = heap.pop() {
            let c = cal.pop_min().expect("same length");
            popped_heap.push((h.at.as_secs(), h.id.0));
            popped_cal.push((c.at.as_secs(), c.id.0));
        }
        assert!(cal.is_empty());
        assert_eq!(popped_cal, popped_heap);
    }

    #[test]
    fn past_due_events_clamp_onto_the_cursor() {
        let mut cal = CalendarQueue::new();
        cal.push(ev(10_000.0, 0));
        assert_eq!(cal.pop_min().unwrap().id, AppId(0)); // cursor jumps ahead
        cal.push(ev(1.0, 1)); // in the past relative to the cursor
        cal.push(ev(10_500.0, 2));
        assert_eq!(
            drain(&mut cal),
            vec![(1.0, 1), (10_500.0, 2)],
            "clamped event must still pop first"
        );
    }

    #[test]
    fn peek_agrees_with_pop() {
        let mut cal = CalendarQueue::new();
        for e in [ev(3.0, 2), ev(3.0, 0), ev(90_000.0, 1)] {
            cal.push(e);
        }
        while let Some(at) = cal.peek_min_at() {
            let e = cal.pop_min().unwrap();
            assert_eq!(e.at, at);
        }
        assert_eq!(cal.len(), 0);
    }

    #[test]
    fn empty_queue_behaves() {
        let mut cal = CalendarQueue::new();
        assert!(cal.is_empty());
        assert!(cal.peek_min_at().is_none());
        assert!(cal.pop_min().is_none());
    }
}
