//! # iosched-sim
//!
//! Fluid discrete-event simulator for HPC I/O scheduling — the substrate
//! on which every evaluation of *"Scheduling the I/O of HPC applications
//! under congestion"* (IPDPS 2015) runs.
//!
//! The model is *fluid*: between two scheduling events each transferring
//! application receives a constant bandwidth, remaining volumes decay
//! linearly and event times are computed in closed form. The engine is an
//! explicit state machine ([`engine::Simulation`]) with a
//! `new()/step()/run_to_completion()` lifecycle — [`engine::simulate`] is
//! the one-shot wrapper — that drives any
//! [`iosched_core::policy::OnlinePolicy`] and optionally:
//!
//! * routes I/O through a **burst buffer** with fluid fill/drain dynamics
//!   and back-pressure ([`burst_buffer::BurstBufferState`]) — used to model
//!   the native Intrepid/Mira/Vesta schedulers of §4.4/§5,
//! * applies a **disk-locality interference** penalty to concurrent
//!   streams ([`iosched_model::Interference`]) — the Fig. 1 effect,
//! * records a full piecewise-constant allocation trace
//!   ([`trace::BandwidthTrace`]) whose validator replays every §2.1
//!   constraint.
//!
//! ```
//! use iosched_model::{AppSpec, Bytes, Platform, Time};
//! use iosched_core::heuristics::MinDilation;
//! use iosched_sim::{simulate, SimConfig};
//!
//! let platform = Platform::vesta();
//! let apps = vec![
//!     AppSpec::periodic(0, Time::ZERO, 256, Time::secs(60.0), Bytes::gib(100.0), 5),
//!     AppSpec::periodic(1, Time::ZERO, 512, Time::secs(30.0), Bytes::gib(200.0), 5),
//! ];
//! let out = simulate(&platform, &apps, &mut MinDilation, &SimConfig::default()).unwrap();
//! assert!(out.report.dilation >= 1.0);
//! ```

pub mod burst_buffer;
mod calendar;
pub mod engine;
pub mod error;
pub mod external_load;
pub mod outcome;
pub mod periodic_exec;
pub mod state;
pub mod steady;
pub mod telemetry;
pub mod trace;

pub use engine::{
    simulate, simulate_open, simulate_stream, RunStatus, SimConfig, Simulation, StepStatus,
};
pub use error::SimError;
pub use external_load::ExternalLoad;
pub use outcome::SimOutcome;
pub use periodic_exec::{replay_apps, unroll_report, TimetablePolicy};
pub use steady::SteadySummary;
pub use telemetry::{Telemetry, TelemetrySample, TelemetrySummary};
pub use trace::{BandwidthTrace, TraceSegment};

// Decision-trace vocabulary, re-exported so engine embedders (the
// daemon, the CLI) need no direct `iosched-obs` dependency to consume
// [`Simulation::enable_decision_trace`].
pub use iosched_obs::{DecisionTrace, TraceEvent, TraceRecord};
