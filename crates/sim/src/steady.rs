//! Warmup-trimmed steady-state metrics for open-system runs.
//!
//! A closed-roster simulation is judged by its end state (§2.2
//! SysEfficiency / Dilation over every application). An *open* stream
//! has no end state worth judging — the interesting question is the
//! steady-state behaviour after a warmup transient: how long does the
//! I/O queue get, how stretched are the jobs flowing through, does the
//! system keep up with the arrival rate at all? This module accumulates
//! exactly those time-windowed aggregates while the engine steps, and
//! exports them as one serializable [`SteadySummary`] on
//! [`crate::SimOutcome`] whenever [`crate::SimConfig`] sets a `warmup`
//! or `horizon` (or the run is driven by a stream source).
//!
//! The accumulator is an observer: it never steers the engine, so runs
//! are bit-identical with it on or off.

use crate::telemetry::TelemetrySample;
use iosched_model::AppOutcome;
use iosched_model::Time;
use serde::{Deserialize, Serialize};

/// Streaming accumulator behind [`SteadySummary`] (engine-internal).
#[derive(Debug, Clone)]
pub(crate) struct SteadyAccum {
    warmup: f64,
    /// Σ of interval lengths clipped to `[warmup, ∞)`.
    window_secs: f64,
    /// Σ pending · dt over the window.
    queue_integral: f64,
    /// Σ delivered-utilization · dt over the window.
    utilization_integral: f64,
    /// Applications finishing at `t ≥ warmup`.
    completed: usize,
    stretch_sum: f64,
    stretch_max: f64,
}

impl SteadyAccum {
    pub(crate) fn new(warmup: Time) -> Self {
        Self {
            warmup: warmup.as_secs().max(0.0),
            window_secs: 0.0,
            queue_integral: 0.0,
            utilization_integral: 0.0,
            completed: 0,
            stretch_sum: 0.0,
            stretch_max: 0.0,
        }
    }

    /// Fold one closed inter-event interval, clipped to the window.
    pub(crate) fn record_interval(&mut self, sample: &TelemetrySample) {
        let start = sample.start.as_secs().max(self.warmup);
        let dt = sample.end.as_secs() - start;
        if dt <= 0.0 {
            return;
        }
        self.window_secs += dt;
        self.queue_integral += sample.pending as f64 * dt;
        self.utilization_integral += sample.utilization() * dt;
    }

    /// Fold one application completion (its end-to-end stretch `ρ/ρ̃`).
    pub(crate) fn record_finish(&mut self, outcome: &AppOutcome) {
        if outcome.finish.as_secs() < self.warmup {
            return;
        }
        let stretch = outcome.dilation();
        self.completed += 1;
        self.stretch_sum += stretch;
        self.stretch_max = self.stretch_max.max(stretch);
    }

    /// Export, given the whole-run admission bookkeeping.
    pub(crate) fn summary(&self, admitted: usize, finished: usize) -> SteadySummary {
        SteadySummary {
            warmup_secs: self.warmup,
            window_secs: self.window_secs,
            admitted,
            completed: self.completed,
            left_in_system: admitted - finished,
            mean_stretch: if self.completed > 0 {
                self.stretch_sum / self.completed as f64
            } else {
                0.0
            },
            max_stretch: self.stretch_max,
            mean_queue: if self.window_secs > 0.0 {
                self.queue_integral / self.window_secs
            } else {
                0.0
            },
            mean_utilization: if self.window_secs > 0.0 {
                self.utilization_integral / self.window_secs
            } else {
                0.0
            },
            throughput_per_hour: if self.window_secs > 0.0 {
                self.completed as f64 * 3_600.0 / self.window_secs
            } else {
                0.0
            },
        }
    }
}

/// Warmup-trimmed steady-state record of one run: the saturation-curve
/// observables (mean/max stretch, queue length, utilization,
/// throughput) over the window `[warmup, end]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteadySummary {
    /// Trimmed transient, seconds.
    pub warmup_secs: f64,
    /// Observed window length, seconds.
    pub window_secs: f64,
    /// Applications admitted over the whole run.
    pub admitted: usize,
    /// Applications finishing inside the window.
    pub completed: usize,
    /// Applications still in the system when the run ended (a growing
    /// number under repeated horizons = the system is saturated).
    pub left_in_system: usize,
    /// Mean end-to-end stretch `ρ/ρ̃ ≥ 1` over window completions
    /// (0 when none completed).
    pub mean_stretch: f64,
    /// Worst stretch over window completions.
    pub max_stretch: f64,
    /// Time-weighted mean number of applications wanting I/O.
    pub mean_queue: f64,
    /// Time-weighted mean delivered utilization of the PFS.
    pub mean_utilization: f64,
    /// Window completions per simulated hour.
    pub throughput_per_hour: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::{AppId, Bw, Bytes};

    fn sample(start: f64, end: f64, pending: usize, delivered: f64) -> TelemetrySample {
        TelemetrySample {
            start: Time::secs(start),
            end: Time::secs(end),
            offered: Bw::gib_per_sec(delivered),
            granted: Bw::gib_per_sec(delivered),
            delivered: Bw::gib_per_sec(delivered),
            capacity: Bw::gib_per_sec(10.0),
            backlog: Bytes::ZERO,
            pending,
        }
    }

    fn finish(at: f64, rho: f64, rho_tilde: f64) -> AppOutcome {
        AppOutcome {
            id: AppId(0),
            procs: 10,
            release: Time::ZERO,
            finish: Time::secs(at),
            rho,
            rho_tilde,
        }
    }

    #[test]
    fn warmup_clips_intervals_and_completions() {
        let mut acc = SteadyAccum::new(Time::secs(100.0));
        // Entirely inside the warmup: ignored.
        acc.record_interval(&sample(0.0, 50.0, 5, 10.0));
        // Straddling: only the [100, 120] tail counts.
        acc.record_interval(&sample(80.0, 120.0, 4, 10.0));
        // Entirely inside the window.
        acc.record_interval(&sample(120.0, 160.0, 1, 5.0));
        acc.record_finish(&finish(90.0, 0.8, 0.8)); // warmup: ignored
        acc.record_finish(&finish(150.0, 0.8, 0.4)); // stretch 2
        acc.record_finish(&finish(160.0, 0.8, 0.8)); // stretch 1
        let s = acc.summary(10, 3);
        assert!((s.window_secs - 60.0).abs() < 1e-12);
        // Queue: (4·20 + 1·40) / 60 = 2.
        assert!((s.mean_queue - 2.0).abs() < 1e-12);
        // Utilization: (1.0·20 + 0.5·40) / 60 = 2/3.
        assert!((s.mean_utilization - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.completed, 2);
        assert!((s.mean_stretch - 1.5).abs() < 1e-12);
        assert!((s.max_stretch - 2.0).abs() < 1e-12);
        assert_eq!(s.left_in_system, 7);
        assert!((s.throughput_per_hour - 2.0 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_exports_zeros() {
        let acc = SteadyAccum::new(Time::secs(10.0));
        let s = acc.summary(0, 0);
        assert_eq!(s.completed, 0);
        assert_eq!(s.mean_stretch, 0.0);
        assert_eq!(s.mean_queue, 0.0);
        assert_eq!(s.throughput_per_hour, 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut acc = SteadyAccum::new(Time::ZERO);
        acc.record_interval(&sample(0.0, 10.0, 2, 10.0));
        acc.record_finish(&finish(5.0, 0.8, 0.4));
        let s = acc.summary(3, 1);
        let json = serde_json::to_string(&s).unwrap();
        let back: SteadySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
