//! Simulator error types.

use std::error::Error;
use std::fmt;

/// Failures of a simulation run. All are programming or configuration
/// errors — a well-formed scenario with a well-formed policy never fails.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Scenario validation failed before the first event.
    InvalidScenario(String),
    /// A policy produced an allocation violating the §2.1 capacity rules.
    InvalidAllocation { policy: String, detail: String },
    /// The policy granted no bandwidth while applications were waiting and
    /// capacity was available — the system would livelock.
    PolicyStalledSystem { policy: String, at: f64 },
    /// The event budget was exhausted (runaway configuration guard).
    EventLimitExceeded { limit: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            Self::InvalidAllocation { policy, detail } => {
                write!(
                    f,
                    "policy '{policy}' produced an invalid allocation: {detail}"
                )
            }
            Self::PolicyStalledSystem { policy, at } => write!(
                f,
                "policy '{policy}' stalled every pending application at t = {at} \
                 while bandwidth was available"
            ),
            Self::EventLimitExceeded { limit } => {
                write!(f, "simulation exceeded the event limit of {limit}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::InvalidScenario("x".into())
            .to_string()
            .contains("x"));
        assert!(SimError::EventLimitExceeded { limit: 7 }
            .to_string()
            .contains('7'));
        let e = SimError::PolicyStalledSystem {
            policy: "p".into(),
            at: 1.5,
        };
        assert!(e.to_string().contains("1.5"));
    }
}
