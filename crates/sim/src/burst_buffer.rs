//! Fluid burst-buffer dynamics.
//!
//! §4.4: "burst buffers act as additional bandwidth to disks: when
//! congestion occurs, as long as the burst buffers are not full, the
//! applications can resume their execution right after they transferred
//! their I/O volume to the burst buffer, instead of waiting for the I/O
//! network to be available."
//!
//! Model: applications write into the buffer through an *absorb* pipe of
//! bandwidth `absorb_bw ≫ B`; the buffer drains toward the PFS at `B`.
//! The level follows `dL/dt = inflow − B` (clamped at 0 from below). When
//! the level reaches the capacity the ingest pipe collapses to the drain
//! bandwidth `B` (back-pressure); it re-opens once the level falls below a
//! small hysteresis margin, which prevents Zeno chatter at the full mark.

use iosched_model::{BurstBufferSpec, Bw, Bytes, Time};

/// Fraction of capacity the level must drop below full before the absorb
/// pipe re-opens.
const HYSTERESIS: f64 = 0.01;

/// Levels below one byte are physically empty. Without this clamp a
/// residual sub-byte level paired with a huge drain bandwidth predicts a
/// drain event ~1e-12 s away — an increment that vanishes under f64 time
/// addition and would freeze the simulation clock.
const SUB_BYTE: f64 = 1.0;

/// Mutable burst-buffer state inside a simulation.
#[derive(Debug, Clone)]
pub struct BurstBufferState {
    spec: BurstBufferSpec,
    level: Bytes,
    throttled: bool,
    /// Peak number of concurrent streams whose data interleaves in the
    /// current buffer contents (resets when the buffer drains empty).
    writers: usize,
}

impl BurstBufferState {
    /// Empty buffer.
    #[must_use]
    pub fn new(spec: BurstBufferSpec) -> Self {
        Self {
            spec,
            level: Bytes::ZERO,
            throttled: false,
            writers: 0,
        }
    }

    /// Current fill level.
    #[must_use]
    pub fn level(&self) -> Bytes {
        self.level
    }

    /// True while back-pressure caps ingest at the PFS drain bandwidth.
    #[must_use]
    pub fn is_throttled(&self) -> bool {
        self.throttled
    }

    /// Ingest capacity currently offered to the applications.
    #[must_use]
    pub fn ingest_capacity(&self, pfs_bw: Bw) -> Bw {
        if self.throttled {
            pfs_bw
        } else {
            self.spec.absorb_bw
        }
    }

    /// Record how many application streams are currently writing into the
    /// buffer. The buffered contents of `n` applications interleave on the
    /// backing store, so the PFS *drain* of a non-empty buffer contends
    /// like `n` concurrent disk streams even after every ingest stream
    /// stopped — the count only resets once the buffer drains empty.
    /// Returns the updated interleaved-stream count (always ≥ `active`),
    /// which is the concurrency the PFS drain contends at.
    pub fn note_streams(&mut self, active: usize) -> usize {
        if self.level.is_zero() {
            self.writers = active;
        } else {
            self.writers = self.writers.max(active);
        }
        self.writers
    }

    /// Number of distinct streams whose data interleaves in the current
    /// buffer contents (see [`BurstBufferState::note_streams`]).
    #[must_use]
    pub fn interleaved_streams(&self) -> usize {
        self.writers
    }

    /// Level the buffer must fall below to lift the throttle.
    fn reopen_level(&self) -> Bytes {
        self.spec.capacity * (1.0 - HYSTERESIS)
    }

    /// Net fill rate given aggregate application inflow and PFS drain.
    fn net_rate(&self, inflow: Bw, pfs_bw: Bw) -> Bw {
        let net = inflow - pfs_bw;
        if self.level.is_zero() && net.get() < 0.0 {
            Bw::ZERO // an empty buffer cannot drain below zero
        } else {
            net
        }
    }

    /// Time until the next buffer event (full / reopen threshold / empty)
    /// under constant `inflow`, or `None` if the level is steady.
    #[must_use]
    pub fn next_event_in(&self, inflow: Bw, pfs_bw: Bw) -> Option<Time> {
        let net = self.net_rate(inflow, pfs_bw);
        if net.get() > 0.0 && !self.throttled {
            let headroom = self.spec.capacity - self.level;
            if headroom.get() <= 0.0 {
                return Some(Time::ZERO);
            }
            return Some(headroom / net);
        }
        if net.get() < 0.0 {
            let floor = if self.throttled {
                self.reopen_level()
            } else {
                Bytes::ZERO
            };
            let drop = self.level - floor;
            if drop.get() <= 0.0 {
                return Some(Time::ZERO);
            }
            return Some(drop / (-1.0 * net));
        }
        None
    }

    /// Advance the level by `dt` under constant `inflow`; returns `true`
    /// when the throttle state flipped (the engine must re-allocate).
    pub fn advance(&mut self, dt: Time, inflow: Bw, pfs_bw: Bw) -> bool {
        let net = self.net_rate(inflow, pfs_bw);
        self.level = (self.level + net * dt).max(Bytes::ZERO).snap_zero();
        if self.level.get() < SUB_BYTE {
            self.level = Bytes::ZERO;
        }
        if self.level.is_zero() {
            self.writers = 0;
        }
        if self.level.approx_ge(self.spec.capacity) {
            self.level = self.spec.capacity;
            if !self.throttled {
                self.throttled = true;
                return true;
            }
        } else if self.throttled && self.level.approx_le(self.reopen_level()) {
            self.throttled = false;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BurstBufferSpec {
        BurstBufferSpec {
            capacity: Bytes::gib(100.0),
            absorb_bw: Bw::gib_per_sec(40.0),
        }
    }

    const PFS: Bw = Bw::new(10.0 * 1024.0 * 1024.0 * 1024.0); // 10 GiB/s

    #[test]
    fn empty_buffer_passes_through_low_inflow() {
        let bb = BurstBufferState::new(spec());
        // inflow 5 < drain 10: level steady at 0 → no event.
        assert!(bb.next_event_in(Bw::gib_per_sec(5.0), PFS).is_none());
    }

    #[test]
    fn fills_under_burst_and_throttles() {
        let mut bb = BurstBufferState::new(spec());
        // inflow 30, drain 10 → net +20 GiB/s → full in 5 s.
        let t = bb.next_event_in(Bw::gib_per_sec(30.0), PFS).unwrap();
        assert!(t.approx_eq(Time::secs(5.0)));
        let flipped = bb.advance(t, Bw::gib_per_sec(30.0), PFS);
        assert!(flipped, "reaching capacity must flip the throttle");
        assert!(bb.is_throttled());
        assert!(bb.ingest_capacity(PFS).approx_eq(PFS));
    }

    #[test]
    fn reopens_after_hysteresis_drain() {
        let mut bb = BurstBufferState::new(spec());
        bb.advance(Time::secs(5.0), Bw::gib_per_sec(30.0), PFS);
        assert!(bb.is_throttled());
        // Now inflow 2 < drain 10 → net −8; must drain 1 GiB (1 % of 100)
        // to re-open: 0.125 s.
        let t = bb.next_event_in(Bw::gib_per_sec(2.0), PFS).unwrap();
        assert!(t.approx_eq(Time::secs(0.125)));
        let flipped = bb.advance(t, Bw::gib_per_sec(2.0), PFS);
        assert!(flipped, "crossing the reopen threshold must re-allocate");
        assert!(!bb.is_throttled());
        assert!(bb.ingest_capacity(PFS).approx_eq(Bw::gib_per_sec(40.0)));
    }

    #[test]
    fn drains_to_empty_without_flipping() {
        let mut bb = BurstBufferState::new(spec());
        bb.advance(Time::secs(2.0), Bw::gib_per_sec(30.0), PFS); // level 40
        assert!(!bb.is_throttled());
        // inflow 0 → net −10 → empty in 4 s.
        let t = bb.next_event_in(Bw::ZERO, PFS).unwrap();
        assert!(t.approx_eq(Time::secs(4.0)));
        let flipped = bb.advance(t, Bw::ZERO, PFS);
        assert!(!flipped);
        assert!(bb.level().is_zero());
        // Steady afterwards.
        assert!(bb.next_event_in(Bw::ZERO, PFS).is_none());
    }

    #[test]
    fn level_never_goes_negative() {
        let mut bb = BurstBufferState::new(spec());
        bb.advance(Time::secs(100.0), Bw::ZERO, PFS);
        assert!(bb.level().is_zero());
    }

    #[test]
    fn sub_byte_residue_clamps_to_empty() {
        let mut bb = BurstBufferState::new(spec());
        // Fill to a hair above empty, then drain just short of it: the
        // residual must clamp to exactly zero so no ~1e-12 s drain event
        // can stall the simulation clock.
        bb.advance(Time::secs(1.0), Bw::gib_per_sec(30.0), PFS); // 20 GiB
        let level = bb.level();
        let dt = (level - Bytes::new(0.4)) / PFS;
        bb.advance(dt, Bw::ZERO, PFS);
        assert!(bb.level().is_zero(), "residue {} not clamped", bb.level());
        assert!(bb.next_event_in(Bw::ZERO, PFS).is_none());
    }

    #[test]
    fn interleaved_streams_persist_until_empty() {
        let mut bb = BurstBufferState::new(spec());
        // 4 streams start writing into the empty buffer.
        bb.note_streams(4);
        assert_eq!(bb.interleaved_streams(), 4);
        bb.advance(Time::secs(1.0), Bw::gib_per_sec(30.0), PFS); // level 20
                                                                 // Fewer concurrent writers never un-mix the stored data.
        bb.note_streams(2);
        assert_eq!(bb.interleaved_streams(), 4);
        // Ingest stops, but the buffered data of 4 apps still interleaves.
        bb.note_streams(0);
        assert_eq!(bb.interleaved_streams(), 4);
        // Draining empty forgets the old contents.
        bb.advance(Time::secs(4.0), Bw::ZERO, PFS);
        assert!(bb.level().is_zero());
        assert_eq!(bb.interleaved_streams(), 0);
    }

    #[test]
    fn balanced_flow_is_steady() {
        let mut bb = BurstBufferState::new(spec());
        bb.advance(Time::secs(1.0), Bw::gib_per_sec(30.0), PFS); // level 20
                                                                 // inflow exactly 10 = drain → steady.
        assert!(bb.next_event_in(PFS, PFS).is_none());
        let flipped = bb.advance(Time::secs(10.0), PFS, PFS);
        assert!(!flipped);
        assert!(bb.level().approx_eq(Bytes::gib(20.0)));
    }
}
