//! Piecewise-constant allocation trace and its §2.1 validator.
//!
//! The engine records a [`TraceSegment`] for every interval between
//! consecutive scheduling events; property tests replay the trace against
//! the model constraints (per-processor cap, aggregate cap, conservation).

use iosched_model::{AppId, Bw, Bytes, Platform, Time};
use serde::{Deserialize, Serialize};

/// One constant-allocation interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSegment {
    /// Interval start.
    pub start: Time,
    /// Interval end.
    pub end: Time,
    /// Pipe capacity in force during the interval (PFS bandwidth `B`, or
    /// the burst-buffer absorb bandwidth while the buffer is open).
    pub capacity: Bw,
    /// Granted application-aggregate bandwidths (absent = stalled).
    pub grants: Vec<(AppId, Bw)>,
    /// Effective delivered bandwidths after interference.
    pub effective: Vec<(AppId, Bw)>,
}

impl TraceSegment {
    /// Duration of the segment.
    #[must_use]
    pub fn duration(&self) -> Time {
        self.end - self.start
    }

    /// Total granted bandwidth.
    #[must_use]
    pub fn total_granted(&self) -> Bw {
        self.grants.iter().map(|(_, b)| *b).sum()
    }
}

/// A full allocation trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BandwidthTrace {
    /// Chronological segments.
    pub segments: Vec<TraceSegment>,
}

impl BandwidthTrace {
    /// Record one segment (engine-internal; zero-duration segments are
    /// dropped).
    pub fn push(&mut self, segment: TraceSegment) {
        if segment.duration().get() > 0.0 {
            self.segments.push(segment);
        }
    }

    /// Bytes delivered to `app` over the whole trace (via effective rates).
    #[must_use]
    pub fn delivered(&self, app: AppId) -> Bytes {
        self.segments
            .iter()
            .map(|s| {
                let rate = s
                    .effective
                    .iter()
                    .find(|(a, _)| *a == app)
                    .map_or(Bw::ZERO, |(_, b)| *b);
                rate * s.duration()
            })
            .sum()
    }

    /// Validate every segment against the model:
    /// * segments are chronological and non-overlapping,
    /// * every grant respects the per-application cap `β·b`,
    /// * aggregate grants never exceed the segment's pipe capacity,
    /// * effective rates never exceed grants.
    ///
    /// `procs_of` maps applications to their `β` (the trace itself does not
    /// carry specs).
    pub fn validate(
        &self,
        platform: &Platform,
        procs_of: &dyn Fn(AppId) -> Option<u64>,
    ) -> Result<(), String> {
        let mut prev_end = Time::ZERO - Time::secs(1.0);
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.end.approx_le(seg.start) {
                return Err(format!("segment {i} is empty or reversed"));
            }
            if seg.start.approx_lt(prev_end) {
                return Err(format!("segment {i} overlaps its predecessor"));
            }
            prev_end = seg.end;
            if seg.total_granted().approx_gt(seg.capacity) {
                return Err(format!(
                    "segment {i}: granted {} exceeds capacity {}",
                    seg.total_granted(),
                    seg.capacity
                ));
            }
            for &(app, bw) in &seg.grants {
                let Some(procs) = procs_of(app) else {
                    return Err(format!("segment {i}: grant for unknown {app}"));
                };
                let cap = platform.proc_bw * procs as f64;
                if bw.approx_gt(cap) {
                    return Err(format!("segment {i}: {app} granted {bw} above β·b = {cap}"));
                }
            }
            for &(app, eff) in &seg.effective {
                let granted = seg
                    .grants
                    .iter()
                    .find(|(a, _)| *a == app)
                    .map_or(Bw::ZERO, |(_, b)| *b);
                if eff.approx_gt(granted) {
                    return Err(format!(
                        "segment {i}: {app} delivered {eff} above its grant {granted}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of distinct scheduling intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segment was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::new("t", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    fn seg(start: f64, end: f64, grants: Vec<(AppId, Bw)>) -> TraceSegment {
        TraceSegment {
            start: Time::secs(start),
            end: Time::secs(end),
            capacity: Bw::gib_per_sec(10.0),
            effective: grants.clone(),
            grants,
        }
    }

    #[test]
    fn delivered_integrates_effective_rate() {
        let mut t = BandwidthTrace::default();
        t.push(seg(0.0, 2.0, vec![(AppId(0), Bw::gib_per_sec(3.0))]));
        t.push(seg(2.0, 5.0, vec![(AppId(0), Bw::gib_per_sec(1.0))]));
        assert!(t.delivered(AppId(0)).approx_eq(Bytes::gib(9.0)));
        assert!(t.delivered(AppId(1)).is_zero());
    }

    #[test]
    fn zero_duration_segments_are_dropped() {
        let mut t = BandwidthTrace::default();
        t.push(seg(1.0, 1.0, vec![]));
        assert!(t.is_empty());
    }

    #[test]
    fn valid_trace_passes() {
        let mut t = BandwidthTrace::default();
        t.push(seg(0.0, 1.0, vec![(AppId(0), Bw::gib_per_sec(5.0))]));
        t.push(seg(1.0, 2.0, vec![(AppId(0), Bw::gib_per_sec(10.0))]));
        t.validate(&platform(), &|_| Some(100)).unwrap();
    }

    #[test]
    fn validator_rejects_overlap() {
        let mut t = BandwidthTrace::default();
        t.push(seg(0.0, 2.0, vec![]));
        t.push(seg(1.0, 3.0, vec![]));
        assert!(t.validate(&platform(), &|_| Some(100)).is_err());
    }

    #[test]
    fn validator_rejects_over_capacity() {
        let mut t = BandwidthTrace::default();
        t.push(seg(
            0.0,
            1.0,
            vec![
                (AppId(0), Bw::gib_per_sec(6.0)),
                (AppId(1), Bw::gib_per_sec(6.0)),
            ],
        ));
        assert!(t.validate(&platform(), &|_| Some(100)).is_err());
    }

    #[test]
    fn validator_rejects_per_app_cap_violation() {
        let mut t = BandwidthTrace::default();
        // 10 procs → cap 1 GiB/s, granted 2.
        t.push(seg(0.0, 1.0, vec![(AppId(0), Bw::gib_per_sec(2.0))]));
        assert!(t.validate(&platform(), &|_| Some(10)).is_err());
    }

    #[test]
    fn validator_rejects_effective_above_grant() {
        let mut t = BandwidthTrace::default();
        let mut s = seg(0.0, 1.0, vec![(AppId(0), Bw::gib_per_sec(2.0))]);
        s.effective = vec![(AppId(0), Bw::gib_per_sec(3.0))];
        t.push(s);
        assert!(t.validate(&platform(), &|_| Some(100)).is_err());
    }

    #[test]
    fn validator_rejects_unknown_app() {
        let mut t = BandwidthTrace::default();
        t.push(seg(0.0, 1.0, vec![(AppId(9), Bw::gib_per_sec(1.0))]));
        assert!(t.validate(&platform(), &|_| None).is_err());
    }
}
