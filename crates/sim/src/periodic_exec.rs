//! Executing periodic schedules (§3.2).
//!
//! Two independent executors cross-validate the periodic machinery:
//!
//! 1. [`unroll_report`] — analytic unrolling over `n` regular periods
//!    (§3.2 footnote 1): the steady state is `ρ̃ = n_per·w/T` and the
//!    finite-horizon value converges to it as `n → ∞`;
//! 2. [`TimetablePolicy`] — replays the schedule *inside the fluid
//!    simulator* as an [`OnlinePolicy`]: at any instant each application
//!    is granted exactly the bandwidth its reservation window prescribes,
//!    and the policy wakes the engine at every window boundary. Running
//!    applications shaped like the plans through the engine under this
//!    policy must reproduce the analytic numbers exactly — tested below.

use iosched_core::periodic::PeriodicSchedule;
use iosched_core::policy::{Allocation, OnlinePolicy, SchedContext};
use iosched_model::{AppOutcome, Bw, ObjectiveReport, Platform, Time};

/// Execute `schedule` for `periods` regular periods (all applications
/// released at t = 0) and report the exact objectives at each
/// application's last completion.
///
/// # Panics
/// Panics if `periods == 0` or the schedule has no plans.
#[must_use]
pub fn unroll_report(
    schedule: &PeriodicSchedule,
    platform: &Platform,
    periods: usize,
) -> ObjectiveReport {
    assert!(periods > 0, "need at least one period");
    assert!(!schedule.plans.is_empty(), "empty schedule");
    let t = schedule.period;
    let per_app: Vec<AppOutcome> = schedule
        .plans
        .iter()
        .map(|plan| {
            let tio = platform.dedicated_io_time(plan.procs, plan.vol);
            let span = plan.work + tio;
            let rho = if span.get() <= 0.0 {
                1.0
            } else {
                plan.work / span
            };
            let n_per = plan.n_per();
            if n_per == 0 {
                // Never scheduled: no progress at the horizon end.
                return AppOutcome {
                    id: plan.app,
                    procs: plan.procs,
                    release: Time::ZERO,
                    finish: t * periods as f64,
                    rho,
                    rho_tilde: 0.0,
                };
            }
            // d_k = (periods−1)·T + io_end of the last instance in the
            // final period.
            let last_io_end = plan.instances.last().expect("n_per > 0").io_end;
            let finish = t * (periods as f64 - 1.0) + last_io_end;
            let work_done = plan.work * (n_per * periods) as f64;
            let rho_tilde = if finish.get() <= 0.0 {
                1.0
            } else {
                (work_done / finish).min(rho)
            };
            AppOutcome {
                id: plan.app,
                procs: plan.procs,
                release: Time::ZERO,
                finish,
                rho,
                rho_tilde,
            }
        })
        .collect();
    ObjectiveReport::from_outcomes(per_app)
}

/// Replay a [`PeriodicSchedule`] inside the fluid simulator.
///
/// The timetable repeats forever: at simulation time `t`, application `k`
/// receives its planned bandwidth iff `t mod T` falls inside one of its
/// reservation windows (and it actually has an outstanding transfer). The
/// policy wakes the engine at every window boundary via
/// [`OnlinePolicy::next_wakeup`], so grants change exactly when the
/// timetable says they should.
#[derive(Debug, Clone)]
pub struct TimetablePolicy {
    schedule: PeriodicSchedule,
    /// Sorted window boundaries within `[0, T)`.
    boundaries: Vec<Time>,
}

impl TimetablePolicy {
    /// Wrap a schedule for execution.
    ///
    /// # Panics
    /// Panics on a schedule with a non-positive period.
    #[must_use]
    pub fn new(schedule: PeriodicSchedule) -> Self {
        assert!(schedule.period.get() > 0.0, "period must be positive");
        let mut boundaries: Vec<Time> = schedule
            .plans
            .iter()
            .flat_map(|p| p.instances.iter().flat_map(|i| [i.io_start, i.io_end]))
            .collect();
        boundaries.sort_by(|a, b| a.get().total_cmp(&b.get()));
        boundaries.dedup_by(|a, b| a.approx_eq(*b));
        Self {
            schedule,
            boundaries,
        }
    }

    /// Offset of `t` within the repeating period.
    fn offset(&self, t: Time) -> Time {
        let period = self.schedule.period.as_secs();
        Time::secs(t.as_secs().rem_euclid(period))
    }

    /// Planned bandwidth of application `id` at period offset `offset`.
    fn planned_bw(&self, id: iosched_model::AppId, offset: Time) -> Bw {
        self.schedule
            .plans
            .iter()
            .find(|p| p.app == id)
            .map_or(Bw::ZERO, |plan| {
                plan.instances
                    .iter()
                    .find(|i| offset.approx_ge(i.io_start) && offset.approx_lt(i.io_end))
                    .map_or(Bw::ZERO, |i| i.io_bw)
            })
    }
}

impl OnlinePolicy for TimetablePolicy {
    fn name(&self) -> String {
        "timetable".into()
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        // Ordering is irrelevant — allocate is overridden — but must be a
        // permutation for trait contract purposes.
        (0..ctx.pending.len()).collect()
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> Allocation {
        let offset = self.offset(ctx.now);
        let grants = ctx
            .pending
            .iter()
            .filter_map(|app| {
                let bw = self.planned_bw(app.id, offset).min(app.max_bw);
                (bw.get() > 0.0).then_some((app.id, bw))
            })
            .collect();
        Allocation { grants }
    }

    fn next_wakeup(&self, now: Time) -> Option<Time> {
        let period = self.schedule.period;
        let offset = self.offset(now);
        let base = now - offset;
        for &b in &self.boundaries {
            if b.approx_gt(offset) {
                return Some(base + b);
            }
        }
        // Wrap to the first boundary of the next period (or its start).
        let first = self.boundaries.first().copied().unwrap_or(Time::ZERO);
        Some(base + period + first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use iosched_core::periodic::{build_schedule, InsertionHeuristic, PeriodicAppSpec};
    use iosched_model::{AppSpec, Bytes};

    fn platform() -> Platform {
        Platform::new("t", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    fn schedule() -> PeriodicSchedule {
        let apps = [
            PeriodicAppSpec::new(0, 100, Time::secs(8.0), Bytes::gib(20.0)),
            PeriodicAppSpec::new(1, 100, Time::secs(8.0), Bytes::gib(20.0)),
        ];
        build_schedule(
            &platform(),
            &apps,
            Time::secs(24.0),
            InsertionHeuristic::Congestion,
        )
    }

    #[test]
    fn unrolled_converges_to_steady_state() {
        let p = platform();
        let s = schedule();
        let steady = s.steady_state(&p);
        let short = unroll_report(&s, &p, 2);
        let long = unroll_report(&s, &p, 500);
        // Finite-horizon efficiency is ≥ steady state (last period ends at
        // the final I/O, not at n·T) and converges from above.
        let err_short = (short.sys_efficiency - steady.sys_efficiency).abs();
        let err_long = (long.sys_efficiency - steady.sys_efficiency).abs();
        assert!(err_long < err_short, "longer horizon must be closer");
        assert!(err_long < 1e-3, "500 periods within 0.1 %: {err_long}");
    }

    #[test]
    fn unscheduled_app_shows_zero_progress() {
        let p = platform();
        let mut s = schedule();
        s.plans.push(iosched_core::periodic::AppPlan {
            app: iosched_model::AppId(2),
            procs: 10,
            work: Time::secs(1.0),
            vol: Bytes::gib(1.0),
            instances: vec![],
        });
        let r = unroll_report(&s, &p, 10);
        assert!(r.dilation.is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn zero_periods_panics() {
        let p = platform();
        let s = schedule();
        let _ = unroll_report(&s, &p, 0);
    }

    #[test]
    fn timetable_policy_grants_follow_the_plan() {
        let s = schedule();
        let mut policy = TimetablePolicy::new(s.clone());
        // Probe the middle of the first app's first I/O window.
        let plan = &s.plans[0];
        let inst = &plan.instances[0];
        let mid = (inst.io_start + inst.io_end) / 2.0;
        let pending = [iosched_core::policy::test_support::app(plan.app.0, 100.0)];
        let ctx = SchedContext {
            now: mid,
            total_bw: Bw::gib_per_sec(10.0),
            pending: &pending,
        };
        let alloc = policy.allocate(&ctx);
        assert!(alloc.granted(plan.app).approx_eq(inst.io_bw));
        // And mid-compute (before the window) it grants nothing.
        let ctx2 = SchedContext {
            now: inst.io_start - Time::secs(0.5),
            ..ctx
        };
        assert!(policy.allocate(&ctx2).granted(plan.app).is_zero());
    }

    #[test]
    fn timetable_wakeups_hit_every_boundary() {
        let s = schedule();
        let policy = TimetablePolicy::new(s.clone());
        let first = policy.next_wakeup(Time::ZERO).unwrap();
        assert!(first.approx_gt(Time::ZERO));
        // Wakeups advance strictly and wrap to the next period.
        let mut t = Time::ZERO;
        let mut steps = 0;
        while t.approx_lt(s.period * 2.0) {
            let next = policy.next_wakeup(t).unwrap();
            assert!(next.approx_gt(t), "wakeup {next} not after {t}");
            t = next;
            steps += 1;
            assert!(steps < 1_000, "wakeups must make progress");
        }
        assert!(steps >= 4, "two periods should contain several boundaries");
    }

    /// The cross-validation at the heart of this module: running
    /// applications shaped exactly like the plans through the fluid
    /// engine under the timetable reproduces the unrolled analytic
    /// report's completion times and efficiencies.
    #[test]
    fn simulator_under_timetable_matches_unrolled_report() {
        let p = platform();
        let s = schedule();
        let periods = 5;
        let apps: Vec<AppSpec> = s
            .plans
            .iter()
            .map(|plan| {
                AppSpec::periodic(
                    plan.app.0,
                    Time::ZERO,
                    plan.procs,
                    plan.work,
                    plan.vol,
                    plan.n_per() * periods,
                )
            })
            .collect();
        let mut policy = TimetablePolicy::new(s.clone());
        let out = simulate(&p, &apps, &mut policy, &SimConfig::default()).unwrap();
        let expected = unroll_report(&s, &p, periods);
        for (got, want) in out.report.per_app.iter().zip(expected.per_app.iter()) {
            assert_eq!(got.id, want.id);
            assert!(
                got.finish.approx_eq(want.finish),
                "{}: finish {} vs predicted {}",
                got.id,
                got.finish,
                want.finish
            );
            assert!(
                (got.rho_tilde - want.rho_tilde).abs() < 1e-6,
                "{}: rho_tilde {} vs predicted {}",
                got.id,
                got.rho_tilde,
                want.rho_tilde
            );
        }
        assert!((out.report.sys_efficiency - expected.sys_efficiency).abs() < 1e-6);
    }
}
