//! Executing periodic schedules (§3.2).
//!
//! Two independent executors cross-validate the periodic machinery:
//!
//! 1. [`unroll_report`] — analytic unrolling over `n` regular periods
//!    (§3.2 footnote 1): the steady state is `ρ̃ = n_per·w/T` and the
//!    finite-horizon value converges to it as `n → ∞`;
//! 2. [`TimetablePolicy`] — replays the schedule *inside the fluid
//!    simulator* as an [`iosched_core::policy::OnlinePolicy`]: at any
//!    instant each application is granted exactly the bandwidth its
//!    reservation window prescribes, and the policy wakes the engine at
//!    every window boundary. Running applications shaped like the plans
//!    through the engine under this policy must reproduce the analytic
//!    numbers exactly — tested below.
//!
//! The policy itself lives in [`iosched_core::periodic`] (re-exported
//! here), where the scenario-aware registry
//! ([`iosched_core::registry::PolicyFactory`]) builds it for any
//! campaign; this module keeps the analytic unroller and the
//! engine-level cross-validation that only the simulator crate can
//! perform.

pub use iosched_core::periodic::TimetablePolicy;

use iosched_core::periodic::PeriodicSchedule;
use iosched_model::{AppOutcome, ObjectiveReport, Platform, Time};

/// Execute `schedule` for `periods` regular periods (all applications
/// released at t = 0) and report the exact objectives at each
/// application's last completion.
///
/// # Panics
/// Panics if `periods == 0` or the schedule has no plans.
#[must_use]
pub fn unroll_report(
    schedule: &PeriodicSchedule,
    platform: &Platform,
    periods: usize,
) -> ObjectiveReport {
    assert!(periods > 0, "need at least one period");
    assert!(!schedule.plans.is_empty(), "empty schedule");
    let t = schedule.period;
    let per_app: Vec<AppOutcome> = schedule
        .plans
        .iter()
        .map(|plan| {
            let tio = platform.dedicated_io_time(plan.procs, plan.vol);
            let span = plan.work + tio;
            let rho = if span.get() <= 0.0 {
                1.0
            } else {
                plan.work / span
            };
            let n_per = plan.n_per();
            if n_per == 0 {
                // Never scheduled: no progress at the horizon end.
                return AppOutcome {
                    id: plan.app,
                    procs: plan.procs,
                    release: Time::ZERO,
                    finish: t * periods as f64,
                    rho,
                    rho_tilde: 0.0,
                };
            }
            // d_k = (periods−1)·T + io_end of the last instance in the
            // final period.
            let last_io_end = plan.instances.last().expect("n_per > 0").io_end;
            let finish = t * (periods as f64 - 1.0) + last_io_end;
            let work_done = plan.work * (n_per * periods) as f64;
            let rho_tilde = if finish.get() <= 0.0 {
                1.0
            } else {
                (work_done / finish).min(rho)
            };
            AppOutcome {
                id: plan.app,
                procs: plan.procs,
                release: Time::ZERO,
                finish,
                rho,
                rho_tilde,
            }
        })
        .collect();
    ObjectiveReport::from_outcomes(per_app)
}

/// Applications shaped exactly like `schedule`'s plans, each running
/// `n_per · periods` instances from `t = 0` — the workload whose
/// execution under [`TimetablePolicy`] reproduces
/// [`unroll_report`]`(schedule, _, periods)`. Plans with `n_per = 0` are
/// skipped (they would never be granted bandwidth).
#[must_use]
pub fn replay_apps(schedule: &PeriodicSchedule, periods: usize) -> Vec<iosched_model::AppSpec> {
    schedule
        .plans
        .iter()
        .filter(|plan| plan.n_per() > 0)
        .map(|plan| {
            iosched_model::AppSpec::periodic(
                plan.app.0,
                Time::ZERO,
                plan.procs,
                plan.work,
                plan.vol,
                plan.n_per() * periods,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use iosched_core::periodic::{build_schedule, InsertionHeuristic, PeriodicAppSpec};
    use iosched_model::{Bw, Bytes};

    fn platform() -> Platform {
        Platform::new("t", 1_000, Bw::gib_per_sec(0.1), Bw::gib_per_sec(10.0))
    }

    fn schedule() -> PeriodicSchedule {
        let apps = [
            PeriodicAppSpec::new(0, 100, Time::secs(8.0), Bytes::gib(20.0)),
            PeriodicAppSpec::new(1, 100, Time::secs(8.0), Bytes::gib(20.0)),
        ];
        build_schedule(
            &platform(),
            &apps,
            Time::secs(24.0),
            InsertionHeuristic::Congestion,
        )
    }

    #[test]
    fn unrolled_converges_to_steady_state() {
        let p = platform();
        let s = schedule();
        let steady = s.steady_state(&p);
        let short = unroll_report(&s, &p, 2);
        let long = unroll_report(&s, &p, 500);
        // Finite-horizon efficiency is ≥ steady state (last period ends at
        // the final I/O, not at n·T) and converges from above.
        let err_short = (short.sys_efficiency - steady.sys_efficiency).abs();
        let err_long = (long.sys_efficiency - steady.sys_efficiency).abs();
        assert!(err_long < err_short, "longer horizon must be closer");
        assert!(err_long < 1e-3, "500 periods within 0.1 %: {err_long}");
    }

    #[test]
    fn unscheduled_app_shows_zero_progress() {
        let p = platform();
        let mut s = schedule();
        s.plans.push(iosched_core::periodic::AppPlan {
            app: iosched_model::AppId(2),
            procs: 10,
            work: Time::secs(1.0),
            vol: Bytes::gib(1.0),
            instances: vec![],
        });
        let r = unroll_report(&s, &p, 10);
        assert!(r.dilation.is_infinite());
        // …and the replay workload skips the starved plan.
        let apps = replay_apps(&s, 3);
        assert_eq!(apps.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn zero_periods_panics() {
        let p = platform();
        let s = schedule();
        let _ = unroll_report(&s, &p, 0);
    }

    /// The cross-validation at the heart of this module: running
    /// applications shaped exactly like the plans through the fluid
    /// engine under the timetable reproduces the unrolled analytic
    /// report's completion times and efficiencies.
    #[test]
    fn simulator_under_timetable_matches_unrolled_report() {
        let p = platform();
        let s = schedule();
        let periods = 5;
        let apps = replay_apps(&s, periods);
        let mut policy = TimetablePolicy::new(s.clone());
        let out = simulate(&p, &apps, &mut policy, &SimConfig::default()).unwrap();
        let expected = unroll_report(&s, &p, periods);
        for (got, want) in out.report.per_app.iter().zip(expected.per_app.iter()) {
            assert_eq!(got.id, want.id);
            assert!(
                got.finish.approx_eq(want.finish),
                "{}: finish {} vs predicted {}",
                got.id,
                got.finish,
                want.finish
            );
            assert!(
                (got.rho_tilde - want.rho_tilde).abs() < 1e-6,
                "{}: rho_tilde {} vs predicted {}",
                got.id,
                got.rho_tilde,
                want.rho_tilde
            );
        }
        assert!((out.report.sys_efficiency - expected.sys_efficiency).abs() < 1e-6);
    }
}
