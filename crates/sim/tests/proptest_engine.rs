//! Property tests pinning the data-oriented engine core bit-exactly.
//!
//! The SoA hot-state split, the calendar event queue and the fused
//! decay+grant pass are pure reorganizations: none of them may change a
//! single bit of any simulated result. These tests drive randomized
//! closed rosters and open streams (including horizon and warmup
//! windows) through the engine and assert, via `f64::to_bits`
//! fingerprints, that
//!
//! * every run is bitwise deterministic (no hidden iteration-order or
//!   allocation-order dependence in the hot state),
//! * observational toggles (trace recording, telemetry series) never
//!   perturb the physics,
//! * the lazy stream path and the materialized open-roster path agree
//!   exactly, under horizons and warmup windows included.
//!
//! The calendar-queue vs binary-heap ordering pin (ties included) lives
//! next to the queue in `crates/sim/src/calendar.rs`.

use iosched_core::heuristics::PolicyKind;
use iosched_model::{AppSpec, Bytes, Platform, Time};
use iosched_sim::{simulate, simulate_open, simulate_stream, SimConfig, SimOutcome};
use proptest::prelude::*;

fn platform() -> Platform {
    Platform::new(
        "prop",
        1_000,
        iosched_model::Bw::gib_per_sec(0.1),
        iosched_model::Bw::gib_per_sec(10.0),
    )
}

/// Bit-exact digest of everything a run reports. Two outcomes with equal
/// fingerprints are identical to the last ulp.
fn fingerprint(out: &SimOutcome) -> Vec<u64> {
    let mut fp = vec![
        out.events as u64,
        out.end_time.get().to_bits(),
        out.report.sys_efficiency.to_bits(),
        out.report.upper_limit.to_bits(),
        out.report.dilation.to_bits(),
    ];
    for a in &out.report.per_app {
        fp.extend([
            a.id.0 as u64,
            a.procs,
            a.release.get().to_bits(),
            a.finish.get().to_bits(),
            a.rho.to_bits(),
            a.rho_tilde.to_bits(),
        ]);
    }
    for (id, bytes) in &out.per_app_bytes {
        fp.extend([id.0 as u64, bytes.get().to_bits()]);
    }
    if let Some(s) = &out.steady {
        fp.extend([
            s.warmup_secs.to_bits(),
            s.window_secs.to_bits(),
            s.admitted as u64,
            s.completed as u64,
            s.left_in_system as u64,
            s.mean_stretch.to_bits(),
            s.max_stretch.to_bits(),
            s.mean_queue.to_bits(),
            s.mean_utilization.to_bits(),
        ]);
    }
    fp
}

/// One periodic application with bounded parameters; `procs ≤ 200` keeps
/// any roster of ≤ 5 within the closed `Σβ ≤ N = 1000` budget.
fn arb_app(id: usize) -> impl Strategy<Value = AppSpec> {
    (
        1u64..=200,
        0.1f64..50.0,
        0.5f64..40.0,
        1usize..4,
        0.0f64..30.0,
    )
        .prop_map(move |(procs, work, vol, instances, release)| {
            AppSpec::periodic(
                id,
                Time::secs(release),
                procs,
                Time::secs(work),
                Bytes::gib(vol),
                instances,
            )
        })
}

fn arb_roster() -> impl Strategy<Value = Vec<AppSpec>> {
    (1usize..=5).prop_flat_map(|n| (0..n).map(arb_app).collect::<Vec<_>>())
}

/// A release-sorted open arrival stream built from positive
/// inter-arrival gaps (what `Simulation::from_stream` requires).
fn arb_stream() -> impl Strategy<Value = Vec<AppSpec>> {
    (1usize..=12)
        .prop_flat_map(|n| {
            (
                (0..n).map(arb_app).collect::<Vec<_>>(),
                prop::collection::vec(0.0f64..40.0, n),
            )
        })
        .prop_map(|(mut apps, gaps)| {
            let mut t = 0.0;
            for (a, g) in apps.iter_mut().zip(gaps) {
                t += g;
                a.set_release(Time::secs(t));
            }
            apps
        })
}

/// A policy index into the fig. 6 roster (resolved per run so each run
/// gets a fresh policy with no carried state).
fn arb_policy() -> impl Strategy<Value = usize> {
    0..PolicyKind::fig6_roster().len()
}

fn build_policy(index: usize) -> Box<dyn iosched_core::policy::OnlinePolicy> {
    PolicyKind::fig6_roster()[index].build()
}

proptest! {
    /// Two identical closed-roster runs produce bit-identical outcomes,
    /// and the recorded trace replays every §2.1 constraint.
    #[test]
    fn closed_roster_runs_are_bitwise_deterministic(
        apps in arb_roster(),
        policy in arb_policy(),
    ) {
        let p = platform();
        let config = SimConfig::traced();
        let a = simulate(&p, &apps, build_policy(policy).as_mut(), &config)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let b = simulate(&p, &apps, build_policy(policy).as_mut(), &config)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        let procs_of = |id: iosched_model::AppId| {
            apps.iter().find(|s| s.id() == id).map(|s| s.procs())
        };
        a.trace
            .as_ref()
            .expect("traced config records")
            .validate(&p, &procs_of)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    /// Trace recording and the telemetry series are observations: with
    /// them on or off, the physics fingerprint is bit-identical.
    #[test]
    fn observation_toggles_never_perturb_the_physics(
        apps in arb_roster(),
        policy in arb_policy(),
    ) {
        let p = platform();
        let base = simulate(
            &p, &apps, build_policy(policy).as_mut(), &SimConfig::default(),
        ).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let want = fingerprint(&base);
        for config in [
            SimConfig::traced(),
            SimConfig { telemetry: true, ..SimConfig::default() },
            SimConfig { telemetry: true, ..SimConfig::traced() },
        ] {
            let out = simulate(&p, &apps, build_policy(policy).as_mut(), &config)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&fingerprint(&out), &want);
        }
    }

    /// Open streams — lazy iterator, slot-recycling arena, horizon and
    /// warmup windows — are bitwise deterministic, and the materialized
    /// open-roster entry point agrees exactly with the lazy stream.
    #[test]
    fn open_streams_are_bitwise_deterministic(
        arrivals in arb_stream(),
        policy in arb_policy(),
        warmup in 0.0f64..50.0,
        horizon_on in any::<bool>(),
        horizon_secs in 100.0f64..2_000.0,
        detail in any::<bool>(),
    ) {
        let p = platform();
        let config = SimConfig {
            warmup: Time::secs(warmup),
            horizon: horizon_on.then(|| Time::secs(horizon_secs)),
            per_app_detail: detail,
            ..SimConfig::default()
        };
        let a = simulate_stream(
            &p, arrivals.iter().cloned(), build_policy(policy).as_mut(), &config,
        ).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let b = simulate_stream(
            &p, arrivals.iter().cloned(), build_policy(policy).as_mut(), &config,
        ).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        let open = simulate_open(
            &p, &arrivals, build_policy(policy).as_mut(), &config,
        ).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(fingerprint(&a), fingerprint(&open));
    }
}
