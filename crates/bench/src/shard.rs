//! Sharded, resumable campaign execution: partial files and the merge
//! reducer.
//!
//! A campaign's unit of sharded work is the **seed block** (see
//! [`CampaignSpec::block_count`]): block simulation is a pure function
//! of `(spec, block index)`, so any process — or any machine — can
//! compute any block and the results are bit-identical. A shard `i/n`
//! owns the strided subset `{b : b mod n == i}` and appends each
//! finished block to its own JSONL partial file
//! (`shard-<i>-of-<n>.jsonl`), one flushed `write(2)` per line, so a
//! partial file is always a valid prefix: at worst the final line is
//! torn and the scanner drops it.
//!
//! ## Why partials carry raw metrics, and the canonical merge order
//!
//! Cell summaries are *derived* state: `Summary::from_slice` folds a
//! cell's samples in seed order and its mean/std are sensitive to that
//! order at the ulp level, while `Summary::merge` (Chan's pairwise
//! update) produces yet another rounding. A reducer that merged
//! finished `CellSummary` values would therefore be bit-identical only
//! by luck. Instead each block line records the raw [`RunMetrics`] (one
//! per policy) and [`merge_records`] replays the exact single-process
//! fold — ascending global block order through the campaign's
//! `CellFold` — so the merged [`CampaignResult`] is bit-identical to
//! [`run_campaign`], pooled quantile reservoirs included. Ascending
//! block order is the **pinned canonical merge order**; shard file
//! layout and arrival order never influence the result.
//!
//! ## Resume
//!
//! Every shard file starts with a manifest line binding it to the
//! campaign via a spec hash ([`spec_hash`]: FNV-1a 64 over the spec's
//! canonical compact JSON) and embedding the full spec. On restart a
//! shard rescans the directory, refuses to mix partials from a
//! different spec, skips every block any file already finished
//! (resume works even across a changed shard count — block indices are
//! global), appends a fresh manifest line with an incremented `pass`
//! counter, and computes only the remainder. The old bytes are never
//! rewritten, which is what lets tests assert "finished blocks were not
//! re-simulated" from the file contents alone.

use crate::campaign::{fold_block_subset, CampaignResult, CampaignSpec, CellFold, RunMetrics};
use crate::runner::ScenarioRunner;
use iosched_obs::{Histogram, HistogramSnapshot, Stopwatch};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Stable 64-bit fingerprint of a campaign spec: FNV-1a over the
/// compact canonical JSON image, rendered as 16 hex digits (a string,
/// because the JSON data model only holds integers exactly up to 2^53).
/// Two specs hash equal iff their serialized forms agree *after*
/// dropping pure execution knobs (`threads`), which change wall-clock
/// but never results — so a sweep can resume with a different thread
/// count. This is the rule a resume uses to decide whether existing
/// partials belong to the same campaign.
#[must_use]
pub fn spec_hash(spec: &CampaignSpec) -> String {
    let mut canon = spec.clone();
    canon.threads = None;
    let json = serde_json::to_string(&canon).unwrap_or_default();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// The global block indices shard `index` of `of` owns: the strided
/// subset `{b : b mod of == index}`. Striding (rather than contiguous
/// ranges) balances heterogeneous block costs — in a load sweep the
/// high-λ blocks are many times slower than the low-λ ones and a
/// contiguous split would hand one shard all of them.
///
/// # Panics
/// Panics when `of` is zero or `index >= of`.
#[must_use]
pub fn shard_blocks(total: usize, index: usize, of: usize) -> Vec<usize> {
    assert!(of > 0, "shard count must be at least 1");
    assert!(index < of, "shard index {index} out of range 0..{of}");
    (index..total).step_by(of).collect()
}

/// The partial file shard `index` of `of` appends to.
#[must_use]
pub fn partial_path(dir: &Path, index: usize, of: usize) -> PathBuf {
    dir.join(format!("shard-{index}-of-{of}.jsonl"))
}

// --- Lossless float encoding. -------------------------------------------
//
// The vendored serde_json prints non-finite floats as `null` and `-0.0`
// as `0`; both would silently break the bit-identity contract, so the
// partial format uses the shared lossless encoding
// ([`iosched_model::lossless`]): the four lossy cases become strings,
// everything else a plain JSON number (which round-trips exactly).

use iosched_model::lossless::{
    float_from_value, float_to_value, opt_float_from_value, opt_float_to_value,
};

impl serde::Serialize for RunMetrics {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("eff".into(), float_to_value(self.sys_efficiency)),
            ("dil".into(), float_to_value(self.dilation)),
            ("upper".into(), float_to_value(self.upper_limit)),
            ("makespan".into(), float_to_value(self.makespan_secs)),
            ("util".into(), opt_float_to_value(self.utilization)),
            ("queue".into(), opt_float_to_value(self.queue)),
            ("stretch".into(), opt_float_to_value(self.stretch)),
        ])
    }
}

impl serde::Deserialize for RunMetrics {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a run-metrics object"))?;
        Ok(Self {
            sys_efficiency: float_from_value(serde::map_get(map, "eff"))
                .map_err(|e| e.at("eff"))?,
            dilation: float_from_value(serde::map_get(map, "dil")).map_err(|e| e.at("dil"))?,
            upper_limit: float_from_value(serde::map_get(map, "upper"))
                .map_err(|e| e.at("upper"))?,
            makespan_secs: float_from_value(serde::map_get(map, "makespan"))
                .map_err(|e| e.at("makespan"))?,
            utilization: opt_float_from_value(serde::map_get(map, "util"))
                .map_err(|e| e.at("util"))?,
            queue: opt_float_from_value(serde::map_get(map, "queue")).map_err(|e| e.at("queue"))?,
            stretch: opt_float_from_value(serde::map_get(map, "stretch"))
                .map_err(|e| e.at("stretch"))?,
        })
    }
}

// --- Partial-file line types. -------------------------------------------

/// First line of every shard incarnation: binds the file to a campaign
/// and records what the shard believes the world looks like.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Shard index within `0..of`.
    pub index: usize,
    /// Shard count this incarnation was launched with.
    pub of: usize,
    /// Incarnation counter: 0 for a fresh shard, +1 per resume of the
    /// same file. Resumed block lines carry the new pass, so "finished
    /// blocks were not re-simulated" is checkable from the file alone.
    pub pass: usize,
    /// Total seed blocks of the campaign ([`CampaignSpec::block_count`]).
    pub blocks: usize,
    /// [`spec_hash`] of `spec` — consistency check and resume guard.
    pub spec_hash: String,
    /// The full campaign spec, embedded so a partial directory is
    /// self-contained: `iosched merge DIR` needs no other input.
    pub spec: CampaignSpec,
}

/// One finished seed block: the raw per-run metrics of every policy, in
/// policy order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockRecord {
    /// Global block index (see [`CampaignSpec::block_count`]).
    pub block: usize,
    /// Incarnation that computed this block.
    pub pass: usize,
    /// One [`RunMetrics`] per policy, in the spec's policy order.
    pub runs: Vec<RunMetrics>,
}

/// Final line of a shard incarnation that ran to completion; absent
/// after a crash/SIGKILL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardFooter {
    /// Shard index.
    pub index: usize,
    /// Incarnation this footer closes.
    pub pass: usize,
    /// Blocks computed by this incarnation (skipped ones not counted).
    pub blocks_done: usize,
    /// Wall-clock time of the incarnation, milliseconds.
    pub wall_ms: u64,
    /// Process CPU time (`/proc/self/schedstat`), milliseconds; `None`
    /// off Linux.
    pub cpu_ms: Option<u64>,
    /// Peak resident set (`VmHWM` of `/proc/self/status`), KiB; `None`
    /// off Linux.
    pub peak_rss_kib: Option<u64>,
    /// Per-block wall-time distribution (nanoseconds per finished
    /// block, write included). `None` when the incarnation computed
    /// nothing — and in partials recorded before the field existed,
    /// which still parse.
    pub block_time_ns: Option<HistogramSnapshot>,
}

/// One line of a shard partial file.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardLine {
    /// Incarnation header.
    Manifest(ShardManifest),
    /// A finished seed block.
    Block(BlockRecord),
    /// Clean-exit footer.
    Done(ShardFooter),
}

impl serde::Serialize for ShardLine {
    fn to_value(&self) -> serde::Value {
        let (key, inner) = match self {
            Self::Manifest(m) => ("manifest", m.to_value()),
            Self::Block(b) => ("block", b.to_value()),
            Self::Done(f) => ("done", f.to_value()),
        };
        serde::Value::Map(vec![(key.to_string(), inner)])
    }
}

impl serde::Deserialize for ShardLine {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v.as_map() {
            Some([(key, inner)]) if key == "manifest" => {
                ShardManifest::from_value(inner).map(Self::Manifest)
            }
            Some([(key, inner)]) if key == "block" => {
                BlockRecord::from_value(inner).map(Self::Block)
            }
            Some([(key, inner)]) if key == "done" => ShardFooter::from_value(inner).map(Self::Done),
            _ => Err(serde::Error::custom(
                "expected a one-key object tagged manifest/block/done",
            )),
        }
    }
}

// --- Scanning. ----------------------------------------------------------

/// Everything a partial directory contains, after validation.
#[derive(Debug, Default)]
pub struct PartialScan {
    /// `*.jsonl` files read.
    pub files: usize,
    /// Every manifest line, file order then line order.
    pub manifests: Vec<ShardManifest>,
    /// Finished blocks by global index. First occurrence wins; block
    /// results are deterministic, so duplicates (if any) are identical
    /// anyway.
    pub blocks: BTreeMap<usize, BlockRecord>,
    /// Clean-exit footers, file order then line order.
    pub footers: Vec<ShardFooter>,
    /// Block lines whose index was already present (0 unless a crash
    /// tore a line that a later pass then recomputed).
    pub duplicates: usize,
    /// Torn trailing lines dropped (at most one per file).
    pub torn: usize,
}

impl PartialScan {
    /// The campaign every manifest in the directory agrees on, if any
    /// manifest exists.
    #[must_use]
    pub fn campaign(&self) -> Option<&ShardManifest> {
        self.manifests.first()
    }
}

fn parse_lines(path: &Path, text: &str, scan: &mut PartialScan) -> Result<(), String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    for (i, line) in lines.iter().enumerate() {
        match serde_json::from_str::<ShardLine>(line) {
            Ok(ShardLine::Manifest(m)) => {
                if spec_hash(&m.spec) != m.spec_hash {
                    return Err(format!(
                        "{}: manifest spec hash {} does not match its embedded spec ({})",
                        path.display(),
                        m.spec_hash,
                        spec_hash(&m.spec)
                    ));
                }
                if m.blocks != m.spec.block_count() {
                    return Err(format!(
                        "{}: manifest claims {} blocks but its spec has {}",
                        path.display(),
                        m.blocks,
                        m.spec.block_count()
                    ));
                }
                scan.manifests.push(m);
            }
            Ok(ShardLine::Block(b)) => match scan.blocks.entry(b.block) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(b);
                }
                std::collections::btree_map::Entry::Occupied(_) => scan.duplicates += 1,
            },
            Ok(ShardLine::Done(f)) => scan.footers.push(f),
            Err(e) => {
                // A torn final line is the expected signature of a
                // killed shard; anything earlier is real corruption.
                if i + 1 == lines.len() {
                    scan.torn += 1;
                } else {
                    return Err(format!(
                        "{}: corrupt line {} (not a trailing torn write): {e}",
                        path.display(),
                        i + 1
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Read every `*.jsonl` partial in `dir` (sorted by file name, so scans
/// are deterministic), tolerating one torn trailing line per file, and
/// check internal consistency: every manifest must carry the same spec
/// hash, and each hash must match its embedded spec. A missing
/// directory scans as empty.
pub fn scan_dir(dir: &Path) -> Result<PartialScan, String> {
    let mut scan = PartialScan::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    paths.sort();
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        parse_lines(&path, &text, &mut scan)?;
        scan.files += 1;
    }
    if let Some(first) = scan.manifests.first() {
        if let Some(other) = scan
            .manifests
            .iter()
            .find(|m| m.spec_hash != first.spec_hash)
        {
            return Err(format!(
                "partial directory mixes campaigns: spec hash {} vs {}",
                first.spec_hash, other.spec_hash
            ));
        }
        if let Some(stray) = scan.blocks.values().find(|b| b.block >= first.blocks) {
            return Err(format!(
                "block {} out of range (campaign has {} blocks)",
                stray.block, first.blocks
            ));
        }
    }
    Ok(scan)
}

// --- Shard execution. ---------------------------------------------------

/// What [`run_shard`] did, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Shard index.
    pub index: usize,
    /// Shard count.
    pub of: usize,
    /// Incarnation this run wrote.
    pub pass: usize,
    /// Blocks the strided plan assigns this shard.
    pub assigned: usize,
    /// Assigned blocks some partial had already finished.
    pub skipped: usize,
    /// Blocks computed (and appended) by this run.
    pub computed: usize,
    /// The partial file written.
    pub path: PathBuf,
}

fn proc_peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn proc_cpu_ms() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    let ns: u64 = stat.split_whitespace().next()?.parse().ok()?;
    Some(ns / 1_000_000)
}

/// Compute the [`BlockRecord`]s of an arbitrary block subset in memory —
/// the pure core of [`run_shard`], also what property tests use to
/// exercise arbitrary (non-strided) partitions.
pub fn block_records(
    spec: &CampaignSpec,
    runner: &ScenarioRunner,
    blocks: &[usize],
    pass: usize,
) -> Result<Vec<BlockRecord>, String> {
    fold_block_subset(
        spec,
        runner,
        blocks,
        Vec::with_capacity(blocks.len()),
        |mut acc, b, outcomes| {
            acc.push(BlockRecord {
                block: b,
                pass,
                runs: outcomes.iter().map(RunMetrics::from_outcome).collect(),
            });
            acc
        },
    )
}

/// Run shard `index` of `of` of a campaign, appending finished blocks
/// to `dir`'s partial file as they complete (one flushed line per
/// block) and resuming from whatever the directory already holds:
/// blocks finished by *any* partial — even from a run with a different
/// shard count — are skipped, never recomputed.
///
/// `progress` is called after each computed block with
/// `(global block index, computed so far, blocks to compute)`.
pub fn run_shard(
    spec: &CampaignSpec,
    index: usize,
    of: usize,
    dir: &Path,
    runner: &ScenarioRunner,
    mut progress: impl FnMut(usize, usize, usize),
) -> Result<ShardReport, String> {
    if of == 0 {
        return Err("shard count must be at least 1".into());
    }
    if index >= of {
        return Err(format!("shard index {index} out of range 0..{of}"));
    }
    spec.validate()?;
    let hash = spec_hash(spec);
    let started = std::time::Instant::now();

    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let scan = scan_dir(dir)?;
    if let Some(existing) = scan.campaign() {
        if existing.spec_hash != hash {
            return Err(format!(
                "{} holds partials of a different campaign (spec hash {} vs {}); \
                 point --out at a fresh directory or delete the stale partials",
                dir.display(),
                existing.spec_hash,
                hash
            ));
        }
    }

    let path = partial_path(dir, index, of);
    // Incarnation counter: one past the newest pass this file has seen.
    let pass = scan
        .manifests
        .iter()
        .filter(|m| partial_path(dir, m.index, m.of) == path)
        .map(|m| m.pass + 1)
        .max()
        .unwrap_or(0);

    let assigned = shard_blocks(spec.block_count(), index, of);
    let todo: Vec<usize> = assigned
        .iter()
        .copied()
        .filter(|b| !scan.blocks.contains_key(b))
        .collect();
    let skipped = assigned.len() - todo.len();

    // A kill can tear the line that was in flight. `scan_dir` tolerates
    // a torn *last* line, but appending this incarnation's manifest
    // right after one would glue the two into mid-file corruption — so
    // drop the torn tail (everything past the final newline) first.
    if let Ok(existing) = std::fs::metadata(&path) {
        if existing.len() > 0 {
            let bytes = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            if bytes.last() != Some(&b'\n') {
                let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                let truncate = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                truncate
                    .set_len(keep as u64)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
            }
        }
    }

    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let write_line = |file: &mut std::fs::File, line: &ShardLine| -> Result<(), String> {
        let mut text = serde_json::to_string(line).map_err(|e| e.to_string())?;
        text.push('\n');
        // One write per line keeps partials prefix-valid: a kill can
        // tear at most the line in flight.
        file.write_all(text.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("{}: {e}", path.display()))
    };

    write_line(
        &mut file,
        &ShardLine::Manifest(ShardManifest {
            index,
            of,
            pass,
            blocks: spec.block_count(),
            spec_hash: hash,
            spec: spec.clone(),
        }),
    )?;

    let mut computed = 0usize;
    let mut io_error: Option<String> = None;
    // Per-block wall time (compute + serialized write), lapped at each
    // block completion — the fold hands blocks back in order, so the
    // inter-completion gap is the block's cost.
    let block_hist = Histogram::detached();
    let mut block_watch = Stopwatch::start();
    fold_block_subset(spec, runner, &todo, (), |(), b, outcomes| {
        if io_error.is_some() {
            return;
        }
        let record = BlockRecord {
            block: b,
            pass,
            runs: outcomes.iter().map(RunMetrics::from_outcome).collect(),
        };
        match write_line(&mut file, &ShardLine::Block(record)) {
            Ok(()) => {
                computed += 1;
                block_watch.lap(&block_hist);
                progress(b, computed, todo.len());
            }
            Err(e) => io_error = Some(e),
        }
    })?;
    if let Some(e) = io_error {
        return Err(e);
    }

    #[allow(clippy::cast_possible_truncation)]
    let wall_ms = started.elapsed().as_millis() as u64;
    write_line(
        &mut file,
        &ShardLine::Done(ShardFooter {
            index,
            pass,
            blocks_done: computed,
            wall_ms,
            cpu_ms: proc_cpu_ms(),
            peak_rss_kib: proc_peak_rss_kib(),
            block_time_ns: (computed > 0).then(|| block_hist.snapshot()),
        }),
    )?;

    Ok(ShardReport {
        index,
        of,
        pass,
        assigned: assigned.len(),
        skipped,
        computed,
        path,
    })
}

// --- Merging. -----------------------------------------------------------

/// Output of [`merge_dir`]: the reduced campaign plus provenance.
#[derive(Debug)]
pub struct MergeReport {
    /// The campaign the partials belong to (from the manifests).
    pub spec: CampaignSpec,
    /// The merged result — bit-identical to [`run_campaign`] on `spec`.
    pub result: CampaignResult,
    /// Partial files read.
    pub files: usize,
    /// Blocks merged.
    pub blocks: usize,
    /// Clean-exit footers found (per-shard wall/CPU/RSS provenance).
    pub footers: Vec<ShardFooter>,
    /// Per-block wall-time distribution pooled across every footer that
    /// recorded one; `None` when no footer did (pre-field partials or
    /// all-crashed shards). Execution provenance only — never part of
    /// the bit-identity surface.
    pub block_time_ns: Option<HistogramSnapshot>,
}

/// Reduce block records into a [`CampaignResult`] by replaying the
/// canonical fold: ascending global block order through the campaign's
/// cell fold — bit-identical to [`run_campaign`], reservoirs included.
/// Duplicate block indices keep the first occurrence; coverage must be
/// exact (every block `0..block_count` present exactly once after
/// dedup) or the merge refuses.
pub fn merge_records(
    spec: &CampaignSpec,
    records: impl IntoIterator<Item = BlockRecord>,
) -> Result<CampaignResult, String> {
    spec.validate()?;
    let total = spec.block_count();
    let mut by_block: BTreeMap<usize, BlockRecord> = BTreeMap::new();
    for record in records {
        if record.block >= total {
            return Err(format!(
                "block {} out of range (campaign has {total} blocks)",
                record.block
            ));
        }
        if record.runs.len() != spec.policies.len() {
            return Err(format!(
                "block {} has {} runs but the campaign has {} policies",
                record.block,
                record.runs.len(),
                spec.policies.len()
            ));
        }
        by_block.entry(record.block).or_insert(record);
    }
    if by_block.len() != total {
        let missing: Vec<usize> = (0..total).filter(|b| !by_block.contains_key(b)).collect();
        return Err(format!(
            "incomplete partials: {} of {total} blocks missing (first missing: {:?})",
            missing.len(),
            &missing[..missing.len().min(8)]
        ));
    }
    let mut fold = CellFold::new(spec);
    for (b, record) in &by_block {
        fold.push_block(*b, &record.runs);
    }
    Ok(CampaignResult {
        name: spec.name.clone(),
        total_runs: spec.total_runs(),
        cells: fold.into_cells(),
    })
}

/// Scan a partial directory and reduce it into the campaign result (see
/// [`merge_records`] for the bit-identity contract). The spec comes
/// from the embedded manifests, so the directory is self-contained.
pub fn merge_dir(dir: &Path) -> Result<MergeReport, String> {
    let scan = scan_dir(dir)?;
    let spec = scan
        .campaign()
        .ok_or_else(|| format!("{}: no shard manifests found", dir.display()))?
        .spec
        .clone();
    let blocks = scan.blocks.len();
    let result = merge_records(&spec, scan.blocks.into_values())?;
    let block_time_ns = pooled_block_time(&scan.footers);
    Ok(MergeReport {
        spec,
        result,
        files: scan.files,
        blocks,
        footers: scan.footers,
        block_time_ns,
    })
}

/// Pool the per-block timing of every footer that carries one.
#[must_use]
pub fn pooled_block_time(footers: &[ShardFooter]) -> Option<HistogramSnapshot> {
    let mut pooled: Option<HistogramSnapshot> = None;
    for snap in footers.iter().filter_map(|f| f.block_time_ns.as_ref()) {
        pooled
            .get_or_insert_with(HistogramSnapshot::default)
            .merge(snap);
    }
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::scenario::PolicySpec;
    use iosched_workload::WorkloadSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iosched-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_campaign() -> CampaignSpec {
        CampaignSpec {
            name: "shard-unit".into(),
            platforms: vec![crate::campaign::PlatformSpec::Preset("vesta".into())],
            workloads: vec![WorkloadSpec::Congestion { seed: 0 }],
            policies: vec![
                PolicySpec::parse("maxsyseff").unwrap(),
                PolicySpec::FairShare,
            ],
            seeds: vec![1, 2, 3, 4],
            config: None,
            threads: None,
        }
    }

    #[test]
    fn strided_plan_partitions_the_blocks() {
        for of in 1..=5 {
            let mut all: Vec<usize> = (0..of).flat_map(|i| shard_blocks(13, i, of)).collect();
            all.sort_unstable();
            assert_eq!(all, (0..13).collect::<Vec<_>>(), "of={of}");
        }
        assert_eq!(shard_blocks(10, 1, 4), vec![1, 5, 9]);
        assert!(shard_blocks(2, 3, 4).is_empty());
    }

    #[test]
    fn floats_roundtrip_losslessly_through_lines() {
        for x in [
            1.0,
            -0.0,
            0.1,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7ff8_dead_beef_0001), // payload NaN
            f64::MIN_POSITIVE,
        ] {
            let json = serde_json::to_string(&float_to_value(x)).unwrap();
            let value: serde::Value = serde_json::from_str(&json).unwrap();
            let back = float_from_value(&value).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} reparsed as {back}");
        }
    }

    #[test]
    fn spec_hash_tracks_spec_identity() {
        let spec = small_campaign();
        assert_eq!(spec_hash(&spec), spec_hash(&spec.clone()));
        assert_eq!(spec_hash(&spec).len(), 16);
        let mut other = spec.clone();
        other.seeds.push(99);
        assert_ne!(spec_hash(&spec), spec_hash(&other));
        // Execution knobs don't change campaign identity.
        let mut threaded = spec.clone();
        threaded.threads = Some(7);
        assert_eq!(spec_hash(&spec), spec_hash(&threaded));
    }

    #[test]
    fn shards_merge_bit_identical_to_single_process() {
        let spec = small_campaign();
        let runner = ScenarioRunner::with_threads(1);
        let dir = tmp_dir("merge");
        for i in 0..3 {
            let report = run_shard(&spec, i, 3, &dir, &runner, |_, _, _| {}).unwrap();
            assert_eq!(report.pass, 0);
            assert_eq!(report.skipped, 0);
            assert_eq!(report.computed + report.skipped, report.assigned);
        }
        let merged = merge_dir(&dir).unwrap();
        let single = run_campaign(&spec, &runner).unwrap();
        assert_eq!(merged.result, single);
        assert_eq!(merged.blocks, spec.block_count());
        assert_eq!(merged.footers.len(), 3);
        // Re-running every shard skips everything and still merges clean.
        for i in 0..3 {
            let report = run_shard(&spec, i, 3, &dir, &runner, |_, _, _| {}).unwrap();
            assert_eq!(report.pass, 1);
            assert_eq!(report.computed, 0);
            assert_eq!(report.skipped, report.assigned);
        }
        assert_eq!(merge_dir(&dir).unwrap().result, single);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn footers_stamp_per_block_timing_and_merge_pools_it() {
        let spec = small_campaign();
        let runner = ScenarioRunner::with_threads(1);
        let dir = tmp_dir("blocktime");
        for i in 0..2 {
            run_shard(&spec, i, 2, &dir, &runner, |_, _, _| {}).unwrap();
        }
        let merged = merge_dir(&dir).unwrap();
        for footer in &merged.footers {
            let snap = footer.block_time_ns.as_ref().expect("footer timing");
            assert_eq!(snap.count as usize, footer.blocks_done);
        }
        let pooled = merged.block_time_ns.expect("pooled timing");
        assert_eq!(pooled.count as usize, spec.block_count());
        assert!(pooled.quantile(0.5) >= pooled.min);
        // Footers recorded before the field existed still parse (the
        // checked-in example partials predate it).
        let legacy = r#"{"done":{"index":0,"pass":0,"blocks_done":2,"wall_ms":5,"cpu_ms":null,"peak_rss_kib":null}}"#;
        let line: ShardLine = serde_json::from_str(legacy).unwrap();
        let ShardLine::Done(footer) = line else {
            panic!("expected a footer");
        };
        assert_eq!(footer.block_time_ns, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_recomputes_only_missing_blocks_even_across_shard_counts() {
        let spec = small_campaign();
        let runner = ScenarioRunner::with_threads(1);
        let dir = tmp_dir("resume");
        // First incarnation: shard 0 of 2 finishes its half.
        run_shard(&spec, 0, 2, &dir, &runner, |_, _, _| {}).unwrap();
        // Resume with a different shard count: a single shard owning
        // everything skips exactly the finished half.
        let report = run_shard(&spec, 0, 1, &dir, &runner, |_, _, _| {}).unwrap();
        assert_eq!(report.assigned, spec.block_count());
        assert_eq!(report.skipped, shard_blocks(spec.block_count(), 0, 2).len());
        let merged = merge_dir(&dir).unwrap();
        assert_eq!(merged.result, run_campaign(&spec, &runner).unwrap());
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.duplicates, 0, "finished blocks were re-simulated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_trailing_lines_are_dropped_and_mid_file_corruption_is_not() {
        let spec = small_campaign();
        let runner = ScenarioRunner::with_threads(1);
        let dir = tmp_dir("torn");
        run_shard(&spec, 0, 1, &dir, &runner, |_, _, _| {}).unwrap();
        let path = partial_path(&dir, 0, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        // Drop the clean-exit footer and tear the last block line
        // mid-way, as a SIGKILL during the write would.
        let lines: Vec<&str> = text.trim_end().lines().collect();
        let body = &lines[..lines.len() - 1];
        let torn_last = {
            let mut v = body.to_vec();
            let last = v.last_mut().unwrap();
            *last = &last[..last.len() - 10];
            v.join("\n")
        };
        std::fs::write(&path, &torn_last).unwrap();
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.torn, 1);
        assert_eq!(scan.blocks.len(), spec.block_count() - 1);
        // The same damage mid-file is corruption, not a torn tail.
        let torn_mid = {
            let mut v = body.to_vec();
            let n = v.len();
            v[n - 2] = &v[n - 2][..v[n - 2].len() - 10];
            v.join("\n")
        };
        std::fs::write(&path, &torn_mid).unwrap();
        assert!(scan_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_a_torn_tail_before_appending() {
        let spec = small_campaign();
        let runner = ScenarioRunner::with_threads(1);
        let dir = tmp_dir("torn-resume");
        run_shard(&spec, 0, 1, &dir, &runner, |_, _, _| {}).unwrap();
        let path = partial_path(&dir, 0, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        // Keep the manifest and first block, tear the second block line
        // mid-way (no trailing newline) — a SIGKILL mid-write.
        let lines: Vec<&str> = text.trim_end().lines().collect();
        let torn = format!(
            "{}\n{}\n{}",
            lines[0],
            lines[1],
            &lines[2][..lines[2].len() - 10]
        );
        std::fs::write(&path, &torn).unwrap();
        // Resume: the torn fragment must be dropped, not glued to the
        // pass-1 manifest; the file scans clean afterwards.
        let report = run_shard(&spec, 0, 1, &dir, &runner, |_, _, _| {}).unwrap();
        assert_eq!(report.pass, 1);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.computed, spec.block_count() - 1);
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.torn, 0, "resume left a torn fragment behind");
        assert_eq!(scan.duplicates, 0);
        assert_eq!(scan.blocks.len(), spec.block_count());
        assert_eq!(
            merge_dir(&dir).unwrap().result,
            run_campaign(&spec, &runner).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_refuses_incomplete_or_foreign_partials() {
        let spec = small_campaign();
        let runner = ScenarioRunner::with_threads(1);
        let dir = tmp_dir("refuse");
        run_shard(&spec, 0, 2, &dir, &runner, |_, _, _| {}).unwrap();
        let err = merge_dir(&dir).unwrap_err();
        assert!(err.contains("incomplete"), "{err}");
        // A shard of a different campaign refuses to join the directory.
        let mut other = spec.clone();
        other.seeds.push(9);
        let err = run_shard(&other, 1, 2, &dir, &runner, |_, _, _| {}).unwrap_err();
        assert!(err.contains("different campaign"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_records_rejects_malformed_blocks() {
        let spec = small_campaign();
        let runner = ScenarioRunner::with_threads(1);
        let mut records =
            block_records(&spec, &runner, &shard_blocks(spec.block_count(), 0, 1), 0).unwrap();
        // Out-of-range index.
        let mut bad = records[0].clone();
        bad.block = spec.block_count();
        assert!(merge_records(&spec, records.iter().cloned().chain([bad])).is_err());
        // Wrong policy arity.
        records[0].runs.pop();
        assert!(merge_records(&spec, records).is_err());
    }
}
