//! Declarative description of one simulate-one-scenario unit of work.
//!
//! The paper's whole evaluation (Figs. 4–16, Tables 1–2) is thousands of
//! independent `simulate()` calls differing only in platform, application
//! mix, policy and engine configuration. A [`Scenario`] captures exactly
//! that tuple as data, so experiment code *describes* its sweep and hands
//! the batch to a [`crate::runner::ScenarioRunner`] instead of hand-rolling
//! a sequential loop per figure.
//!
//! The policy half of the tuple is the scenario-aware registry of
//! [`iosched_core::registry`]: [`PolicySpec`] is that crate's
//! [`PolicyFactory`] under its historical name. The policy-name grammar
//! of [`PolicySpec::parse`]/[`PolicySpec::name`] is also the serde
//! representation — a `PolicySpec` serializes as the plain string
//! `"priority-minmax-0.25"` or `"periodic:cong"` — so report keys, CLI
//! arguments and campaign JSON all share one vocabulary, and the same
//! roster covers the §3.1 online heuristics, the uncoordinated baselines
//! *and* the §3.2 offline periodic schedules (built per scenario by
//! [`PolicySpec::build`], which receives the platform and the
//! materialized applications).
//!
//! [`PolicyFactory`]: iosched_core::registry::PolicyFactory

use iosched_model::{AppSpec, Platform};
use iosched_sim::{simulate, simulate_open, SimConfig, SimError, SimOutcome};

pub use iosched_core::registry::{ControlFactory, PeriodicFactory, PolicyFactory as PolicySpec};

/// One unit of batch work: a platform, its applications, the policy to
/// drive them and the engine configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Free-form tag carried through to the results (figure key, case
    /// number, seed, …).
    pub label: String,
    /// The machine description.
    pub platform: Platform,
    /// The §2.1 applications.
    pub apps: Vec<AppSpec>,
    /// Which policy to run.
    pub policy: PolicySpec,
    /// Engine configuration.
    pub config: SimConfig,
    /// Open-system semantics: `apps` is a release-sorted arrival stream
    /// (admitted on release, per-application feasibility instead of the
    /// closed `Σβ ≤ N` budget). Set by
    /// [`crate::campaign::ScenarioSpec::build`] for
    /// `WorkloadSpec::Stream` workloads.
    pub open_system: bool,
}

impl Scenario {
    /// A scenario with the default engine configuration.
    pub fn new(
        label: impl Into<String>,
        platform: Platform,
        apps: Vec<AppSpec>,
        policy: PolicySpec,
    ) -> Self {
        Self {
            label: label.into(),
            platform,
            apps,
            policy,
            config: SimConfig::default(),
            open_system: false,
        }
    }

    /// Override the engine configuration.
    #[must_use]
    pub fn with_config(self, config: SimConfig) -> Self {
        Self { config, ..self }
    }

    /// Mark the application list as an open-system arrival stream.
    #[must_use]
    pub fn open(self, open_system: bool) -> Self {
        Self {
            open_system,
            ..self
        }
    }

    /// Execute this scenario to completion (the sequential unit the
    /// parallel runner fans out). The policy is instantiated *for this
    /// scenario* — an offline `periodic:*` policy builds its schedule
    /// from `self.apps` here, on the worker that runs it.
    pub fn run(&self) -> Result<SimOutcome, SimError> {
        let mut policy = self
            .policy
            .build(&self.platform, &self.apps)
            .map_err(SimError::InvalidScenario)?;
        if self.open_system {
            simulate_open(&self.platform, &self.apps, policy.as_mut(), &self.config)
        } else {
            simulate(&self.platform, &self.apps, policy.as_mut(), &self.config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_core::heuristics::{BasePolicy, PolicyKind};
    use iosched_model::{Bytes, Time};

    #[test]
    fn policy_spec_parses_the_full_roster() {
        for name in [
            "roundrobin",
            "mindilation",
            "maxsyseff",
            "minmax-0.5",
            "priority-minmax-0.25",
            "priority-maxsyseff",
            "fairshare",
            "fcfs",
            "periodic:cong",
            "periodic:throu",
            "periodic:cong:eps=0.02:tmax=1.5",
            "control:pi",
            "control:pi:kp=1:set=0.85",
        ] {
            assert!(
                PolicySpec::parse(name).is_ok(),
                "{name} should parse into the roster"
            );
        }
        assert!(PolicySpec::parse("lottery").is_err());
        assert!(PolicySpec::parse("minmax-1.5").is_err());
        assert!(PolicySpec::parse("priority-fairshare").is_err());
        assert!(PolicySpec::parse("priority-fcfs").is_err());
        assert!(PolicySpec::parse("periodic:best").is_err());
        assert!(PolicySpec::parse("control:pd").is_err());
        assert!(PolicySpec::parse("control:pi:set=2.0").is_err());
    }

    #[test]
    fn parse_name_serde_roundtrip_over_the_complete_roster() {
        // Every policy the evaluation touches: Fig. 6 roster + Tables 1–2
        // roster + the baselines + the §3.2 offline periodic forms.
        let mut roster = PolicySpec::complete_roster();
        roster.extend(
            PolicyKind::tables_roster()
                .into_iter()
                .map(PolicySpec::Kind),
        );
        roster.push(PolicySpec::Periodic(
            PeriodicFactory::new(iosched_core::periodic::InsertionHeuristic::Congestion)
                .with_epsilon(0.02)
                .with_max_factor(1.5),
        ));
        roster.push(PolicySpec::Control(
            ControlFactory::default().with_kp(1.0).with_setpoint(0.85),
        ));
        assert!(roster.len() >= 20);
        for spec in roster {
            // parse ↔ name.
            let name = spec.name();
            assert_eq!(
                PolicySpec::parse(&name).unwrap_or_else(|e| panic!("{name}: {e}")),
                spec,
                "parse(name()) diverged for {name}"
            );
            // name ↔ serde: the serialized form *is* the name string.
            let value = serde::Serialize::to_value(&spec);
            assert_eq!(value, serde::Value::Str(name.clone()));
            let json = serde_json::to_string(&spec).unwrap();
            assert_eq!(json, format!("\"{name}\""));
            let back: PolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "serde roundtrip diverged for {name}");
        }
    }

    #[test]
    fn serde_preserves_gammas_the_display_name_rounds() {
        let third = PolicySpec::Kind(PolicyKind::plain(BasePolicy::MinMax(1.0 / 3.0)));
        assert_eq!(third.name(), "minmax-0.33"); // display rounds…
        let json = serde_json::to_string(&third).unwrap();
        let back: PolicySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, third, "…but serde must not");
    }

    #[test]
    fn serde_rejects_invalid_policy_strings() {
        for bad in [
            "\"lottery\"",
            "\"minmax-1.5\"",
            "\"priority-fairshare\"",
            "\"periodic:cong:eps=-1\"",
            "7",
        ] {
            assert!(
                serde_json::from_str::<PolicySpec>(bad).is_err(),
                "{bad} should not deserialize"
            );
        }
    }

    #[test]
    fn full_roster_covers_heuristics_and_baselines() {
        let names: Vec<String> = PolicySpec::full_roster()
            .iter()
            .map(PolicySpec::name)
            .collect();
        assert_eq!(names.len(), 10);
        for needle in ["roundrobin", "priority-minmax-0.50", "fairshare", "fcfs"] {
            assert!(names.contains(&needle.to_string()), "missing {needle}");
        }
        // The offline branch extends, not replaces, the paper roster.
        let complete: Vec<String> = PolicySpec::complete_roster()
            .iter()
            .map(PolicySpec::name)
            .collect();
        assert!(complete.contains(&"periodic:cong".to_string()));
        assert!(complete.contains(&"periodic:throu".to_string()));
        assert!(complete.contains(&"control:pi".to_string()));
    }

    #[test]
    fn scenario_runs_like_a_direct_simulate_call() {
        let platform = Platform::vesta();
        let apps = vec![AppSpec::periodic(
            0,
            Time::ZERO,
            256,
            Time::secs(60.0),
            Bytes::gib(100.0),
            3,
        )];
        let scenario = Scenario::new(
            "unit",
            platform.clone(),
            apps.clone(),
            PolicySpec::parse("maxsyseff").unwrap(),
        );
        let out = scenario.run().unwrap();
        let direct = simulate(
            &platform,
            &apps,
            &mut iosched_core::heuristics::MaxSysEff,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(out.events, direct.events);
        assert_eq!(
            out.report.sys_efficiency.to_bits(),
            direct.report.sys_efficiency.to_bits()
        );
    }

    #[test]
    fn scenario_runs_an_offline_periodic_policy() {
        let platform = Platform::vesta();
        let apps = vec![
            AppSpec::periodic(0, Time::ZERO, 256, Time::secs(60.0), Bytes::gib(100.0), 3),
            AppSpec::periodic(1, Time::ZERO, 512, Time::secs(45.0), Bytes::gib(150.0), 3),
        ];
        let scenario = Scenario::new(
            "unit-periodic",
            platform,
            apps,
            PolicySpec::parse("periodic:cong").unwrap(),
        );
        let out = scenario.run().unwrap();
        assert!(out.report.sys_efficiency > 0.0);
        assert!(out.report.dilation >= 1.0);
    }
}
