//! Declarative description of one simulate-one-scenario unit of work.
//!
//! The paper's whole evaluation (Figs. 5–16, Tables 1–2) is thousands of
//! independent `simulate()` calls differing only in platform, application
//! mix, policy and engine configuration. A [`Scenario`] captures exactly
//! that tuple as data, so experiment code *describes* its sweep and hands
//! the batch to a [`crate::runner::ScenarioRunner`] instead of hand-rolling
//! a sequential loop per figure.

use iosched_baselines::{FairShare, Fcfs};
use iosched_core::heuristics::{BasePolicy, PolicyKind};
use iosched_core::policy::OnlinePolicy;
use iosched_model::{AppSpec, Platform};
use iosched_sim::{simulate, SimConfig, SimError, SimOutcome};

/// Buildable description of an online policy — everything the runner can
/// instantiate fresh inside a worker thread.
///
/// The policy-name grammar of [`PolicySpec::parse`]/[`PolicySpec::name`]
/// is also the serde representation: a `PolicySpec` serializes as the
/// plain string `"priority-minmax-0.25"`, so report keys, CLI arguments
/// and campaign JSON all share one vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// One of the paper's heuristics (MaxSysEff, MinMax-γ, …, ± Priority).
    Kind(PolicyKind),
    /// Uncoordinated max–min fair sharing (the native baseline's policy).
    FairShare,
    /// Strict first-come-first-served.
    Fcfs,
}

impl PolicySpec {
    /// Instantiate the policy.
    #[must_use]
    pub fn build(&self) -> Box<dyn OnlinePolicy> {
        match self {
            Self::Kind(kind) => kind.build(),
            Self::FairShare => Box::new(FairShare),
            Self::Fcfs => Box::new(Fcfs),
        }
    }

    /// The report name of the built policy.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Self::Kind(kind) => kind.name(),
            Self::FairShare => "fairshare".into(),
            Self::Fcfs => "fcfs".into(),
        }
    }

    /// Parse the names used throughout the reports and the CLI:
    /// `roundrobin`, `mindilation`, `maxsyseff`, `minmax-<γ>`,
    /// `fairshare`, `fcfs`, plus `priority-` variants of the heuristics.
    pub fn parse(name: &str) -> Result<Self, String> {
        let (prio, bare) = match name.strip_prefix("priority-") {
            Some(rest) => (true, rest),
            None => (false, name),
        };
        let kind = |base: BasePolicy| {
            Ok(Self::Kind(if prio {
                PolicyKind::with_priority(base)
            } else {
                PolicyKind::plain(base)
            }))
        };
        match bare {
            "roundrobin" => kind(BasePolicy::RoundRobin),
            "mindilation" => kind(BasePolicy::MinDilation),
            "maxsyseff" => kind(BasePolicy::MaxSysEff),
            "fairshare" if !prio => Ok(Self::FairShare),
            "fcfs" if !prio => Ok(Self::Fcfs),
            other => match other.strip_prefix("minmax-") {
                Some(gamma) => {
                    let g: f64 = gamma
                        .parse()
                        .map_err(|_| format!("bad MinMax threshold '{gamma}'"))?;
                    if !(0.0..=1.0).contains(&g) {
                        return Err(format!("MinMax threshold {g} outside [0, 1]"));
                    }
                    kind(BasePolicy::MinMax(g))
                }
                None => Err(format!(
                    "unknown policy '{name}' (try roundrobin, mindilation, maxsyseff, \
                     minmax-<γ>, fairshare, fcfs, or a priority- prefix)"
                )),
            },
        }
    }

    /// The serde string: [`PolicySpec::name`] when it parses back to this
    /// exact spec (true for the whole paper roster), else a full-precision
    /// spelling — `name()` rounds the MinMax γ to two decimals for
    /// display, which would silently corrupt e.g. `γ = 1/3` on a
    /// serialize → deserialize trip.
    #[must_use]
    pub fn serde_name(&self) -> String {
        let display = self.name();
        if Self::parse(&display).ok() == Some(*self) {
            return display;
        }
        match self {
            Self::Kind(kind) => {
                let BasePolicy::MinMax(g) = kind.base else {
                    unreachable!("only MinMax names are lossy");
                };
                let prefix = if kind.priority { "priority-" } else { "" };
                format!("{prefix}minmax-{g}")
            }
            _ => display,
        }
    }

    /// Every policy the paper's evaluation touches: the eight Fig. 6
    /// heuristics plus the two uncoordinated baselines. The roster behind
    /// the CLI's `--policy all`.
    #[must_use]
    pub fn full_roster() -> Vec<PolicySpec> {
        let mut roster: Vec<PolicySpec> = PolicyKind::fig6_roster()
            .into_iter()
            .map(PolicySpec::Kind)
            .collect();
        roster.push(PolicySpec::FairShare);
        roster.push(PolicySpec::Fcfs);
        roster
    }
}

impl serde::Serialize for PolicySpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.serde_name())
    }
}

impl serde::Deserialize for PolicySpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let name = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected policy name string"))?;
        Self::parse(name).map_err(serde::Error::custom)
    }
}

/// One unit of batch work: a platform, its applications, the policy to
/// drive them and the engine configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Free-form tag carried through to the results (figure key, case
    /// number, seed, …).
    pub label: String,
    /// The machine description.
    pub platform: Platform,
    /// The §2.1 applications.
    pub apps: Vec<AppSpec>,
    /// Which policy to run.
    pub policy: PolicySpec,
    /// Engine configuration.
    pub config: SimConfig,
}

impl Scenario {
    /// A scenario with the default engine configuration.
    pub fn new(
        label: impl Into<String>,
        platform: Platform,
        apps: Vec<AppSpec>,
        policy: PolicySpec,
    ) -> Self {
        Self {
            label: label.into(),
            platform,
            apps,
            policy,
            config: SimConfig::default(),
        }
    }

    /// Override the engine configuration.
    #[must_use]
    pub fn with_config(self, config: SimConfig) -> Self {
        Self { config, ..self }
    }

    /// Execute this scenario to completion (the sequential unit the
    /// parallel runner fans out).
    pub fn run(&self) -> Result<SimOutcome, SimError> {
        let mut policy = self.policy.build();
        simulate(&self.platform, &self.apps, policy.as_mut(), &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::{Bytes, Time};

    #[test]
    fn policy_spec_parses_the_full_roster() {
        for name in [
            "roundrobin",
            "mindilation",
            "maxsyseff",
            "minmax-0.5",
            "priority-minmax-0.25",
            "priority-maxsyseff",
            "fairshare",
            "fcfs",
        ] {
            let spec = PolicySpec::parse(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!spec.build().name().is_empty());
        }
        assert!(PolicySpec::parse("lottery").is_err());
        assert!(PolicySpec::parse("minmax-1.5").is_err());
        assert!(PolicySpec::parse("priority-fairshare").is_err());
        assert!(PolicySpec::parse("priority-fcfs").is_err());
    }

    #[test]
    fn parse_name_serde_roundtrip_over_the_full_roster() {
        // Every policy the evaluation touches: Fig. 6 roster + Tables 1–2
        // roster + the baselines.
        let mut roster = PolicySpec::full_roster();
        roster.extend(
            PolicyKind::tables_roster()
                .into_iter()
                .map(PolicySpec::Kind),
        );
        assert!(roster.len() >= 16);
        for spec in roster {
            // parse ↔ name.
            let name = spec.name();
            assert_eq!(
                PolicySpec::parse(&name).unwrap_or_else(|e| panic!("{name}: {e}")),
                spec,
                "parse(name()) diverged for {name}"
            );
            // name ↔ serde: the serialized form *is* the name string.
            let value = serde::Serialize::to_value(&spec);
            assert_eq!(value, serde::Value::Str(name.clone()));
            let json = serde_json::to_string(&spec).unwrap();
            assert_eq!(json, format!("\"{name}\""));
            let back: PolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "serde roundtrip diverged for {name}");
        }
    }

    #[test]
    fn serde_preserves_gammas_the_display_name_rounds() {
        let third = PolicySpec::Kind(PolicyKind::plain(BasePolicy::MinMax(1.0 / 3.0)));
        assert_eq!(third.name(), "minmax-0.33"); // display rounds…
        let json = serde_json::to_string(&third).unwrap();
        let back: PolicySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, third, "…but serde must not");
    }

    #[test]
    fn serde_rejects_invalid_policy_strings() {
        for bad in [
            "\"lottery\"",
            "\"minmax-1.5\"",
            "\"priority-fairshare\"",
            "7",
        ] {
            assert!(
                serde_json::from_str::<PolicySpec>(bad).is_err(),
                "{bad} should not deserialize"
            );
        }
    }

    #[test]
    fn full_roster_covers_heuristics_and_baselines() {
        let names: Vec<String> = PolicySpec::full_roster()
            .iter()
            .map(PolicySpec::name)
            .collect();
        assert_eq!(names.len(), 10);
        for needle in ["roundrobin", "priority-minmax-0.50", "fairshare", "fcfs"] {
            assert!(names.contains(&needle.to_string()), "missing {needle}");
        }
    }

    #[test]
    fn scenario_runs_like_a_direct_simulate_call() {
        let platform = Platform::vesta();
        let apps = vec![AppSpec::periodic(
            0,
            Time::ZERO,
            256,
            Time::secs(60.0),
            Bytes::gib(100.0),
            3,
        )];
        let scenario = Scenario::new(
            "unit",
            platform.clone(),
            apps.clone(),
            PolicySpec::parse("maxsyseff").unwrap(),
        );
        let out = scenario.run().unwrap();
        let direct = simulate(
            &platform,
            &apps,
            &mut iosched_core::heuristics::MaxSysEff,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(out.events, direct.events);
        assert_eq!(
            out.report.sys_efficiency.to_bits(),
            direct.report.sys_efficiency.to_bits()
        );
    }
}
