//! # iosched-bench
//!
//! Experiment runners regenerating **every table and figure** of the
//! paper's evaluation (§4 simulations, §5 Vesta experiments), plus the
//! ablations listed in DESIGN.md §6.
//!
//! Each experiment lives in [`experiments`] as a pure function returning
//! structured rows (so integration tests can assert the paper's *shape*
//! claims without parsing stdout) and has a thin binary under `src/bin/`
//! that prints the same rows the paper reports. `EXPERIMENTS.md` records
//! paper-vs-measured values for each.
//!
//! Run counts scale with the `REPRO_RUNS` environment variable (default
//! shown per experiment); the binaries also accept a single integer
//! argument overriding it.

pub mod campaign;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod shard;

pub use campaign::{
    fold_outcomes, platform_preset, run_campaign, run_campaign_observed, CampaignResult,
    CampaignSpec, CellSummary, PlatformSpec, RunMetrics, ScenarioSpec,
};
pub use runner::ScenarioRunner;
pub use scenario::{PolicySpec, Scenario};

/// Resolve the number of randomized repetitions: first CLI argument if
/// parseable, else `REPRO_RUNS`, else `default`.
#[must_use]
pub fn runs_from_env(default: usize) -> usize {
    if let Some(arg) = std::env::args().nth(1) {
        if let Ok(n) = arg.parse::<usize>() {
            return n.max(1);
        }
    }
    std::env::var("REPRO_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(default, |n: usize| n.max(1))
}
