//! Plain-text table formatting shared by every experiment binary.

/// Fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are stringified by the caller).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(row);
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Format a fraction as a percentage with two decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Format a dilation (or ∞).
#[must_use]
pub fn dil(x: f64) -> String {
    if x.is_infinite() {
        "inf".into()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["policy", "syseff"]);
        t.row(["maxsyseff", "85.35"]);
        t.row(["mindilation-longname", "70.45"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("policy"));
        assert!(lines[2].ends_with("85.35"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.8535), "85.35");
        assert_eq!(dil(2.456), "2.46");
        assert_eq!(dil(f64::INFINITY), "inf");
    }
}
