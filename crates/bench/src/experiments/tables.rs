//! **Tables 1–2 and Figures 8–13** — the congested-moment comparison on
//! Intrepid (56 cases) and Mira (11 cases).
//!
//! For every congested moment we run:
//!
//! * the ten heuristics of Tables 1–2 (MaxSysEff, MinMax-{0.25,0.5,0.75},
//!   MinDilation, each ± Priority) **without** burst buffers,
//! * the native scheduler (uncoordinated fair share **with** burst
//!   buffers) — the "Intrepid"/"Mira" rows,
//! * and record the congestion-free **upper limit**.
//!
//! Figures 8–13 are the per-case series of the same data; the tables are
//! its averages.

use crate::runner::ScenarioRunner;
use crate::scenario::{PolicySpec, Scenario};
use iosched_baselines::native_platform;
use iosched_core::heuristics::PolicyKind;
use iosched_model::{stats, Platform};
use iosched_sim::SimConfig;
use iosched_workload::congestion::{congested_moment, intrepid_cases, mira_cases};

/// Which machine a run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Machine {
    /// 56 congested moments, Table 1 / Figs. 8–10.
    Intrepid,
    /// 11 congested moments, Table 2 / Figs. 11–13.
    Mira,
}

impl Machine {
    /// Base platform.
    #[must_use]
    pub fn platform(&self) -> Platform {
        match self {
            Self::Intrepid => Platform::intrepid(),
            Self::Mira => Platform::mira(),
        }
    }

    /// Case seeds.
    #[must_use]
    pub fn cases(&self) -> Vec<u64> {
        match self {
            Self::Intrepid => intrepid_cases(),
            Self::Mira => mira_cases(),
        }
    }

    /// Row label of the native scheduler in the tables.
    #[must_use]
    pub fn native_label(&self) -> &'static str {
        match self {
            Self::Intrepid => "intrepid",
            Self::Mira => "mira",
        }
    }
}

/// One (case, scheduler) observation.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case index (1-based, the paper's x-axis).
    pub case: usize,
    /// Scheduler name ("maxsyseff", …, "intrepid"/"mira", "upper-limit").
    pub scheduler: String,
    /// SysEfficiency (fraction).
    pub sys_efficiency: f64,
    /// Dilation (∞ possible).
    pub dilation: f64,
}

/// Averages over all cases for one scheduler (a table row).
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Scheduler name.
    pub scheduler: String,
    /// Mean Dilation (the tables' "minimize" column).
    pub dilation: f64,
    /// Mean SysEfficiency percentage (the tables' "maximize" column).
    pub sys_efficiency_pct: f64,
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct TablesResult {
    /// Per-case series (Figures 8–13).
    pub cases: Vec<CaseResult>,
    /// Averages (Tables 1–2), heuristics first, then native, then the
    /// upper limit.
    pub rows: Vec<TableRow>,
}

/// Run every scheduler over `limit` cases of `machine` (pass `usize::MAX`
/// for the paper's full case count).
///
/// The whole `(case × scheduler)` grid is described as one flat batch and
/// executed in parallel by the [`ScenarioRunner`]; the per-case series
/// and table averages are assembled from the input-ordered results.
#[must_use]
pub fn run(machine: Machine, limit: usize) -> TablesResult {
    let plain = machine.platform();
    let native = native_platform(plain.clone());
    let kinds = PolicyKind::tables_roster();
    let seeds: Vec<u64> = machine.cases().into_iter().take(limit).collect();

    // Per case: the heuristics run on the *penalized* platform without
    // burst buffers (they serialize I/O, so the locality penalty rarely
    // bites them, but it is the same disk model the native run sees),
    // followed by the native scheduler — fair sharing *with* the buffer.
    let mut scenarios = Vec::with_capacity(seeds.len() * (kinds.len() + 1));
    for (idx, &seed) in seeds.iter().enumerate() {
        let apps = congested_moment(&native, seed);
        for kind in &kinds {
            scenarios.push(Scenario::new(
                format!("{}/case{}/{}", machine.native_label(), idx + 1, kind.name()),
                native.clone(),
                apps.clone(),
                PolicySpec::Kind(*kind),
            ));
        }
        scenarios.push(
            Scenario::new(
                format!("{}/case{}/native", machine.native_label(), idx + 1),
                native.clone(),
                apps,
                PolicySpec::FairShare,
            )
            .with_config(SimConfig::with_burst_buffer()),
        );
    }
    let results = ScenarioRunner::new().run_all(&scenarios);

    let mut cases = Vec::new();
    let per_case = kinds.len() + 1;
    for (idx, chunk) in results.chunks(per_case).enumerate() {
        let case = idx + 1;
        for (kind, result) in kinds.iter().zip(chunk) {
            let out = result.as_ref().expect("congested moments are valid");
            cases.push(CaseResult {
                case,
                scheduler: kind.name(),
                sys_efficiency: out.report.sys_efficiency,
                dilation: out.report.dilation,
            });
        }
        let nat = chunk[kinds.len()].as_ref().expect("native run");
        cases.push(CaseResult {
            case,
            scheduler: machine.native_label().into(),
            sys_efficiency: nat.report.sys_efficiency,
            dilation: nat.report.dilation,
        });
        cases.push(CaseResult {
            case,
            scheduler: "upper-limit".into(),
            sys_efficiency: nat.report.upper_limit,
            dilation: 1.0,
        });
    }

    let mut rows = Vec::new();
    let mut schedulers: Vec<String> = kinds.iter().map(PolicyKind::name).collect();
    schedulers.push(machine.native_label().into());
    schedulers.push("upper-limit".into());
    for name in schedulers {
        let effs: Vec<f64> = cases
            .iter()
            .filter(|c| c.scheduler == name)
            .map(|c| c.sys_efficiency)
            .collect();
        let dils: Vec<f64> = cases
            .iter()
            .filter(|c| c.scheduler == name)
            .map(|c| c.dilation)
            .collect();
        rows.push(TableRow {
            scheduler: name,
            dilation: stats::mean(&dils),
            sys_efficiency_pct: stats::mean(&effs) * 100.0,
        });
    }
    TablesResult { cases, rows }
}

/// Find a table row by scheduler name.
#[must_use]
pub fn row<'a>(result: &'a TablesResult, scheduler: &str) -> Option<&'a TableRow> {
    result.rows.iter().find(|r| r.scheduler == scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_claims_hold_on_a_case_subset() {
        let r = run(Machine::Intrepid, 6);
        let max = row(&r, "maxsyseff").unwrap();
        let min = row(&r, "mindilation").unwrap();
        let native = row(&r, "intrepid").unwrap();
        let upper = row(&r, "upper-limit").unwrap();

        // Table 1 ordering: MaxSysEff tops SysEfficiency, MinDilation
        // bottoms Dilation; everything sits below the upper limit.
        assert!(max.sys_efficiency_pct >= min.sys_efficiency_pct - 0.5);
        assert!(min.dilation <= max.dilation + 0.05);
        assert!(max.sys_efficiency_pct <= upper.sys_efficiency_pct + 1e-6);

        // Headline: heuristics without BB beat the native scheduler with
        // BB on both objectives (on average).
        assert!(
            max.sys_efficiency_pct >= native.sys_efficiency_pct - 1.0,
            "maxsyseff {:.1} vs native {:.1}",
            max.sys_efficiency_pct,
            native.sys_efficiency_pct
        );
        assert!(
            min.dilation <= native.dilation + 0.1,
            "mindilation {:.2} vs native {:.2}",
            min.dilation,
            native.dilation
        );
    }

    #[test]
    fn minmax_interpolates_between_the_extremes() {
        let r = run(Machine::Mira, 4);
        let eff = |name: &str| row(&r, name).unwrap().sys_efficiency_pct;
        let dil = |name: &str| row(&r, name).unwrap().dilation;
        // γ: 0 → MaxSysEff … 1 → MinDilation; monotone within noise.
        assert!(eff("maxsyseff") >= eff("minmax-0.75") - 1.5);
        assert!(eff("minmax-0.25") >= eff("minmax-0.75") - 1.5);
        assert!(dil("mindilation") <= dil("minmax-0.25") + 0.3);
        assert!(dil("minmax-0.75") <= dil("minmax-0.25") + 0.3);
    }
}
