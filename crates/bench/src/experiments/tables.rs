//! **Tables 1–2 and Figures 8–13** — the congested-moment comparison on
//! Intrepid (56 cases) and Mira (11 cases).
//!
//! For every congested moment we run:
//!
//! * the ten heuristics of Tables 1–2 (MaxSysEff, MinMax-{0.25,0.5,0.75},
//!   MinDilation, each ± Priority) **without** burst buffers,
//! * the native scheduler (uncoordinated fair share **with** burst
//!   buffers) — the "Intrepid"/"Mira" rows,
//! * and record the congestion-free **upper limit**.
//!
//! Figures 8–13 are the per-case series of the same data; the tables are
//! its averages.
//!
//! The sweep is expressed as two [`CampaignSpec`]s over the same
//! congested-moment seed axis — the heuristics grid and the native
//! (fair-share + burst-buffer) baseline, whose engine configuration
//! differs — expanded lazily and streamed through the campaign layer's
//! [`fold_outcomes`]: each case's apps are generated once and shared
//! across all ten heuristics, and only the per-run objective triples are
//! retained (they *are* the figure series), never the simulation
//! outcomes.

use crate::campaign::{fold_outcomes, CampaignSpec, PlatformSpec};
use crate::runner::ScenarioRunner;
use crate::scenario::PolicySpec;
use iosched_core::heuristics::PolicyKind;
use iosched_model::{stats, Platform};
use iosched_sim::SimConfig;
use iosched_workload::congestion::{intrepid_cases, mira_cases};
use iosched_workload::WorkloadSpec;

/// Which machine a run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Machine {
    /// 56 congested moments, Table 1 / Figs. 8–10.
    Intrepid,
    /// 11 congested moments, Table 2 / Figs. 11–13.
    Mira,
}

impl Machine {
    /// Base platform.
    #[must_use]
    pub fn platform(&self) -> Platform {
        match self {
            Self::Intrepid => Platform::intrepid(),
            Self::Mira => Platform::mira(),
        }
    }

    /// Case seeds.
    #[must_use]
    pub fn cases(&self) -> Vec<u64> {
        match self {
            Self::Intrepid => intrepid_cases(),
            Self::Mira => mira_cases(),
        }
    }

    /// Row label of the native scheduler in the tables (also the
    /// platform-preset name).
    #[must_use]
    pub fn native_label(&self) -> &'static str {
        match self {
            Self::Intrepid => "intrepid",
            Self::Mira => "mira",
        }
    }
}

/// One (case, scheduler) observation.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case index (1-based, the paper's x-axis).
    pub case: usize,
    /// Scheduler name ("maxsyseff", …, "intrepid"/"mira", "upper-limit").
    pub scheduler: String,
    /// SysEfficiency (fraction).
    pub sys_efficiency: f64,
    /// Dilation (∞ possible).
    pub dilation: f64,
}

/// Averages over all cases for one scheduler (a table row).
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Scheduler name.
    pub scheduler: String,
    /// Mean Dilation (the tables' "minimize" column).
    pub dilation: f64,
    /// Mean SysEfficiency percentage (the tables' "maximize" column).
    pub sys_efficiency_pct: f64,
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct TablesResult {
    /// Per-case series (Figures 8–13).
    pub cases: Vec<CaseResult>,
    /// Averages (Tables 1–2), heuristics first, then native, then the
    /// upper limit.
    pub rows: Vec<TableRow>,
}

/// The two campaigns of one machine's comparison over `limit` cases:
/// `(heuristics grid, native baseline)`. The heuristics run on the
/// *penalized* platform without burst buffers (they serialize I/O, so the
/// locality penalty rarely bites them, but it is the same disk model the
/// native run sees); the native baseline is fair sharing *with* the
/// buffer.
#[must_use]
pub fn campaigns(machine: Machine, limit: usize) -> (CampaignSpec, CampaignSpec) {
    let label = machine.native_label();
    let seeds: Vec<u64> = machine.cases().into_iter().take(limit).collect();
    let heuristics = CampaignSpec {
        name: format!("tables-{label}"),
        platforms: vec![PlatformSpec::Native(label.into())],
        workloads: vec![WorkloadSpec::Congestion { seed: 0 }],
        policies: PolicyKind::tables_roster()
            .into_iter()
            .map(PolicySpec::Kind)
            .collect(),
        seeds: seeds.clone(),
        config: None,
        threads: None,
    };
    let native = CampaignSpec {
        name: format!("tables-{label}-native"),
        policies: vec![PolicySpec::FairShare],
        config: Some(SimConfig::with_burst_buffer()),
        seeds,
        ..heuristics.clone()
    };
    (heuristics, native)
}

/// Per-run objective triples `(sys_efficiency, dilation, upper_limit)` of
/// one campaign, indexed by run, streamed through the campaign layer's
/// seed-block executor — each case's congested moment is generated once
/// and shared across every policy, and the outcomes themselves are
/// dropped as soon as their triple is folded in.
fn objective_series(spec: &CampaignSpec, runner: &ScenarioRunner) -> Vec<(f64, f64, f64)> {
    fold_outcomes(
        spec,
        runner,
        vec![(0.0, 0.0, 0.0); spec.total_runs()],
        |mut grid, idx, out| {
            grid[idx] = (
                out.report.sys_efficiency,
                out.report.dilation,
                out.report.upper_limit,
            );
            grid
        },
    )
    .expect("congested moments simulate cleanly")
}

/// Run every scheduler over `limit` cases of `machine` (pass `usize::MAX`
/// for the paper's full case count).
#[must_use]
pub fn run(machine: Machine, limit: usize) -> TablesResult {
    let (heuristics, native) = campaigns(machine, limit);
    let kinds = PolicyKind::tables_roster();
    let n_cases = heuristics.runs_per_cell();
    let runner = ScenarioRunner::new();

    // Campaign run order is cell-major (policy), seed-minor (case):
    // policy `p`'s observation for case `c` sits at `p * n_cases + c`.
    let heuristic_grid = objective_series(&heuristics, &runner);
    let native_series = objective_series(&native, &runner);

    let mut cases = Vec::with_capacity(n_cases * (kinds.len() + 2));
    for c in 0..n_cases {
        let case = c + 1;
        for (p, kind) in kinds.iter().enumerate() {
            let (eff, dil, _) = heuristic_grid[p * n_cases + c];
            cases.push(CaseResult {
                case,
                scheduler: kind.name(),
                sys_efficiency: eff,
                dilation: dil,
            });
        }
        let (eff, dil, upper) = native_series[c];
        cases.push(CaseResult {
            case,
            scheduler: machine.native_label().into(),
            sys_efficiency: eff,
            dilation: dil,
        });
        cases.push(CaseResult {
            case,
            scheduler: "upper-limit".into(),
            sys_efficiency: upper,
            dilation: 1.0,
        });
    }

    let mut rows = Vec::new();
    let mut schedulers: Vec<String> = kinds.iter().map(PolicyKind::name).collect();
    schedulers.push(machine.native_label().into());
    schedulers.push("upper-limit".into());
    for name in schedulers {
        let effs: Vec<f64> = cases
            .iter()
            .filter(|c| c.scheduler == name)
            .map(|c| c.sys_efficiency)
            .collect();
        let dils: Vec<f64> = cases
            .iter()
            .filter(|c| c.scheduler == name)
            .map(|c| c.dilation)
            .collect();
        rows.push(TableRow {
            scheduler: name,
            dilation: stats::mean(&dils),
            sys_efficiency_pct: stats::mean(&effs) * 100.0,
        });
    }
    TablesResult { cases, rows }
}

/// Find a table row by scheduler name.
#[must_use]
pub fn row<'a>(result: &'a TablesResult, scheduler: &str) -> Option<&'a TableRow> {
    result.rows.iter().find(|r| r.scheduler == scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_claims_hold_on_a_case_subset() {
        let r = run(Machine::Intrepid, 6);
        let max = row(&r, "maxsyseff").unwrap();
        let min = row(&r, "mindilation").unwrap();
        let native = row(&r, "intrepid").unwrap();
        let upper = row(&r, "upper-limit").unwrap();

        // Table 1 ordering: MaxSysEff tops SysEfficiency, MinDilation
        // bottoms Dilation; everything sits below the upper limit.
        assert!(max.sys_efficiency_pct >= min.sys_efficiency_pct - 0.5);
        assert!(min.dilation <= max.dilation + 0.05);
        assert!(max.sys_efficiency_pct <= upper.sys_efficiency_pct + 1e-6);

        // Headline: heuristics without BB beat the native scheduler with
        // BB on both objectives (on average).
        assert!(
            max.sys_efficiency_pct >= native.sys_efficiency_pct - 1.0,
            "maxsyseff {:.1} vs native {:.1}",
            max.sys_efficiency_pct,
            native.sys_efficiency_pct
        );
        assert!(
            min.dilation <= native.dilation + 0.1,
            "mindilation {:.2} vs native {:.2}",
            min.dilation,
            native.dilation
        );
    }

    #[test]
    fn minmax_interpolates_between_the_extremes() {
        let r = run(Machine::Mira, 4);
        let eff = |name: &str| row(&r, name).unwrap().sys_efficiency_pct;
        let dil = |name: &str| row(&r, name).unwrap().dilation;
        // γ: 0 → MaxSysEff … 1 → MinDilation; monotone within noise.
        assert!(eff("maxsyseff") >= eff("minmax-0.75") - 1.5);
        assert!(eff("minmax-0.25") >= eff("minmax-0.75") - 1.5);
        assert!(dil("mindilation") <= dil("minmax-0.25") + 0.3);
        assert!(dil("minmax-0.75") <= dil("minmax-0.25") + 0.3);
    }

    #[test]
    fn campaign_pair_shares_the_seed_axis() {
        let (heuristics, native) = campaigns(Machine::Mira, usize::MAX);
        heuristics.validate().unwrap();
        native.validate().unwrap();
        assert_eq!(heuristics.seeds, native.seeds);
        assert_eq!(heuristics.seeds.len(), 11);
        assert_eq!(heuristics.policies.len(), 10);
        assert_eq!(native.policies.len(), 1);
        assert!(native.config.as_ref().unwrap().use_burst_buffer);
        assert!(heuristics.config.is_none());
    }
}
