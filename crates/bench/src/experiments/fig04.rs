//! **Fig. 4** — "A periodic schedule, and the detail of one of its regular
//! periods", with the paper's exact application parameters:
//!
//! ```text
//! (w=3.5,  vol=240, n_per=3)   (w=27.5, vol=288, n_per=3)
//! (w=90,   vol=350, n_per=1)   (w=75,   vol=524, n_per=1)
//! ```
//!
//! The figure's units are abstract; we use seconds and "volume units" on
//! a platform with `B = 100 units/s` where every application can saturate
//! the PFS alone, then run the §3.2.3 machinery (Congestion insertion +
//! period search) and report what it schedules.

use iosched_core::periodic::{
    InsertionHeuristic, PeriodSearch, PeriodicAppSpec, PeriodicObjective, PeriodicSchedule,
    SteadyStateReport,
};
use iosched_model::{Bw, Bytes, Platform, Time};

/// The constructed schedule and its steady state.
#[derive(Debug, Clone)]
pub struct Fig04Result {
    /// The best schedule found.
    pub schedule: PeriodicSchedule,
    /// Steady-state objectives.
    pub report: SteadyStateReport,
    /// Instances per period, by application (paper: 3, 3, 1, 1).
    pub n_per: Vec<usize>,
}

/// The paper's four applications.
#[must_use]
pub fn paper_apps() -> Vec<PeriodicAppSpec> {
    vec![
        PeriodicAppSpec::new(0, 100, Time::secs(3.5), Bytes::new(240.0)),
        PeriodicAppSpec::new(1, 100, Time::secs(27.5), Bytes::new(288.0)),
        PeriodicAppSpec::new(2, 100, Time::secs(90.0), Bytes::new(350.0)),
        PeriodicAppSpec::new(3, 100, Time::secs(75.0), Bytes::new(524.0)),
    ]
}

/// The abstract-unit platform of the figure.
#[must_use]
pub fn paper_platform() -> Platform {
    Platform::new("fig4", 400, Bw::new(1.0), Bw::new(100.0))
}

/// Search for the best Dilation-oriented periodic schedule.
#[must_use]
pub fn run() -> Fig04Result {
    let platform = paper_platform();
    let apps = paper_apps();
    // Stay near T₀ as the figure does (one period holding a handful of
    // instances), rather than letting the search stretch toward Tmax.
    let result = PeriodSearch::new(PeriodicObjective::Dilation)
        .with_epsilon(0.02)
        .with_max_factor(1.5)
        .run(&platform, &apps, InsertionHeuristic::Congestion)
        .expect("non-empty application set");
    let n_per = apps.iter().map(|a| result.schedule.n_per(a.id)).collect();
    Fig04Result {
        schedule: result.schedule,
        report: result.report,
        n_per,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_valid_and_shaped_like_the_figure() {
        let r = run();
        r.schedule.validate(&paper_platform()).unwrap();
        // Everyone is scheduled.
        assert!(r.n_per.iter().all(|&n| n >= 1), "n_per {:?}", r.n_per);
        // The short application packs more instances per period than the
        // long ones (the figure shows 3,3,1,1).
        assert!(r.n_per[0] >= r.n_per[2], "n_per {:?}", r.n_per);
        assert!(r.report.dilation.is_finite());
    }
}
