//! **Fig. 4** — "A periodic schedule, and the detail of one of its regular
//! periods", with the paper's exact application parameters:
//!
//! ```text
//! (w=3.5,  vol=240, n_per=3)   (w=27.5, vol=288, n_per=3)
//! (w=90,   vol=350, n_per=1)   (w=75,   vol=524, n_per=1)
//! ```
//!
//! The figure's units are abstract; we use seconds and "volume units" on
//! a platform with `B = 100 units/s` where every application can saturate
//! the PFS alone.
//!
//! Since the scenario-aware policy registry, the whole experiment is one
//! declarative [`CampaignSpec`]: the §3.2.3 machinery (Congestion
//! insertion + `(1+ε)` period search) is the campaign's *policy* —
//! `periodic:cong:eps=0.02:tmax=1.5` — and the workload is the paper's
//! four applications replayed for [`REPLAY_PERIODS`] regular periods.
//! The campaign worker rebuilds the same schedule the analytic path
//! produces (the search is a deterministic function of the apps'
//! `(β, w, vol)` profiles, which the replay workload preserves) and
//! executes it in the fluid engine; [`run`] reports both views. The
//! identical sweep runs from JSON via `iosched campaign`
//! (`examples/campaign_fig4.json` is exactly
//! [`campaign`]`(REPLAY_PERIODS)`).

use crate::campaign::{run_campaign, CampaignSpec, CellSummary, PlatformSpec};
use crate::runner::ScenarioRunner;
use crate::scenario::{PeriodicFactory, PolicySpec};
use iosched_core::periodic::{
    InsertionHeuristic, PeriodicAppSpec, PeriodicSchedule, SteadyStateReport,
};
use iosched_model::{AppSpec, Bw, Bytes, Platform, Time};
use iosched_sim::replay_apps;
use iosched_workload::WorkloadSpec;

/// Regular periods the campaign replays through the engine. Enough for
/// the finite-horizon objectives to sit within a fraction of a percent
/// of steady state while the sweep stays instant.
pub const REPLAY_PERIODS: usize = 4;

/// The constructed schedule, its steady state, and the engine replay.
#[derive(Debug, Clone)]
pub struct Fig04Result {
    /// The best schedule found.
    pub schedule: PeriodicSchedule,
    /// Steady-state objectives (the figure's analytic view).
    pub report: SteadyStateReport,
    /// Instances per period, by application (paper: 3, 3, 1, 1).
    pub n_per: Vec<usize>,
    /// The same schedule executed in the fluid simulator over
    /// [`REPLAY_PERIODS`] periods, via the campaign.
    pub simulated: CellSummary,
}

/// The paper's four applications.
#[must_use]
pub fn paper_apps() -> Vec<PeriodicAppSpec> {
    vec![
        PeriodicAppSpec::new(0, 100, Time::secs(3.5), Bytes::new(240.0)),
        PeriodicAppSpec::new(1, 100, Time::secs(27.5), Bytes::new(288.0)),
        PeriodicAppSpec::new(2, 100, Time::secs(90.0), Bytes::new(350.0)),
        PeriodicAppSpec::new(3, 100, Time::secs(75.0), Bytes::new(524.0)),
    ]
}

/// The abstract-unit platform of the figure.
#[must_use]
pub fn paper_platform() -> Platform {
    Platform::new("fig4", 400, Bw::new(1.0), Bw::new(100.0))
}

/// The offline policy of the figure: Congestion insertion under the
/// Dilation search, staying near T₀ as the figure does (one period
/// holding a handful of instances), rather than letting the search
/// stretch toward Tmax.
#[must_use]
pub fn periodic_factory() -> PeriodicFactory {
    PeriodicFactory::new(InsertionHeuristic::Congestion)
        .with_epsilon(0.02)
        .with_max_factor(1.5)
}

/// The paper applications as one-instance [`AppSpec`]s (the shape the
/// registry's scenario-aware build consumes).
#[must_use]
pub fn paper_app_specs() -> Vec<AppSpec> {
    paper_apps()
        .iter()
        .map(|a| AppSpec::periodic(a.id.0, Time::ZERO, a.procs, a.work, a.vol, 1))
        .collect()
}

/// The best Dilation-oriented periodic schedule for the paper apps —
/// built through the registry factory, so it is *by construction* the
/// schedule the campaign's policy rebuilds on its worker.
#[must_use]
pub fn schedule() -> PeriodicSchedule {
    periodic_factory()
        .build_schedule(&paper_platform(), &paper_app_specs())
        .expect("the paper's four applications schedule cleanly")
}

/// The Fig. 4 experiment as data: the paper platform × the schedule's
/// replay workload × the `periodic:cong:eps=0.02:tmax=1.5` policy.
#[must_use]
pub fn campaign(periods: usize) -> CampaignSpec {
    campaign_for(&schedule(), periods)
}

/// [`campaign`] over an already-built schedule (so callers that need the
/// schedule anyway, like [`run`], search for it only once).
fn campaign_for(schedule: &PeriodicSchedule, periods: usize) -> CampaignSpec {
    CampaignSpec {
        name: "fig04".into(),
        platforms: vec![PlatformSpec::Custom(paper_platform())],
        workloads: vec![WorkloadSpec::Explicit(replay_apps(schedule, periods))],
        policies: vec![PolicySpec::Periodic(periodic_factory())],
        seeds: vec![],
        config: None,
        threads: None,
    }
}

/// Search for the schedule and execute it through the campaign runner.
#[must_use]
pub fn run() -> Fig04Result {
    let platform = paper_platform();
    let schedule = schedule();
    let report = schedule.steady_state(&platform);
    let n_per = paper_apps().iter().map(|a| schedule.n_per(a.id)).collect();
    let result = run_campaign(
        &campaign_for(&schedule, REPLAY_PERIODS),
        &ScenarioRunner::new(),
    )
    .expect("fig04 campaign is valid");
    let simulated = result
        .cells
        .into_iter()
        .next()
        .expect("one policy, one workload: one cell");
    Fig04Result {
        schedule,
        report,
        n_per,
        simulated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_sim::unroll_report;

    #[test]
    fn schedule_is_valid_and_shaped_like_the_figure() {
        let r = run();
        r.schedule.validate(&paper_platform()).unwrap();
        // Everyone is scheduled.
        assert!(r.n_per.iter().all(|&n| n >= 1), "n_per {:?}", r.n_per);
        // The short application packs more instances per period than the
        // long ones (the figure shows 3,3,1,1).
        assert!(r.n_per[0] >= r.n_per[2], "n_per {:?}", r.n_per);
        assert!(r.report.dilation.is_finite());
    }

    #[test]
    fn campaign_replay_matches_the_analytic_unrolling() {
        let r = run();
        assert_eq!(r.simulated.runs, 1);
        assert_eq!(r.simulated.policy, "periodic:cong:eps=0.02:tmax=1.5");
        let expected = unroll_report(&r.schedule, &paper_platform(), REPLAY_PERIODS);
        assert!(
            (r.simulated.sys_efficiency.mean - expected.sys_efficiency).abs() < 1e-6,
            "engine replay {} vs analytic unrolling {}",
            r.simulated.sys_efficiency.mean,
            expected.sys_efficiency
        );
        assert!((r.simulated.dilation.mean - expected.dilation).abs() < 1e-6);
        // …and the finite horizon sits close to the steady state.
        assert!((r.simulated.sys_efficiency.mean - r.report.sys_efficiency).abs() < 0.05);
    }

    #[test]
    fn campaign_shape_is_one_offline_cell() {
        let spec = campaign(REPLAY_PERIODS);
        spec.validate().unwrap();
        assert_eq!(spec.cell_count(), 1);
        assert_eq!(spec.total_runs(), 1);
        assert!(spec.policies[0].is_offline());
    }
}
