//! **Fig. 7** — "Impact of the sensibility of the computations over
//! SysEfficiency and Dilation of all heuristics".
//!
//! §4.3: applications are made non-periodic by drawing each instance's
//! work from `U[w, w(1+x)]` for x = 0…30 %; the paper finds "this
//! parameter has almost no impact on the results" because the online
//! heuristics only use information available at each event.
//!
//! The sweep is one [`CampaignSpec`]: seven [`WorkloadSpec::Perturbed`]
//! templates (one per sensibility level, each wrapping the Fig. 6(b)
//! mix) × three heuristics × a seed axis, aggregated per cell by the
//! streaming [`run_campaign`].

use crate::campaign::{run_campaign, CampaignSpec, PlatformSpec};
use crate::runner::ScenarioRunner;
use crate::scenario::PolicySpec;
use iosched_core::heuristics::{BasePolicy, PolicyKind};
use iosched_workload::{MixConfig, WorkloadSpec};

/// Mean objectives at one sensibility level for one policy.
#[derive(Debug, Clone)]
pub struct Fig07Row {
    /// Sensibility percentage (0–30).
    pub sensibility_pct: u32,
    /// Policy name.
    pub policy: String,
    /// Mean SysEfficiency.
    pub sys_efficiency: f64,
    /// Mean Dilation.
    pub dilation: f64,
}

/// The paper's x-axis.
#[must_use]
pub fn sensibility_levels() -> Vec<u32> {
    vec![0, 5, 10, 15, 20, 25, 30]
}

/// The three heuristics of the figure (no Priority).
#[must_use]
pub fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::plain(BasePolicy::MinDilation),
        PolicyKind::plain(BasePolicy::MaxSysEff),
        PolicyKind::plain(BasePolicy::MinMax(0.5)),
    ]
}

/// The Fig. 7 sweep as data: one perturbed-mix template per sensibility
/// level (the campaign seed axis drives both the mix and, salted, the
/// perturbation stream — see [`iosched_workload::spec::PERTURB_SEED_SALT`]).
#[must_use]
pub fn campaign(runs: usize) -> CampaignSpec {
    CampaignSpec {
        name: "fig07".into(),
        platforms: vec![PlatformSpec::Preset("intrepid".into())],
        workloads: sensibility_levels()
            .iter()
            .map(|&pct| {
                let x = f64::from(pct) / 100.0;
                WorkloadSpec::Perturbed {
                    base: Box::new(WorkloadSpec::Mix {
                        config: MixConfig::fig6b(),
                        seed: 0,
                    }),
                    work_x: x,
                    vol_x: x,
                    seed: 0,
                }
            })
            .collect(),
        policies: policies().into_iter().map(PolicySpec::Kind).collect(),
        seeds: (0..runs as u64).collect(),
        config: None,
        threads: None,
    }
}

/// Run `runs` mixes per sensibility level per policy (streamed through
/// [`run_campaign`]; per-cell means are thread-count independent).
#[must_use]
pub fn run(runs: usize) -> Vec<Fig07Row> {
    let spec = campaign(runs);
    let result = run_campaign(&spec, &ScenarioRunner::new()).expect("fig07 campaign is valid");
    let levels = sensibility_levels();
    let per_level = spec.policies.len();
    result
        .cells
        .iter()
        .enumerate()
        .map(|(i, cell)| Fig07Row {
            sensibility_pct: levels[i / per_level],
            policy: cell.policy.clone(),
            sys_efficiency: cell.sys_efficiency.mean,
            dilation: cell.dilation.mean,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensibility_has_almost_no_impact() {
        let rows = run(5);
        for kind in policies() {
            let name = kind.name();
            let series: Vec<&Fig07Row> = rows.iter().filter(|r| r.policy == name).collect();
            assert_eq!(series.len(), sensibility_levels().len());
            let base = series[0];
            for r in &series {
                assert!(
                    (r.sys_efficiency - base.sys_efficiency).abs() < 0.06,
                    "{name}: syseff at {}% drifted from {} to {}",
                    r.sensibility_pct,
                    base.sys_efficiency,
                    r.sys_efficiency
                );
            }
        }
    }

    #[test]
    fn campaign_templates_cover_every_level() {
        let spec = campaign(3);
        assert_eq!(spec.workloads.len(), 7);
        assert_eq!(spec.cell_count(), 21);
        spec.validate().unwrap();
        // Level 0 still wraps (a zero perturbation is the periodic mix).
        assert!(matches!(
            &spec.workloads[0],
            WorkloadSpec::Perturbed { work_x, .. } if *work_x == 0.0
        ));
    }
}
