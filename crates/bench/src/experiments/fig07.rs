//! **Fig. 7** — "Impact of the sensibility of the computations over
//! SysEfficiency and Dilation of all heuristics".
//!
//! §4.3: applications are made non-periodic by drawing each instance's
//! work from `U[w, w(1+x)]` for x = 0…30 %; the paper finds "this
//! parameter has almost no impact on the results" because the online
//! heuristics only use information available at each event.

use iosched_core::heuristics::{BasePolicy, PolicyKind};
use iosched_model::{stats, Platform};
use iosched_sim::{simulate, SimConfig};
use iosched_workload::{sensibility, MixConfig};

/// Mean objectives at one sensibility level for one policy.
#[derive(Debug, Clone)]
pub struct Fig07Row {
    /// Sensibility percentage (0–30).
    pub sensibility_pct: u32,
    /// Policy name.
    pub policy: String,
    /// Mean SysEfficiency.
    pub sys_efficiency: f64,
    /// Mean Dilation.
    pub dilation: f64,
}

/// The paper's x-axis.
#[must_use]
pub fn sensibility_levels() -> Vec<u32> {
    vec![0, 5, 10, 15, 20, 25, 30]
}

/// The three heuristics of the figure (no Priority).
#[must_use]
pub fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::plain(BasePolicy::MinDilation),
        PolicyKind::plain(BasePolicy::MaxSysEff),
        PolicyKind::plain(BasePolicy::MinMax(0.5)),
    ]
}

/// Run `runs` mixes per sensibility level per policy.
#[must_use]
pub fn run(runs: usize) -> Vec<Fig07Row> {
    let platform = Platform::intrepid();
    let mix = MixConfig::fig6b();
    let mut rows = Vec::new();
    for &pct in &sensibility_levels() {
        let x = f64::from(pct) / 100.0;
        for kind in &policies() {
            let mut effs = Vec::with_capacity(runs);
            let mut dils = Vec::with_capacity(runs);
            for seed in 0..runs as u64 {
                let periodic = mix.generate(&platform, seed);
                let apps = sensibility::perturb(&periodic, x, x, seed ^ 0xABCD);
                let mut policy = kind.build();
                let out = simulate(&platform, &apps, &mut policy, &SimConfig::default())
                    .expect("perturbed mixes are valid");
                effs.push(out.report.sys_efficiency);
                dils.push(out.report.dilation);
            }
            rows.push(Fig07Row {
                sensibility_pct: pct,
                policy: kind.name(),
                sys_efficiency: stats::mean(&effs),
                dilation: stats::mean(&dils),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensibility_has_almost_no_impact() {
        let rows = run(5);
        for kind in policies() {
            let name = kind.name();
            let series: Vec<&Fig07Row> =
                rows.iter().filter(|r| r.policy == name).collect();
            assert_eq!(series.len(), sensibility_levels().len());
            let base = series[0];
            for r in &series {
                assert!(
                    (r.sys_efficiency - base.sys_efficiency).abs() < 0.06,
                    "{name}: syseff at {}% drifted from {} to {}",
                    r.sensibility_pct,
                    base.sys_efficiency,
                    r.sys_efficiency
                );
            }
        }
    }
}
