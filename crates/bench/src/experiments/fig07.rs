//! **Fig. 7** — "Impact of the sensibility of the computations over
//! SysEfficiency and Dilation of all heuristics".
//!
//! §4.3: applications are made non-periodic by drawing each instance's
//! work from `U[w, w(1+x)]` for x = 0…30 %; the paper finds "this
//! parameter has almost no impact on the results" because the online
//! heuristics only use information available at each event.

use crate::runner::ScenarioRunner;
use crate::scenario::{PolicySpec, Scenario};
use iosched_core::heuristics::{BasePolicy, PolicyKind};
use iosched_model::{stats, Platform};
use iosched_workload::{sensibility, MixConfig};

/// Mean objectives at one sensibility level for one policy.
#[derive(Debug, Clone)]
pub struct Fig07Row {
    /// Sensibility percentage (0–30).
    pub sensibility_pct: u32,
    /// Policy name.
    pub policy: String,
    /// Mean SysEfficiency.
    pub sys_efficiency: f64,
    /// Mean Dilation.
    pub dilation: f64,
}

/// The paper's x-axis.
#[must_use]
pub fn sensibility_levels() -> Vec<u32> {
    vec![0, 5, 10, 15, 20, 25, 30]
}

/// The three heuristics of the figure (no Priority).
#[must_use]
pub fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::plain(BasePolicy::MinDilation),
        PolicyKind::plain(BasePolicy::MaxSysEff),
        PolicyKind::plain(BasePolicy::MinMax(0.5)),
    ]
}

/// Run `runs` mixes per sensibility level per policy (batched through the
/// parallel [`ScenarioRunner`]; input-ordered results keep the means
/// thread-count independent).
#[must_use]
pub fn run(runs: usize) -> Vec<Fig07Row> {
    let platform = Platform::intrepid();
    let mix = MixConfig::fig6b();
    let levels = sensibility_levels();
    let kinds = policies();

    let mut scenarios = Vec::with_capacity(levels.len() * kinds.len() * runs);
    for &pct in &levels {
        let x = f64::from(pct) / 100.0;
        let apps_per_seed: Vec<_> = (0..runs as u64)
            .map(|seed| {
                let periodic = mix.generate(&platform, seed);
                sensibility::perturb(&periodic, x, x, seed ^ 0xABCD)
            })
            .collect();
        for kind in &kinds {
            for (seed, apps) in apps_per_seed.iter().enumerate() {
                scenarios.push(Scenario::new(
                    format!("fig07/{pct}%/{}/{seed}", kind.name()),
                    platform.clone(),
                    apps.clone(),
                    PolicySpec::Kind(*kind),
                ));
            }
        }
    }
    let results = ScenarioRunner::new().run_all(&scenarios);

    // Chunk structurally: each (level, policy) pair owns `runs`
    // consecutive results, mirroring the construction order above.
    let mut rows = Vec::new();
    let level_kind_pairs = levels
        .iter()
        .flat_map(|&pct| kinds.iter().map(move |kind| (pct, kind)));
    for ((pct, kind), chunk) in level_kind_pairs.zip(results.chunks(runs)) {
        let mut effs = Vec::with_capacity(runs);
        let mut dils = Vec::with_capacity(runs);
        for result in chunk {
            let out = result.as_ref().expect("perturbed mixes are valid");
            effs.push(out.report.sys_efficiency);
            dils.push(out.report.dilation);
        }
        rows.push(Fig07Row {
            sensibility_pct: pct,
            policy: kind.name(),
            sys_efficiency: stats::mean(&effs),
            dilation: stats::mean(&dils),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensibility_has_almost_no_impact() {
        let rows = run(5);
        for kind in policies() {
            let name = kind.name();
            let series: Vec<&Fig07Row> = rows.iter().filter(|r| r.policy == name).collect();
            assert_eq!(series.len(), sensibility_levels().len());
            let base = series[0];
            for r in &series {
                assert!(
                    (r.sys_efficiency - base.sys_efficiency).abs() < 0.06,
                    "{name}: syseff at {}% drifted from {} to {}",
                    r.sensibility_pct,
                    base.sys_efficiency,
                    r.sys_efficiency
                );
            }
        }
    }
}
