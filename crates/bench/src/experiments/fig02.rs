//! **Fig. 2** — "Model instantiation for the Intrepid platform".
//!
//! The figure is an architecture diagram; its quantitative content is the
//! platform constants (`N`, `b`, `B`) which this module reports for all
//! three modelled machines, together with the derived saturation point
//! that fixes the §4.1 small/large boundary.

use iosched_model::Platform;

/// One platform row.
#[derive(Debug, Clone)]
pub struct PlatformRow {
    /// Machine name.
    pub name: String,
    /// Node count `N`.
    pub procs: u64,
    /// Per-node I/O bandwidth `b` (GiB/s).
    pub proc_bw_gib: f64,
    /// PFS bandwidth `B` (GiB/s).
    pub total_bw_gib: f64,
    /// Nodes needed to saturate the PFS (`⌈B/b⌉`).
    pub saturation_nodes: u64,
}

/// Constants of the three modelled platforms.
#[must_use]
pub fn run() -> Vec<PlatformRow> {
    [Platform::intrepid(), Platform::mira(), Platform::vesta()]
        .iter()
        .map(|p| PlatformRow {
            name: p.name.clone(),
            procs: p.procs,
            proc_bw_gib: p.proc_bw.as_gib_per_sec(),
            total_bw_gib: p.total_bw.as_gib_per_sec(),
            saturation_nodes: p.saturation_procs(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_platforms_reported() {
        let rows = run();
        assert_eq!(rows.len(), 3);
        let intrepid = &rows[0];
        assert_eq!(intrepid.name, "intrepid");
        // DESIGN.md calibration: saturation at the small/large boundary.
        assert_eq!(intrepid.saturation_nodes, 1_280);
        assert!(rows[1].total_bw_gib > rows[0].total_bw_gib); // Mira > Intrepid
        assert!(rows[2].procs < rows[0].procs); // Vesta is tiny
    }
}
