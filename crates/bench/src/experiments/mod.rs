//! One module per paper table/figure (see DESIGN.md §4 for the index).

pub mod ablations;
pub mod control;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod load_sweep;
pub mod tables;
