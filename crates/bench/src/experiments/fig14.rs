//! **Fig. 14** — "Execution time overhead of our implementation of the
//! IOR benchmark": the cost of routing every I/O through the scheduler
//! thread when no scheduling decision is ever withheld, per Vesta
//! scenario, with and without burst buffers.
//!
//! Paper: "the overhead in execution time varies between 1 % to 5.3 %.
//! In general, for a larger number of applications, the execution time
//! overhead remains under 3 %."

use iosched_ior::{measure_overhead, IorConfig};
use iosched_model::Platform;
use iosched_workload::ior_profile::{scenario_apps, vesta_scenarios, IorParams};

/// Overhead of one scenario.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Scenario label ("512/256/32", …).
    pub scenario: String,
    /// Number of applications in the scenario.
    pub apps: usize,
    /// Relative execution-time overhead without burst buffers.
    pub overhead_no_bb: f64,
    /// Relative execution-time overhead with burst buffers.
    pub overhead_bb: f64,
}

/// Measure every Fig. 14 scenario. `speedup` trades fidelity for wall
/// time (lower = more faithful, slower).
#[must_use]
pub fn run(speedup: f64) -> Vec<Fig14Row> {
    let plain = Platform::vesta();
    let bb = Platform::vesta().with_default_burst_buffer();
    vesta_scenarios()
        .iter()
        .map(|scenario| {
            let apps = scenario_apps(scenario, &plain, IorParams::default(), 42);
            let mut cfg = IorConfig::new(plain.clone(), apps.clone());
            cfg.speedup = speedup;
            let no_bb = measure_overhead(&cfg).expect("valid scenario");
            let mut cfg_bb = IorConfig::new(bb.clone(), apps);
            cfg_bb.speedup = speedup;
            cfg_bb.use_burst_buffer = true;
            let with_bb = measure_overhead(&cfg_bb).expect("valid scenario");
            Fig14Row {
                scenario: scenario.name.clone(),
                apps: scenario.app_count(),
                overhead_no_bb: no_bb.overhead_frac,
                overhead_bb: with_bb.overhead_frac,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_small_for_every_scenario() {
        // Coarse scale to keep the test quick; the binary uses a finer one.
        let rows = run(2_000.0);
        assert_eq!(rows.len(), 11);
        for r in &rows {
            assert!(r.overhead_no_bb >= 0.0 && r.overhead_bb >= 0.0);
            assert!(
                r.overhead_no_bb < 0.5,
                "{}: overhead {:.1}% implausible",
                r.scenario,
                r.overhead_no_bb * 100.0
            );
        }
    }
}
