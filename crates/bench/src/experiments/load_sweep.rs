//! **Open-system load sweep** — per-λ saturation curves for the policy
//! roster, the first experiment family the paper itself cannot express.
//!
//! The paper's evaluation is closed: every roster is known at `t = 0`
//! and the objectives are judged at the end. Both "Periodic I/O
//! scheduling for super-computers" and "Mitigating Shared Storage
//! Congestion Using Control Theory" instead evaluate the *open* regime:
//! jobs arrive as a Poisson stream of rate λ, and each policy is judged
//! by where it saturates — the λ beyond which queues and stretches blow
//! up. This module sweeps λ × policy × seed over streams of
//! congested-moment shapes on Intrepid: each workload axis entry is one
//! [`WorkloadSpec::Stream`] at a different arrival rate, every run
//! trims a warmup transient, and the per-cell [`CellSummary::queue`] /
//! [`CellSummary::stretch`] aggregates are the saturation curves.
//!
//! The whole experiment is one declarative [`CampaignSpec`] — exported
//! as `examples/campaign_stream.json` and pinned bit-for-bit by
//! `tests/campaign_spec.rs`.

use crate::campaign::{run_campaign, CampaignResult, CampaignSpec, PlatformSpec};
use crate::runner::ScenarioRunner;
use crate::scenario::PolicySpec;
use iosched_model::Time;
use iosched_sim::SimConfig;
use iosched_workload::{ArrivalProcess, StopRule, WorkloadSpec};

/// Seeds (arrival streams + template pools) averaged per cell.
pub const SWEEP_SEEDS: usize = 3;

/// Applications per stream. Congested-moment shapes keep a job in the
/// system for ~15–45 simulated minutes, so 120 arrivals are enough for
/// the post-warmup window to show steady-state behaviour at every λ.
pub const STREAM_APPS: usize = 120;

/// Steady-state transient trimmed from every run, seconds.
pub const WARMUP_SECS: f64 = 2_000.0;

/// The λ axis, arrivals per second. Congested-moment shapes offer
/// ~900 B·s of I/O per arrival, putting the measured saturation rate at
/// λ* ≈ 0.0011/s (delivered utilization hits 1.0 there); the axis walks
/// the system from a comfortably subcritical ~0.45 utilization through
/// the knee and into outright saturation.
#[must_use]
pub fn lambdas() -> Vec<f64> {
    vec![0.0005, 0.0008, 0.0011, 0.0014]
}

/// One open-system stream at arrival rate λ: Poisson arrivals drawing
/// shapes from the seeded congested-moment pool.
#[must_use]
pub fn stream_workload(lambda: f64) -> WorkloadSpec {
    WorkloadSpec::Stream {
        arrivals: ArrivalProcess::Poisson { rate: lambda },
        template: Box::new(WorkloadSpec::Congestion { seed: 0 }),
        stop: StopRule::Apps(STREAM_APPS),
        seed: 0,
    }
}

/// The policy axis: the uncoordinated baseline, the paper's
/// dilation-oriented heuristic, the closed feedback loop, and the
/// offline periodic schedule — planned over the *whole* stream roster,
/// the arrival-blind reference. A default-`tmax` period cannot place
/// 120 stream applications at once (every candidate starves someone),
/// so the sweep runs the `tmax=32` form: the period stretches until the
/// full roster packs, and the per-λ curves show what that over-planning
/// costs when arrivals actually trickle in.
#[must_use]
pub fn policies() -> Vec<PolicySpec> {
    [
        "fairshare",
        "mindilation",
        "control:pi",
        "periodic:cong:tmax=32",
    ]
    .iter()
    .map(|name| PolicySpec::parse(name).expect("roster names parse"))
    .collect()
}

/// The 10k-application bounded-memory demonstration stream: Poisson
/// arrivals at ~90 % of the saturation rate, so the system stays
/// *stable* with ~10–50 congested-moment shapes in flight at any
/// instant (mean I/O queue ≈ 8, peak live ≈ 52), 80× longer than the
/// sweep streams. Driven lazily
/// (`WorkloadSpec::app_source` + `simulate_stream`) by the
/// `bench_stream_mem` binary and the `sim_throughput` `stream_10k`
/// case; never materialized by either.
#[must_use]
pub fn stream_10k() -> WorkloadSpec {
    WorkloadSpec::Stream {
        arrivals: ArrivalProcess::Poisson { rate: 0.001 },
        template: Box::new(WorkloadSpec::Congestion { seed: 0 }),
        stop: StopRule::Apps(10_000),
        seed: 0,
    }
}

/// The load sweep as data: `intrepid × λ × policies × seeds`, with the
/// warmup window in the shared engine configuration.
#[must_use]
pub fn campaign(seeds: usize) -> CampaignSpec {
    CampaignSpec {
        name: "load-sweep".into(),
        platforms: vec![PlatformSpec::Preset("intrepid".into())],
        workloads: lambdas().into_iter().map(stream_workload).collect(),
        policies: policies(),
        seeds: (0..seeds as u64).collect(),
        config: Some(SimConfig {
            warmup: Time::secs(WARMUP_SECS),
            telemetry: true,
            ..SimConfig::default()
        }),
        threads: None,
    }
}

/// Execute the sweep (per-cell aggregates are thread-count invariant).
#[must_use]
pub fn run(seeds: usize) -> CampaignResult {
    run_campaign(&campaign(seeds), &ScenarioRunner::new()).expect("load sweep is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_shape_matches_the_exported_file() {
        let spec = campaign(SWEEP_SEEDS);
        assert_eq!(spec.workloads.len(), lambdas().len());
        assert!(spec.workloads.iter().all(WorkloadSpec::is_open));
        assert_eq!(spec.cell_count(), lambdas().len() * policies().len());
        let config = spec.config.as_ref().unwrap();
        assert!(
            config.warmup.as_secs() > 0.0,
            "cells aggregate steady state"
        );
        assert!(config.telemetry);
        spec.validate().unwrap();
    }

    /// One seed, lowest vs highest λ: the sweep's reason to exist is
    /// that queues grow with the arrival rate.
    #[test]
    fn saturation_grows_with_lambda() {
        let spec = CampaignSpec {
            workloads: vec![
                stream_workload(lambdas()[0]),
                stream_workload(*lambdas().last().unwrap()),
            ],
            policies: vec![PolicySpec::parse("fairshare").unwrap()],
            seeds: vec![0],
            ..campaign(SWEEP_SEEDS)
        };
        let result = run_campaign(&spec, &ScenarioRunner::new()).expect("sweep runs");
        assert_eq!(result.cells.len(), 2);
        let low = result.cells[0].queue.as_ref().expect("steady aggregates");
        let high = result.cells[1].queue.as_ref().expect("steady aggregates");
        assert!(
            high.mean > 2.0 * low.mean,
            "queue must grow with λ: {} vs {}",
            low.mean,
            high.mean
        );
        let low_stretch = result.cells[0].stretch.as_ref().unwrap();
        let high_stretch = result.cells[1].stretch.as_ref().unwrap();
        assert!(low_stretch.mean >= 1.0);
        assert!(
            high_stretch.mean > low_stretch.mean,
            "stretch must grow with λ: {} vs {}",
            low_stretch.mean,
            high_stretch.mean
        );
    }
}
