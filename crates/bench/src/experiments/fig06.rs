//! **Fig. 6** — "Objectives for different mixes of applications and I/O
//! computation ratios": SysEfficiency and Dilation of the eight policies
//! (RoundRobin / MinDilation / MaxSysEff / MinMax-0.5, each ± Priority)
//! over (a) 10 large @ 20 %, (b) 50 small + 5 large @ 20 %, and (c) 50
//! small + 5 large @ 35 %. "Simulations were run 200 times on different
//! application mixes and only the mean values are reported."
//!
//! The whole experiment is one declarative [`CampaignSpec`] — three mix
//! templates × the Fig. 6 policy roster × a seed axis — executed through
//! the streaming [`run_campaign`] aggregator. The identical sweep can be
//! run from a JSON file via `iosched campaign`
//! (`examples/campaign_fig6.json` is exactly `campaign(200)`).

use crate::campaign::{run_campaign, CampaignSpec, PlatformSpec};
use crate::runner::ScenarioRunner;
use crate::scenario::PolicySpec;
use iosched_core::heuristics::PolicyKind;
use iosched_workload::{MixConfig, WorkloadSpec};

/// Mean objectives of one policy on one mix.
#[derive(Debug, Clone)]
pub struct Fig06Row {
    /// Mix label ("a", "b", "c").
    pub mix: &'static str,
    /// Policy name.
    pub policy: String,
    /// Mean SysEfficiency (fraction).
    pub sys_efficiency: f64,
    /// Mean Dilation.
    pub dilation: f64,
    /// Mean congestion-free upper limit (fraction).
    pub upper_limit: f64,
}

/// The three Fig. 6 mixes.
#[must_use]
pub fn mixes() -> Vec<(&'static str, MixConfig)> {
    vec![
        ("a", MixConfig::fig6a()),
        ("b", MixConfig::fig6b()),
        ("c", MixConfig::fig6c()),
    ]
}

/// The Fig. 6 sweep as data: `intrepid × {mix a, b, c} × the eight
/// policies × runs seeds`.
#[must_use]
pub fn campaign(runs: usize) -> CampaignSpec {
    CampaignSpec {
        name: "fig06".into(),
        platforms: vec![PlatformSpec::Preset("intrepid".into())],
        workloads: mixes()
            .iter()
            .map(|&(_, config)| WorkloadSpec::Mix { config, seed: 0 })
            .collect(),
        policies: PolicyKind::fig6_roster()
            .into_iter()
            .map(PolicySpec::Kind)
            .collect(),
        seeds: (0..runs as u64).collect(),
        config: None,
        threads: None,
    }
}

/// Run `runs` random mixes per configuration per policy (streamed through
/// [`run_campaign`]; per-cell means are independent of the thread count).
#[must_use]
pub fn run(runs: usize) -> Vec<Fig06Row> {
    let spec = campaign(runs);
    let result = run_campaign(&spec, &ScenarioRunner::new()).expect("fig06 campaign is valid");
    let mixes = mixes();
    let per_mix = spec.policies.len();
    result
        .cells
        .iter()
        .enumerate()
        .map(|(i, cell)| Fig06Row {
            mix: mixes[i / per_mix].0,
            policy: cell.policy.clone(),
            sys_efficiency: cell.sys_efficiency.mean,
            dilation: cell.dilation.mean,
            upper_limit: cell.upper_limit.mean,
        })
        .collect()
}

/// Look up a row by mix and policy name.
#[must_use]
pub fn find<'a>(rows: &'a [Fig06Row], mix: &str, policy: &str) -> Option<&'a Fig06Row> {
    rows.iter().find(|r| r.mix == mix && r.policy == policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_claims_hold_on_a_small_sample() {
        let rows = run(8);
        assert_eq!(rows.len(), 3 * 8);
        for mix in ["a", "b", "c"] {
            let md = find(&rows, mix, "mindilation").unwrap();
            let ms = find(&rows, mix, "maxsyseff").unwrap();
            // "MinDilation has better results than MaxSysEff for the
            // Dilation objective, but worse for SysEfficiency."
            assert!(
                md.dilation <= ms.dilation + 0.05,
                "mix {mix}: MinDilation dilation {} vs MaxSysEff {}",
                md.dilation,
                ms.dilation
            );
            assert!(
                ms.sys_efficiency >= md.sys_efficiency - 0.01,
                "mix {mix}: MaxSysEff syseff {} vs MinDilation {}",
                ms.sys_efficiency,
                md.sys_efficiency
            );
            // MinMax-0.5 sits between the two extremes on both axes
            // (within sampling noise).
            let mm = find(&rows, mix, "minmax-0.50").unwrap();
            assert!(mm.dilation <= ms.dilation + 0.25);
            assert!(mm.sys_efficiency >= md.sys_efficiency - 0.05);
        }
    }

    #[test]
    fn priority_variants_are_slightly_worse() {
        let rows = run(8);
        // "the Priority variants are, most of the time, less efficient
        // than the original versions" — check the aggregate over mixes.
        let mut plain_eff = 0.0;
        let mut prio_eff = 0.0;
        for mix in ["a", "b", "c"] {
            for base in ["mindilation", "maxsyseff", "minmax-0.50", "roundrobin"] {
                plain_eff += find(&rows, mix, base).unwrap().sys_efficiency;
                prio_eff += find(&rows, mix, &format!("priority-{base}"))
                    .unwrap()
                    .sys_efficiency;
            }
        }
        assert!(
            prio_eff <= plain_eff + 0.05,
            "priority aggregate {prio_eff} should not beat plain {plain_eff}"
        );
    }

    #[test]
    fn campaign_shape_is_fig6() {
        let spec = campaign(200);
        assert_eq!(spec.workloads.len(), 3);
        assert_eq!(spec.policies.len(), 8);
        assert_eq!(spec.seeds.len(), 200);
        assert_eq!(spec.total_runs(), 3 * 8 * 200);
        assert_eq!(spec.cell_count(), 24);
        spec.validate().unwrap();
    }
}
