//! **Fig. 6** — "Objectives for different mixes of applications and I/O
//! computation ratios": SysEfficiency and Dilation of the eight policies
//! (RoundRobin / MinDilation / MaxSysEff / MinMax-0.5, each ± Priority)
//! over (a) 10 large @ 20 %, (b) 50 small + 5 large @ 20 %, and (c) 50
//! small + 5 large @ 35 %. "Simulations were run 200 times on different
//! application mixes and only the mean values are reported."

use crate::runner::ScenarioRunner;
use crate::scenario::{PolicySpec, Scenario};
use iosched_core::heuristics::PolicyKind;
use iosched_model::{stats, Platform};
use iosched_workload::MixConfig;

/// Mean objectives of one policy on one mix.
#[derive(Debug, Clone)]
pub struct Fig06Row {
    /// Mix label ("a", "b", "c").
    pub mix: &'static str,
    /// Policy name.
    pub policy: String,
    /// Mean SysEfficiency (fraction).
    pub sys_efficiency: f64,
    /// Mean Dilation.
    pub dilation: f64,
    /// Mean congestion-free upper limit (fraction).
    pub upper_limit: f64,
}

/// The three Fig. 6 mixes.
#[must_use]
pub fn mixes() -> Vec<(&'static str, MixConfig)> {
    vec![
        ("a", MixConfig::fig6a()),
        ("b", MixConfig::fig6b()),
        ("c", MixConfig::fig6c()),
    ]
}

/// Run `runs` random mixes per configuration per policy (fanned out in
/// parallel by the [`ScenarioRunner`]; results are input-ordered, so the
/// reported means are independent of the thread count).
#[must_use]
pub fn run(runs: usize) -> Vec<Fig06Row> {
    let platform = Platform::intrepid();
    let kinds = PolicyKind::fig6_roster();
    let mixes = mixes();

    // Describe the (mix × policy × seed) sweep declaratively; each seed's
    // application mix is generated once and shared across policies.
    let mut scenarios = Vec::with_capacity(mixes.len() * kinds.len() * runs);
    for (label, mix) in &mixes {
        let apps_per_seed: Vec<_> = (0..runs as u64)
            .map(|seed| mix.generate(&platform, seed))
            .collect();
        for kind in &kinds {
            for (seed, apps) in apps_per_seed.iter().enumerate() {
                scenarios.push(Scenario::new(
                    format!("fig06/{label}/{}/{seed}", kind.name()),
                    platform.clone(),
                    apps.clone(),
                    PolicySpec::Kind(*kind),
                ));
            }
        }
    }
    let results = ScenarioRunner::new().run_all(&scenarios);

    // Chunk structurally: each (mix, policy) pair owns `runs` consecutive
    // results, mirroring the construction order above.
    let mut rows = Vec::new();
    let mix_kind_pairs = mixes
        .iter()
        .flat_map(|&(label, _)| kinds.iter().map(move |kind| (label, kind)));
    for ((label, kind), chunk) in mix_kind_pairs.zip(results.chunks(runs)) {
        let mut effs = Vec::with_capacity(runs);
        let mut dils = Vec::with_capacity(runs);
        let mut uppers = Vec::with_capacity(runs);
        for result in chunk {
            let out = result.as_ref().expect("generated mixes are valid");
            effs.push(out.report.sys_efficiency);
            dils.push(out.report.dilation);
            uppers.push(out.report.upper_limit);
        }
        rows.push(Fig06Row {
            mix: label,
            policy: kind.name(),
            sys_efficiency: stats::mean(&effs),
            dilation: stats::mean(&dils),
            upper_limit: stats::mean(&uppers),
        });
    }
    rows
}

/// Look up a row by mix and policy name.
#[must_use]
pub fn find<'a>(rows: &'a [Fig06Row], mix: &str, policy: &str) -> Option<&'a Fig06Row> {
    rows.iter().find(|r| r.mix == mix && r.policy == policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_claims_hold_on_a_small_sample() {
        let rows = run(8);
        assert_eq!(rows.len(), 3 * 8);
        for mix in ["a", "b", "c"] {
            let md = find(&rows, mix, "mindilation").unwrap();
            let ms = find(&rows, mix, "maxsyseff").unwrap();
            // "MinDilation has better results than MaxSysEff for the
            // Dilation objective, but worse for SysEfficiency."
            assert!(
                md.dilation <= ms.dilation + 0.05,
                "mix {mix}: MinDilation dilation {} vs MaxSysEff {}",
                md.dilation,
                ms.dilation
            );
            assert!(
                ms.sys_efficiency >= md.sys_efficiency - 0.01,
                "mix {mix}: MaxSysEff syseff {} vs MinDilation {}",
                ms.sys_efficiency,
                md.sys_efficiency
            );
            // MinMax-0.5 sits between the two extremes on both axes
            // (within sampling noise).
            let mm = find(&rows, mix, "minmax-0.50").unwrap();
            assert!(mm.dilation <= ms.dilation + 0.25);
            assert!(mm.sys_efficiency >= md.sys_efficiency - 0.05);
        }
    }

    #[test]
    fn priority_variants_are_slightly_worse() {
        let rows = run(8);
        // "the Priority variants are, most of the time, less efficient
        // than the original versions" — check the aggregate over mixes.
        let mut plain_eff = 0.0;
        let mut prio_eff = 0.0;
        for mix in ["a", "b", "c"] {
            for base in ["mindilation", "maxsyseff", "minmax-0.50", "roundrobin"] {
                plain_eff += find(&rows, mix, base).unwrap().sys_efficiency;
                prio_eff += find(&rows, mix, &format!("priority-{base}"))
                    .unwrap()
                    .sys_efficiency;
            }
        }
        assert!(
            prio_eff <= plain_eff + 0.05,
            "priority aggregate {prio_eff} should not beat plain {plain_eff}"
        );
    }
}
