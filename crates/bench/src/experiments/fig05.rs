//! **Fig. 5** — "Characteristics of applications running on Intrepid in
//! 2013": (a) system usage per day per application type, (b) percentage
//! of time spent doing I/O per application type.
//!
//! We synthesize a year-long Darshan-like log with the calibrated
//! category mixture and report the same two statistics.

use crate::runner::ScenarioRunner;
use iosched_model::Platform;
use iosched_workload::categories::AppCategory;
use iosched_workload::DarshanLog;

/// Per-category statistics over the synthetic year.
#[derive(Debug, Clone)]
pub struct CategoryRow {
    /// Which class.
    pub category: AppCategory,
    /// Number of jobs.
    pub jobs: usize,
    /// Share of total node-seconds (the Fig. 5a quantity).
    pub usage_share: f64,
    /// Mean fraction of runtime spent in I/O (the Fig. 5b quantity).
    pub mean_io_fraction: f64,
}

/// Shards the synthetic year is split into. Fixed (not thread-count
/// derived) so the merged log is identical no matter how many workers
/// the runner uses.
const SHARDS: usize = 8;

/// Synthesize the year and aggregate per category.
///
/// The year-long log is synthesized in [`SHARDS`] deterministic shards
/// (seeded from `seed` and the shard index) fanned out on the
/// [`ScenarioRunner`]'s streaming fold: each shard's records are merged
/// into the accumulating log as soon as the input-ordered fold reaches
/// it, so only in-flight shards are alive at once — never the full list
/// of shard logs.
#[must_use]
pub fn run(jobs: usize, seed: u64) -> Vec<CategoryRow> {
    let platform = Platform::intrepid();
    let shard_sizes: Vec<(u64, usize)> = (0..SHARDS)
        .map(|shard| {
            let shard_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(shard as u64);
            // Distribute `jobs` as evenly as possible over the shards.
            let n = jobs / SHARDS + usize::from(shard < jobs % SHARDS);
            (shard_seed, n)
        })
        .collect();
    let log = ScenarioRunner::new().fold(
        shard_sizes,
        |_, &(shard_seed, n)| DarshanLog::synthesize_year(&platform, shard_seed, n),
        DarshanLog::default(),
        |mut log, _, shard| {
            log.records.extend(shard.records);
            log
        },
    );
    let total_node_seconds: f64 = log
        .records
        .iter()
        .map(|r| r.nodes as f64 * r.runtime())
        .sum();
    AppCategory::ALL
        .iter()
        .map(|&category| {
            let recs: Vec<_> = log
                .records
                .iter()
                .filter(|r| r.category() == category)
                .collect();
            let node_seconds: f64 = recs.iter().map(|r| r.nodes as f64 * r.runtime()).sum();
            let mean_io = if recs.is_empty() {
                0.0
            } else {
                recs.iter().map(|r| r.io_fraction()).sum::<f64>() / recs.len() as f64
            };
            CategoryRow {
                category,
                jobs: recs.len(),
                usage_share: node_seconds / total_node_seconds,
                mean_io_fraction: mean_io,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one_and_follow_the_shape() {
        let rows = run(5_000, 1);
        let total: f64 = rows.iter().map(|r| r.usage_share).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Fig. 5b shape: I/O fraction grows with the size class.
        assert!(rows[0].mean_io_fraction < rows[2].mean_io_fraction);
        // All classes present.
        assert!(rows.iter().all(|r| r.jobs > 0));
    }
}
