//! Ablations beyond the paper (DESIGN.md §6): fine-grained γ sweep,
//! burst-buffer capacity sweep for the native baseline, and the
//! period-search ε sensitivity.
//!
//! All three sweeps are declarative [`CampaignSpec`]s aggregated per cell
//! by the streaming [`run_campaign`]: the γ sweep puts the gammas on the
//! *policy* axis, the capacity sweep puts one custom platform per
//! capacity on the *platform* axis, and — since the scenario-aware
//! registry made offline schedules roster members — the ε sweep puts one
//! `periodic:cong:eps=<ε>` factory per step on the policy axis, so every
//! candidate search runs against the same materialized congested moment
//! and its winning timetable is scored *in the fluid engine* instead of
//! only on paper.

use crate::campaign::{run_campaign, CampaignSpec, PlatformSpec};
use crate::runner::ScenarioRunner;
use crate::scenario::{PeriodicFactory, PolicySpec};
use iosched_baselines::native_platform;
use iosched_core::heuristics::{BasePolicy, PolicyKind};
use iosched_core::periodic::{InsertionHeuristic, PeriodicAppSpec};
use iosched_model::{BurstBufferSpec, Platform, Time};
use iosched_sim::SimConfig;
use iosched_workload::congestion::congested_moment;
use iosched_workload::WorkloadSpec;

/// γ sweep: how MinMax-γ trades Dilation for SysEfficiency (extends
/// Figures 9/12 from three γ values to a full curve).
#[derive(Debug, Clone)]
pub struct GammaRow {
    /// Threshold γ.
    pub gamma: f64,
    /// Mean SysEfficiency over the cases.
    pub sys_efficiency: f64,
    /// Mean Dilation.
    pub dilation: f64,
}

/// The γ grid: `steps` points spanning `[0, 1]`.
///
/// # Panics
/// Panics when `steps < 2` (both endpoints are required).
#[must_use]
pub fn gammas(steps: usize) -> Vec<f64> {
    assert!(steps >= 2, "need at least the two endpoint gammas");
    (0..steps).map(|i| i as f64 / (steps - 1) as f64).collect()
}

/// The γ-sweep campaign: `native:intrepid × congestion × {MinMax-γ} ×
/// cases`.
#[must_use]
pub fn gamma_campaign(steps: usize, cases: usize) -> CampaignSpec {
    CampaignSpec {
        name: "ablation-gamma".into(),
        platforms: vec![PlatformSpec::Native("intrepid".into())],
        workloads: vec![WorkloadSpec::Congestion { seed: 0 }],
        policies: gammas(steps)
            .into_iter()
            .map(|gamma| PolicySpec::Kind(PolicyKind::plain(BasePolicy::MinMax(gamma))))
            .collect(),
        seeds: (0..cases as u64).collect(),
        config: None,
        threads: None,
    }
}

/// Sweep γ over `steps` points on `cases` Intrepid congested moments.
#[must_use]
pub fn gamma_sweep(steps: usize, cases: usize) -> Vec<GammaRow> {
    let spec = gamma_campaign(steps, cases);
    let result = run_campaign(&spec, &ScenarioRunner::new()).expect("gamma campaign is valid");
    gammas(steps)
        .into_iter()
        .zip(&result.cells)
        .map(|(gamma, cell)| GammaRow {
            gamma,
            sys_efficiency: cell.sys_efficiency.mean,
            dilation: cell.dilation.mean,
        })
        .collect()
}

/// Burst-buffer capacity sweep: how much buffer the *native* scheduler
/// needs before it matches the global heuristics.
#[derive(Debug, Clone)]
pub struct BbCapacityRow {
    /// Buffer capacity in seconds of full-PFS absorption.
    pub capacity_secs: f64,
    /// Mean native SysEfficiency over the cases.
    pub sys_efficiency: f64,
}

/// The capacity-sweep campaign: one custom platform per capacity on the
/// platform axis, fair sharing with the buffer enabled.
#[must_use]
pub fn bb_capacity_campaign(capacities_secs: &[f64], cases: usize) -> CampaignSpec {
    let base = native_platform(Platform::intrepid());
    CampaignSpec {
        name: "ablation-bb-capacity".into(),
        platforms: capacities_secs
            .iter()
            .map(|&secs| {
                let mut platform = base.clone().with_burst_buffer(BurstBufferSpec {
                    capacity: base.total_bw * Time::secs(secs),
                    absorb_bw: base.total_bw * 4.0,
                });
                platform.name = format!("{}-bb{secs}s", base.name);
                PlatformSpec::Custom(platform)
            })
            .collect(),
        workloads: vec![WorkloadSpec::Congestion { seed: 0 }],
        policies: vec![PolicySpec::FairShare],
        seeds: (0..cases as u64).collect(),
        config: Some(SimConfig::with_burst_buffer()),
        threads: None,
    }
}

/// Sweep capacities (in seconds of `B`) on Intrepid congested moments.
#[must_use]
pub fn bb_capacity_sweep(capacities_secs: &[f64], cases: usize) -> Vec<BbCapacityRow> {
    let spec = bb_capacity_campaign(capacities_secs, cases);
    let result =
        run_campaign(&spec, &ScenarioRunner::new()).expect("bb-capacity campaign is valid");
    capacities_secs
        .iter()
        .zip(&result.cells)
        .map(|(&secs, cell)| BbCapacityRow {
            capacity_secs: secs,
            sys_efficiency: cell.sys_efficiency.mean,
        })
        .collect()
}

/// ε sweep: period-search granularity vs periodic schedule quality.
#[derive(Debug, Clone)]
pub struct EpsilonRow {
    /// Search step ε.
    pub epsilon: f64,
    /// Candidate periods the search evaluates at this ε.
    pub candidates: usize,
    /// Dilation of the winning schedule *replayed in the fluid engine*
    /// over the congested moment (was: analytic steady state, before the
    /// sweep became a campaign).
    pub dilation: f64,
}

/// The fixed Intrepid congested moment the ε sweep schedules (case 17,
/// as in the pre-campaign hand-rolled sweep).
pub const EPSILON_CASE_SEED: u64 = 17;

/// The ε-sweep campaign: `intrepid × congestion(case 17) ×
/// {periodic:cong:eps=ε}` — one offline factory per sweep point on the
/// policy axis. Every factory's period search runs against the same
/// materialized workload (one materialization per seed block, shared
/// across the whole policy axis).
#[must_use]
pub fn epsilon_campaign(epsilons: &[f64]) -> CampaignSpec {
    CampaignSpec {
        name: "ablation-epsilon".into(),
        platforms: vec![PlatformSpec::Preset("intrepid".into())],
        workloads: vec![WorkloadSpec::Congestion { seed: 0 }],
        policies: epsilons
            .iter()
            .map(|&epsilon| {
                PolicySpec::Periodic(
                    PeriodicFactory::new(InsertionHeuristic::Congestion).with_epsilon(epsilon),
                )
            })
            .collect(),
        seeds: vec![EPSILON_CASE_SEED],
        config: None,
        threads: None,
    }
}

/// Sweep ε on the fixed congested moment. Schedule quality comes from
/// the campaign (engine replay of each winning timetable); the candidate
/// counts come from the search progression itself, which
/// [`iosched_core::periodic::PeriodSearch::candidate_count`] replays
/// without building a single schedule.
#[must_use]
pub fn epsilon_sweep(epsilons: &[f64]) -> Vec<EpsilonRow> {
    let spec = epsilon_campaign(epsilons);
    let result = run_campaign(&spec, &ScenarioRunner::new()).expect("epsilon campaign is valid");
    let platform = Platform::intrepid();
    let apps: Vec<PeriodicAppSpec> = congested_moment(&platform, EPSILON_CASE_SEED)
        .iter()
        .map(|a| PeriodicAppSpec::from_app(a).expect("generator emits periodic apps"))
        .collect();
    epsilons
        .iter()
        .zip(&result.cells)
        .map(|(&epsilon, cell)| EpsilonRow {
            epsilon,
            candidates: PeriodicFactory::new(InsertionHeuristic::Congestion)
                .with_epsilon(epsilon)
                .search()
                .expect("positive epsilon")
                .candidate_count(&platform, &apps),
            dilation: cell.dilation.mean,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_endpoints_recover_the_named_heuristics() {
        let rows = gamma_sweep(3, 3);
        assert_eq!(rows.len(), 3);
        // γ=0 (MaxSysEff end) should not lose SysEfficiency to γ=1
        // (MinDilation end), and vice versa for Dilation.
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        assert!(first.sys_efficiency >= last.sys_efficiency - 0.02);
        assert!(last.dilation <= first.dilation + 0.1);
    }

    #[test]
    fn more_bb_capacity_never_hurts_much() {
        let rows = bb_capacity_sweep(&[0.5, 60.0, 600.0], 2);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[2].sys_efficiency >= rows[0].sys_efficiency - 0.02,
            "600 s of buffer ({:.3}) should beat 0.5 s ({:.3})",
            rows[2].sys_efficiency,
            rows[0].sys_efficiency
        );
    }

    #[test]
    fn finer_epsilon_tries_more_candidates_and_is_no_worse() {
        let rows = epsilon_sweep(&[0.5, 0.05]);
        assert!(rows[1].candidates > rows[0].candidates);
        // The finer search wins on the analytic objective it optimizes;
        // the engine replay adds finite-horizon effects (releases,
        // partial last periods), so allow a small tolerance around the
        // "no worse" claim.
        assert!(rows.iter().all(|r| r.dilation.is_finite()));
        assert!(
            rows[1].dilation <= rows[0].dilation + 0.25,
            "eps 0.05 dilation {} should not lose to eps 0.5 ({})",
            rows[1].dilation,
            rows[0].dilation
        );
    }

    #[test]
    fn sweep_campaigns_are_valid_and_shaped_right() {
        let gamma = gamma_campaign(5, 4);
        gamma.validate().unwrap();
        assert_eq!(gamma.cell_count(), 5);
        assert_eq!(gamma.total_runs(), 20);
        let bb = bb_capacity_campaign(&[1.0, 10.0], 3);
        bb.validate().unwrap();
        assert_eq!(bb.cell_count(), 2);
        assert!(bb.config.as_ref().unwrap().use_burst_buffer);
        let eps = epsilon_campaign(&[0.5, 0.1]);
        eps.validate().unwrap();
        assert_eq!(eps.cell_count(), 2);
        assert!(eps.policies.iter().all(PolicySpec::is_offline));
        assert_eq!(eps.policies[1].name(), "periodic:cong:eps=0.1");
    }
}
