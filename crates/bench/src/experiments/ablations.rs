//! Ablations beyond the paper (DESIGN.md §6): fine-grained γ sweep,
//! burst-buffer capacity sweep for the native baseline, and the
//! period-search ε sensitivity.

use iosched_baselines::{native_platform, run_native, NativeConfig};
use iosched_core::heuristics::MinMax;
use iosched_core::periodic::{
    InsertionHeuristic, PeriodSearch, PeriodicAppSpec, PeriodicObjective,
};
use iosched_model::{stats, BurstBufferSpec, Platform, Time};
use iosched_sim::{simulate, SimConfig};
use iosched_workload::congestion::congested_moment;

/// γ sweep: how MinMax-γ trades Dilation for SysEfficiency (extends
/// Figures 9/12 from three γ values to a full curve).
#[derive(Debug, Clone)]
pub struct GammaRow {
    /// Threshold γ.
    pub gamma: f64,
    /// Mean SysEfficiency over the cases.
    pub sys_efficiency: f64,
    /// Mean Dilation.
    pub dilation: f64,
}

/// Sweep γ over `steps` points on `cases` Intrepid congested moments.
#[must_use]
pub fn gamma_sweep(steps: usize, cases: usize) -> Vec<GammaRow> {
    assert!(steps >= 2, "need at least the two endpoint gammas");
    let platform = native_platform(Platform::intrepid());
    (0..steps)
        .map(|i| {
            let gamma = i as f64 / (steps - 1) as f64;
            let mut effs = Vec::with_capacity(cases);
            let mut dils = Vec::with_capacity(cases);
            for seed in 0..cases as u64 {
                let apps = congested_moment(&platform, seed);
                let mut policy = MinMax::new(gamma);
                let out = simulate(&platform, &apps, &mut policy, &SimConfig::default())
                    .expect("valid scenario");
                effs.push(out.report.sys_efficiency);
                dils.push(out.report.dilation);
            }
            GammaRow {
                gamma,
                sys_efficiency: stats::mean(&effs),
                dilation: stats::mean(&dils),
            }
        })
        .collect()
}

/// Burst-buffer capacity sweep: how much buffer the *native* scheduler
/// needs before it matches the global heuristics.
#[derive(Debug, Clone)]
pub struct BbCapacityRow {
    /// Buffer capacity in seconds of full-PFS absorption.
    pub capacity_secs: f64,
    /// Mean native SysEfficiency over the cases.
    pub sys_efficiency: f64,
}

/// Sweep capacities (in seconds of `B`) on Intrepid congested moments.
#[must_use]
pub fn bb_capacity_sweep(capacities_secs: &[f64], cases: usize) -> Vec<BbCapacityRow> {
    let base = native_platform(Platform::intrepid());
    capacities_secs
        .iter()
        .map(|&secs| {
            let platform = base.clone().with_burst_buffer(BurstBufferSpec {
                capacity: base.total_bw * Time::secs(secs),
                absorb_bw: base.total_bw * 4.0,
            });
            let mut effs = Vec::with_capacity(cases);
            for seed in 0..cases as u64 {
                let apps = congested_moment(&platform, seed);
                let out = run_native(&platform, &apps, NativeConfig::default())
                    .expect("valid scenario");
                effs.push(out.report.sys_efficiency);
            }
            BbCapacityRow {
                capacity_secs: secs,
                sys_efficiency: stats::mean(&effs),
            }
        })
        .collect()
}

/// ε sweep: period-search granularity vs periodic schedule quality.
#[derive(Debug, Clone)]
pub struct EpsilonRow {
    /// Search step ε.
    pub epsilon: f64,
    /// Candidate periods evaluated.
    pub candidates: usize,
    /// Best steady-state dilation found.
    pub dilation: f64,
}

/// Sweep ε on a fixed periodic application set.
#[must_use]
pub fn epsilon_sweep(epsilons: &[f64]) -> Vec<EpsilonRow> {
    let platform = Platform::intrepid();
    let apps: Vec<PeriodicAppSpec> = congested_moment(&platform, 17)
        .iter()
        .map(|a| PeriodicAppSpec::from_app(a).expect("generator emits periodic apps"))
        .collect();
    epsilons
        .iter()
        .map(|&epsilon| {
            let result = PeriodSearch::new(PeriodicObjective::Dilation)
                .with_epsilon(epsilon)
                .run(&platform, &apps, InsertionHeuristic::Congestion)
                .expect("non-empty set");
            EpsilonRow {
                epsilon,
                candidates: result.candidates_tried,
                dilation: result.report.dilation,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_endpoints_recover_the_named_heuristics() {
        let rows = gamma_sweep(3, 3);
        assert_eq!(rows.len(), 3);
        // γ=0 (MaxSysEff end) should not lose SysEfficiency to γ=1
        // (MinDilation end), and vice versa for Dilation.
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        assert!(first.sys_efficiency >= last.sys_efficiency - 0.02);
        assert!(last.dilation <= first.dilation + 0.1);
    }

    #[test]
    fn more_bb_capacity_never_hurts_much() {
        let rows = bb_capacity_sweep(&[0.5, 60.0, 600.0], 2);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[2].sys_efficiency >= rows[0].sys_efficiency - 0.02,
            "600 s of buffer ({:.3}) should beat 0.5 s ({:.3})",
            rows[2].sys_efficiency,
            rows[0].sys_efficiency
        );
    }

    #[test]
    fn finer_epsilon_tries_more_candidates_and_is_no_worse() {
        let rows = epsilon_sweep(&[0.5, 0.05]);
        assert!(rows[1].candidates > rows[0].candidates);
        assert!(rows[1].dilation <= rows[0].dilation + 1e-9);
    }
}
