//! Ablations beyond the paper (DESIGN.md §6): fine-grained γ sweep,
//! burst-buffer capacity sweep for the native baseline, and the
//! period-search ε sensitivity.

use crate::runner::ScenarioRunner;
use crate::scenario::{PolicySpec, Scenario};
use iosched_baselines::native_platform;
use iosched_core::heuristics::{BasePolicy, PolicyKind};
use iosched_core::periodic::{
    InsertionHeuristic, PeriodSearch, PeriodicAppSpec, PeriodicObjective,
};
use iosched_model::{stats, BurstBufferSpec, Platform, Time};
use iosched_sim::SimConfig;
use iosched_workload::congestion::congested_moment;

/// γ sweep: how MinMax-γ trades Dilation for SysEfficiency (extends
/// Figures 9/12 from three γ values to a full curve).
#[derive(Debug, Clone)]
pub struct GammaRow {
    /// Threshold γ.
    pub gamma: f64,
    /// Mean SysEfficiency over the cases.
    pub sys_efficiency: f64,
    /// Mean Dilation.
    pub dilation: f64,
}

/// Sweep γ over `steps` points on `cases` Intrepid congested moments
/// (one flat `(γ × case)` batch on the parallel [`ScenarioRunner`]).
#[must_use]
pub fn gamma_sweep(steps: usize, cases: usize) -> Vec<GammaRow> {
    assert!(steps >= 2, "need at least the two endpoint gammas");
    let platform = native_platform(Platform::intrepid());
    let apps_per_seed: Vec<_> = (0..cases as u64)
        .map(|seed| congested_moment(&platform, seed))
        .collect();
    let gammas: Vec<f64> = (0..steps).map(|i| i as f64 / (steps - 1) as f64).collect();
    let mut scenarios = Vec::with_capacity(steps * cases);
    for &gamma in &gammas {
        for (seed, apps) in apps_per_seed.iter().enumerate() {
            scenarios.push(Scenario::new(
                format!("gamma/{gamma:.3}/{seed}"),
                platform.clone(),
                apps.clone(),
                PolicySpec::Kind(PolicyKind::plain(BasePolicy::MinMax(gamma))),
            ));
        }
    }
    let results = ScenarioRunner::new().run_all(&scenarios);
    gammas
        .iter()
        .zip(results.chunks(cases))
        .map(|(&gamma, chunk)| {
            let effs: Vec<f64> = chunk
                .iter()
                .map(|r| r.as_ref().expect("valid scenario").report.sys_efficiency)
                .collect();
            let dils: Vec<f64> = chunk
                .iter()
                .map(|r| r.as_ref().expect("valid scenario").report.dilation)
                .collect();
            GammaRow {
                gamma,
                sys_efficiency: stats::mean(&effs),
                dilation: stats::mean(&dils),
            }
        })
        .collect()
}

/// Burst-buffer capacity sweep: how much buffer the *native* scheduler
/// needs before it matches the global heuristics.
#[derive(Debug, Clone)]
pub struct BbCapacityRow {
    /// Buffer capacity in seconds of full-PFS absorption.
    pub capacity_secs: f64,
    /// Mean native SysEfficiency over the cases.
    pub sys_efficiency: f64,
}

/// Sweep capacities (in seconds of `B`) on Intrepid congested moments
/// (one flat `(capacity × case)` batch on the parallel
/// [`ScenarioRunner`]).
#[must_use]
pub fn bb_capacity_sweep(capacities_secs: &[f64], cases: usize) -> Vec<BbCapacityRow> {
    let base = native_platform(Platform::intrepid());
    let mut scenarios = Vec::with_capacity(capacities_secs.len() * cases);
    for &secs in capacities_secs {
        let platform = base.clone().with_burst_buffer(BurstBufferSpec {
            capacity: base.total_bw * Time::secs(secs),
            absorb_bw: base.total_bw * 4.0,
        });
        for seed in 0..cases as u64 {
            scenarios.push(
                Scenario::new(
                    format!("bb-capacity/{secs}/{seed}"),
                    platform.clone(),
                    congested_moment(&platform, seed),
                    PolicySpec::FairShare,
                )
                .with_config(SimConfig::with_burst_buffer()),
            );
        }
    }
    let results = ScenarioRunner::new().run_all(&scenarios);
    capacities_secs
        .iter()
        .zip(results.chunks(cases))
        .map(|(&secs, chunk)| {
            let effs: Vec<f64> = chunk
                .iter()
                .map(|r| r.as_ref().expect("valid scenario").report.sys_efficiency)
                .collect();
            BbCapacityRow {
                capacity_secs: secs,
                sys_efficiency: stats::mean(&effs),
            }
        })
        .collect()
}

/// ε sweep: period-search granularity vs periodic schedule quality.
#[derive(Debug, Clone)]
pub struct EpsilonRow {
    /// Search step ε.
    pub epsilon: f64,
    /// Candidate periods evaluated.
    pub candidates: usize,
    /// Best steady-state dilation found.
    pub dilation: f64,
}

/// Sweep ε on a fixed periodic application set. Period searches are not
/// fluid simulations, so they ride on the runner's generic parallel map
/// (one search per worker, results input-ordered).
#[must_use]
pub fn epsilon_sweep(epsilons: &[f64]) -> Vec<EpsilonRow> {
    let platform = Platform::intrepid();
    let apps: Vec<PeriodicAppSpec> = congested_moment(&platform, 17)
        .iter()
        .map(|a| PeriodicAppSpec::from_app(a).expect("generator emits periodic apps"))
        .collect();
    ScenarioRunner::new().map(epsilons, |_, &epsilon| {
        let result = PeriodSearch::new(PeriodicObjective::Dilation)
            .with_epsilon(epsilon)
            .run(&platform, &apps, InsertionHeuristic::Congestion)
            .expect("non-empty set");
        EpsilonRow {
            epsilon,
            candidates: result.candidates_tried,
            dilation: result.report.dilation,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_endpoints_recover_the_named_heuristics() {
        let rows = gamma_sweep(3, 3);
        assert_eq!(rows.len(), 3);
        // γ=0 (MaxSysEff end) should not lose SysEfficiency to γ=1
        // (MinDilation end), and vice versa for Dilation.
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        assert!(first.sys_efficiency >= last.sys_efficiency - 0.02);
        assert!(last.dilation <= first.dilation + 0.1);
    }

    #[test]
    fn more_bb_capacity_never_hurts_much() {
        let rows = bb_capacity_sweep(&[0.5, 60.0, 600.0], 2);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[2].sys_efficiency >= rows[0].sys_efficiency - 0.02,
            "600 s of buffer ({:.3}) should beat 0.5 s ({:.3})",
            rows[2].sys_efficiency,
            rows[0].sys_efficiency
        );
    }

    #[test]
    fn finer_epsilon_tries_more_candidates_and_is_no_worse() {
        let rows = epsilon_sweep(&[0.5, 0.05]);
        assert!(rows[1].candidates > rows[0].candidates);
        assert!(rows[1].dilation <= rows[0].dilation + 1e-9);
    }
}
