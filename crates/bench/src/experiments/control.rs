//! **Congestion storms** — closed-loop `control:*` scheduling vs the
//! open-loop roster under §7-style external communication spikes.
//!
//! None of the paper's policies can *react* when the shared pipe is
//! squeezed by traffic they do not control: the online heuristics keep
//! re-ranking a static model and the periodic timetables replay a plan
//! built for the full bandwidth. This experiment puts the adaptive
//! `control:pi` family (a PI feedback loop on the engine's congestion
//! telemetry, following "Mitigating Shared Storage Congestion Using
//! Control Theory") head-to-head with FairShare and the
//! Insert-In-Schedule-Cong periodic schedule on congested moments whose
//! PFS is periodically raided by a communication storm.
//!
//! The whole experiment is one declarative [`CampaignSpec`] — exported
//! as `examples/campaign_control.json` and pinned bit-for-bit by
//! `tests/campaign_spec.rs`; `tests/control_loop.rs` asserts the
//! closed-loop acceptance criterion (strictly better max-dilation than
//! FairShare at ≤ 5 % system-efficiency cost) on it.

use crate::campaign::{run_campaign, CampaignResult, CampaignSpec, PlatformSpec};
use crate::runner::ScenarioRunner;
use crate::scenario::PolicySpec;
use iosched_model::Time;
use iosched_sim::{ExternalLoad, SimConfig};
use iosched_workload::WorkloadSpec;

/// Seeds (= congested moments) the checked-in campaign averages over.
pub const STORM_SEEDS: usize = 5;

/// The storm: every 4 simulated minutes the communication traffic takes
/// 70 % of the PFS bandwidth away for 90 s — long enough for backlog to
/// build, short enough that the open-loop plans are wrong on both
/// flanks.
#[must_use]
pub fn spike_load() -> ExternalLoad {
    ExternalLoad {
        period: Time::secs(240.0),
        busy: Time::secs(90.0),
        fraction: 0.7,
    }
}

/// The policy axis: the default closed loop, a faster-gain variant, and
/// the open-loop references (uncoordinated FairShare, the paper's
/// MinDilation heuristic, the offline periodic schedule).
#[must_use]
pub fn policies() -> Vec<PolicySpec> {
    [
        "control:pi",
        "control:pi:kp=1:set=0.85",
        "fairshare",
        "mindilation",
        "periodic:cong",
    ]
    .iter()
    .map(|name| PolicySpec::parse(name).expect("roster names parse"))
    .collect()
}

/// The storm sweep as data: `intrepid × congested moments × policies ×
/// seeds`, with the spike load and telemetry export in the shared
/// engine configuration.
#[must_use]
pub fn campaign(seeds: usize) -> CampaignSpec {
    CampaignSpec {
        name: "control-storm".into(),
        platforms: vec![PlatformSpec::Preset("intrepid".into())],
        workloads: vec![WorkloadSpec::Congestion { seed: 0 }],
        policies: policies(),
        seeds: (0..seeds as u64).collect(),
        config: Some(SimConfig {
            external_load: Some(spike_load()),
            telemetry: true,
            ..SimConfig::default()
        }),
        threads: None,
    }
}

/// Execute the storm campaign (per-cell aggregates are thread-count
/// invariant).
#[must_use]
pub fn run(seeds: usize) -> CampaignResult {
    run_campaign(&campaign(seeds), &ScenarioRunner::new()).expect("control campaign is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_shape_matches_the_exported_file() {
        let spec = campaign(STORM_SEEDS);
        assert_eq!(spec.cell_count(), policies().len());
        assert_eq!(spec.total_runs(), policies().len() * STORM_SEEDS);
        let config = spec.config.as_ref().unwrap();
        assert!(config.telemetry, "cells aggregate telemetry utilization");
        assert_eq!(config.external_load, Some(spike_load()));
        spec.validate().unwrap();
    }

    #[test]
    fn storm_campaign_runs_and_aggregates_telemetry() {
        let result = run(2);
        assert_eq!(result.cells.len(), policies().len());
        for cell in &result.cells {
            assert_eq!(cell.runs, 2);
            let utilization = cell
                .utilization
                .as_ref()
                .expect("telemetry flag populates the cell aggregate");
            assert!(utilization.mean > 0.0 && utilization.mean <= 1.0 + 1e-9);
            assert!(cell.dilation.min >= 1.0);
        }
    }
}
