//! **Fig. 16** — "Dilation values for the applications from the
//! 512/256/256/32 scenario", under (a) MaxSysEff and (b) MinDilation.
//!
//! Paper: with MaxSysEff "the small applications are in general more
//! impacted by congestion than the big ones […] the big applications see
//! a decrease in their dilation"; with MinDilation "an almost uniform
//! decrease in all application dilations".

use iosched_baselines::FairShare;
use iosched_core::heuristics::{MaxSysEff, MinDilation, Priority};
use iosched_core::policy::OnlinePolicy;
use iosched_ior::{run_ior, IorConfig};
use iosched_workload::ior_profile::{fig16_scenario, scenario_apps, IorParams};

use super::fig15::vesta_platform;

/// Per-application dilation under one policy.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    /// Policy name ("ior" is the congested baseline).
    pub policy: String,
    /// One dilation per application, in scenario order (512/256/256/32).
    pub dilations: Vec<f64>,
}

/// Run the 512/256/256/32 scenario under the three §5.2 variants.
#[must_use]
pub fn run(speedup: f64, seed: u64) -> Vec<Fig16Row> {
    let platform = vesta_platform();
    let scenario = fig16_scenario();
    let apps = scenario_apps(&scenario, &platform, IorParams::default(), seed);
    let variants: Vec<(&str, Box<dyn OnlinePolicy>)> = vec![
        ("ior", Box::new(FairShare)),
        ("maxsyseff", Box::new(Priority::new(MaxSysEff))),
        ("mindilation", Box::new(Priority::new(MinDilation))),
    ];
    variants
        .into_iter()
        .map(|(name, mut policy)| {
            let mut cfg = IorConfig::new(platform.clone(), apps.clone());
            cfg.speedup = speedup;
            let out = run_ior(&cfg, policy.as_mut()).expect("valid scenario");
            let dilations = out
                .report
                .per_app
                .iter()
                .map(iosched_model::AppOutcome::dilation)
                .collect();
            Fig16Row {
                policy: name.into(),
                dilations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mindilation_is_more_uniform_than_maxsyseff() {
        let rows = run(2_000.0, 3);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.policy == name)
                .unwrap()
                .dilations
                .clone()
        };
        let spread = |d: &[f64]| {
            let max = d.iter().fold(f64::MIN, |a, &b| a.max(b));
            let min = d.iter().fold(f64::MAX, |a, &b| a.min(b));
            max - min
        };
        let ms = get("maxsyseff");
        let md = get("mindilation");
        assert_eq!(ms.len(), 4);
        assert_eq!(md.len(), 4);
        // MinDilation equalizes: its spread should not exceed MaxSysEff's
        // by much (real threads → generous tolerance).
        assert!(
            spread(&md) <= spread(&ms) + 0.5,
            "mindilation spread {:.2} vs maxsyseff {:.2}",
            spread(&md),
            spread(&ms)
        );
        // MinDilation's worst application beats MaxSysEff's worst.
        let worst = |d: &[f64]| d.iter().fold(f64::MIN, |a, &b| a.max(b));
        assert!(worst(&md) <= worst(&ms) + 0.3);
    }
}
