//! **Fig. 3** — "Scheduling three applications": the illustrative timeline
//! in which three applications finish their computes and all want the
//! shared bandwidth `B` at once.
//!
//! We recreate the situation in the simulator with the trace recorder on
//! and return the piecewise-constant allocation segments, which is
//! exactly the content of the figure's lower panel.

use iosched_core::heuristics::RoundRobin;
use iosched_model::{AppSpec, Bw, Bytes, Platform, Time};
use iosched_sim::{simulate, SimConfig, TraceSegment};

/// Trace of the three-application contention example.
#[derive(Debug, Clone)]
pub struct Fig03Result {
    /// Piecewise-constant allocation segments.
    pub segments: Vec<TraceSegment>,
    /// The platform bandwidth `B` (GiB/s) for the plot ceiling.
    pub total_bw_gib: f64,
}

/// Run the example: three equal applications, computes of different
/// lengths, all I/O bursts colliding on a 10 GiB/s PFS.
#[must_use]
pub fn run() -> Fig03Result {
    let platform = Platform::new("fig3", 300, Bw::gib_per_sec(0.05), Bw::gib_per_sec(10.0));
    let apps = vec![
        AppSpec::periodic(0, Time::ZERO, 100, Time::secs(10.0), Bytes::gib(40.0), 3),
        AppSpec::periodic(1, Time::ZERO, 100, Time::secs(12.0), Bytes::gib(40.0), 3),
        AppSpec::periodic(2, Time::ZERO, 100, Time::secs(14.0), Bytes::gib(40.0), 3),
    ];
    let out =
        simulate(&platform, &apps, &mut RoundRobin, &SimConfig::traced()).expect("valid scenario");
    Fig03Result {
        segments: out.trace.expect("trace requested").segments,
        total_bw_gib: platform.total_bw.as_gib_per_sec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_produces_shared_segments() {
        let r = run();
        assert!(!r.segments.is_empty());
        // At some point more than one application holds bandwidth
        // (5 GiB/s card limit each < 10 GiB/s PFS → pairs can overlap).
        let concurrent = r.segments.iter().filter(|s| s.grants.len() >= 2).count();
        assert!(concurrent > 0, "expected overlapping transfers");
        // And the aggregate never exceeds B.
        for s in &r.segments {
            assert!(s.total_granted().as_gib_per_sec() <= r.total_bw_gib + 1e-9);
        }
    }
}
