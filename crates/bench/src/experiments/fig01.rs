//! **Fig. 1** — "I/O throughput decrease (percentage per application,
//! over 400 applications)" on Intrepid.
//!
//! We sample congested moments on the Intrepid platform, run the native
//! (uncoordinated fair-share, no burst buffer) baseline, and measure every
//! application's effective I/O-throughput decrease relative to dedicated
//! mode. The paper's headline: decreases reach ~70 % ("a decrease in I/O
//! throughput of 67 %", abstract).

use iosched_baselines::{run_native, NativeConfig};
use iosched_model::{stats, Interference, Platform};
use iosched_workload::congestion::congested_moment;

/// Distribution of per-application throughput decrease.
#[derive(Debug, Clone)]
pub struct Fig01Result {
    /// Per-application decreases (fractions in `[0, 1]`), sorted
    /// descending — the paper plots them per application.
    pub decreases: Vec<f64>,
}

impl Fig01Result {
    /// Maximum observed decrease.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.decreases.first().copied().unwrap_or(0.0)
    }

    /// Median decrease.
    #[must_use]
    pub fn median(&self) -> f64 {
        if self.decreases.is_empty() {
            0.0
        } else {
            stats::percentile(&self.decreases, 50.0)
        }
    }
}

/// Collect at least `target_apps` application samples (the paper uses
/// 400) from successive congested moments.
#[must_use]
pub fn run(target_apps: usize) -> Fig01Result {
    let platform =
        Platform::intrepid().with_interference(Interference::default_penalty());
    let mut decreases = Vec::with_capacity(target_apps);
    let mut seed = 0u64;
    while decreases.len() < target_apps && seed < 10_000 {
        let apps = congested_moment(&platform, seed);
        let out = run_native(
            &platform,
            &apps,
            NativeConfig {
                burst_buffers: false,
            },
        )
        .expect("congested moments are valid scenarios");
        for o in &out.report.per_app {
            decreases.push(o.io_throughput_decrease());
        }
        seed += 1;
    }
    decreases.truncate(target_apps);
    decreases.sort_by(|a, b| b.total_cmp(a));
    Fig01Result { decreases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_reaches_the_paper_range() {
        let r = run(120);
        assert_eq!(r.decreases.len(), 120);
        // Headline: decreases up to ~67-70 %.
        assert!(
            r.max() > 0.5,
            "max decrease {:.2} far below the paper's ~0.67",
            r.max()
        );
        assert!(r.max() <= 1.0);
        // Congestion hurts a majority of applications.
        assert!(r.median() > 0.05, "median {:.3} suspiciously low", r.median());
        // Sorted descending.
        for w in r.decreases.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
