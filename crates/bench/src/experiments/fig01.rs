//! **Fig. 1** — "I/O throughput decrease (percentage per application,
//! over 400 applications)" on Intrepid.
//!
//! We sample congested moments on the Intrepid platform, run the native
//! (uncoordinated fair-share, no burst buffer) baseline, and measure every
//! application's effective I/O-throughput decrease relative to dedicated
//! mode. The paper's headline: decreases reach ~70 % ("a decrease in I/O
//! throughput of 67 %", abstract).

use crate::runner::ScenarioRunner;
use crate::scenario::{PolicySpec, Scenario};
use iosched_model::{stats, Interference, Platform};
use iosched_workload::congestion::congested_moment;

/// Distribution of per-application throughput decrease.
#[derive(Debug, Clone)]
pub struct Fig01Result {
    /// Per-application decreases (fractions in `[0, 1]`), sorted
    /// descending — the paper plots them per application.
    pub decreases: Vec<f64>,
}

impl Fig01Result {
    /// Maximum observed decrease.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.decreases.first().copied().unwrap_or(0.0)
    }

    /// Median decrease.
    #[must_use]
    pub fn median(&self) -> f64 {
        if self.decreases.is_empty() {
            0.0
        } else {
            stats::percentile(&self.decreases, 50.0)
        }
    }
}

/// Collect at least `target_apps` application samples (the paper uses
/// 400) from successive congested moments.
///
/// Seeds are swept in parallel batches through the [`ScenarioRunner`];
/// since results come back seed-ordered, the collected distribution is
/// identical to the old sequential sweep.
#[must_use]
pub fn run(target_apps: usize) -> Fig01Result {
    const BATCH: u64 = 16;
    let platform = Platform::intrepid().with_interference(Interference::default_penalty());
    let runner = ScenarioRunner::new();
    let mut decreases = Vec::with_capacity(target_apps);
    let mut seed = 0u64;
    while decreases.len() < target_apps && seed < 10_000 {
        // The native stack without burst buffers: uncoordinated fair
        // sharing on the penalized platform.
        let scenarios: Vec<Scenario> = (seed..seed + BATCH)
            .map(|s| {
                Scenario::new(
                    format!("fig01/{s}"),
                    platform.clone(),
                    congested_moment(&platform, s),
                    PolicySpec::FairShare,
                )
            })
            .collect();
        for result in runner.run_all(&scenarios) {
            let out = result.expect("congested moments are valid scenarios");
            for o in &out.report.per_app {
                decreases.push(o.io_throughput_decrease());
            }
        }
        seed += BATCH;
    }
    decreases.truncate(target_apps);
    decreases.sort_by(|a, b| b.total_cmp(a));
    Fig01Result { decreases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_reaches_the_paper_range() {
        let r = run(120);
        assert_eq!(r.decreases.len(), 120);
        // Headline: decreases up to ~67-70 %.
        assert!(
            r.max() > 0.5,
            "max decrease {:.2} far below the paper's ~0.67",
            r.max()
        );
        assert!(r.max() <= 1.0);
        // Congestion hurts a majority of applications.
        assert!(
            r.median() > 0.05,
            "median {:.3} suspiciously low",
            r.median()
        );
        // Sorted descending.
        for w in r.decreases.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
