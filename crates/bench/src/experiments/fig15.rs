//! **Fig. 15** — "System efficiency and dilation for different scenarios
//! on Vesta": the real-thread IOR harness per scenario, comparing plain
//! IOR (uncoordinated), MaxSysEff and MinDilation, each with and without
//! burst buffers.

use iosched_baselines::FairShare;
use iosched_core::heuristics::{MaxSysEff, MinDilation, Priority};
use iosched_core::policy::OnlinePolicy;
use iosched_ior::{run_ior, IorConfig};
use iosched_model::{Interference, Platform};
use iosched_workload::ior_profile::{scenario_apps, vesta_scenarios, IorParams, VestaScenario};

/// One (scenario, variant) observation.
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Scenario label.
    pub scenario: String,
    /// Variant name ("ior", "maxsyseff", "mindilation", "bb-ior", …).
    pub variant: String,
    /// SysEfficiency (fraction).
    pub sys_efficiency: f64,
    /// Dilation.
    pub dilation: f64,
}

/// Vesta with the disk interference the experiments observe.
#[must_use]
pub fn vesta_platform() -> Platform {
    Platform::vesta()
        .with_interference(Interference::default_penalty())
        .with_default_burst_buffer()
}

fn variants() -> Vec<(String, Box<dyn OnlinePolicy>, bool)> {
    // §5.1: Vesta uses hard disks, so the Priority variants run.
    vec![
        (
            "ior".into(),
            Box::new(FairShare) as Box<dyn OnlinePolicy>,
            false,
        ),
        (
            "maxsyseff".into(),
            Box::new(Priority::new(MaxSysEff)),
            false,
        ),
        (
            "mindilation".into(),
            Box::new(Priority::new(MinDilation)),
            false,
        ),
        ("bb-ior".into(), Box::new(FairShare), true),
        (
            "bb-maxsyseff".into(),
            Box::new(Priority::new(MaxSysEff)),
            true,
        ),
        (
            "bb-mindilation".into(),
            Box::new(Priority::new(MinDilation)),
            true,
        ),
    ]
}

/// Run one scenario through all six variants.
#[must_use]
pub fn run_scenario(scenario: &VestaScenario, speedup: f64, seed: u64) -> Vec<Fig15Row> {
    let platform = vesta_platform();
    let apps = scenario_apps(scenario, &platform, IorParams::default(), seed);
    variants()
        .into_iter()
        .map(|(name, mut policy, use_bb)| {
            let mut cfg = IorConfig::new(platform.clone(), apps.clone());
            cfg.speedup = speedup;
            cfg.use_burst_buffer = use_bb;
            let out = run_ior(&cfg, policy.as_mut()).expect("valid scenario");
            Fig15Row {
                scenario: scenario.name.clone(),
                variant: name,
                sys_efficiency: out.report.sys_efficiency,
                dilation: out.report.dilation,
            }
        })
        .collect()
}

/// Run all eleven scenarios.
#[must_use]
pub fn run(speedup: f64) -> Vec<Fig15Row> {
    vesta_scenarios()
        .iter()
        .flat_map(|s| run_scenario(s, speedup, 42))
        .collect()
}

/// Find a row.
#[must_use]
pub fn find<'a>(rows: &'a [Fig15Row], scenario: &str, variant: &str) -> Option<&'a Fig15Row> {
    rows.iter()
        .find(|r| r.scenario == scenario && r.variant == variant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congested_scenario_favors_the_heuristics() {
        // The 4×512 scenario is the most congested of Fig. 15.
        let scenario = VestaScenario::new(&[512, 512, 512, 512]);
        let rows = run_scenario(&scenario, 4_000.0, 7);
        assert_eq!(rows.len(), 6);
        let ior = find(&rows, &scenario.name, "ior").unwrap();
        let ours = find(&rows, &scenario.name, "maxsyseff").unwrap();
        // "our heuristics perform very well, better than Vesta's I/O
        // scheduler when congestion occurs" (generous tolerance — this is
        // a real-thread run).
        assert!(
            ours.sys_efficiency >= ior.sys_efficiency - 0.05,
            "maxsyseff {:.3} vs ior {:.3}",
            ours.sys_efficiency,
            ior.sys_efficiency
        );
        for r in &rows {
            assert!(r.dilation >= 1.0);
            assert!(r.sys_efficiency > 0.0 && r.sys_efficiency <= 1.0);
        }
    }
}
