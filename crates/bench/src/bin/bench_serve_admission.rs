//! Serve-path admission benchmark: what does it cost to run the engine
//! behind the daemon's protocol instead of driving it directly?
//!
//! Three measurements, recorded in `BENCH_PR8.json`:
//!
//! 1. **Submission→admission latency** — the full protocol path per
//!    accepted submission: parse the JSONL line, stamp id/release,
//!    `Simulation::offer`, write-ahead journal append with per-line
//!    flush. Mean and p99 over 10k submissions (the flush is *in* the
//!    measured path on purpose: it is the durability the daemon
//!    acknowledges).
//! 2. **Sustained admission throughput** — submissions interleaved with
//!    engine driving (the daemon's steady state), total wall over a 2k
//!    submission session including the completion run.
//! 3. **Peak allocation per resident application** — the PR 2 counting
//!    allocator around the interleaved session (lean config), peak
//!    live-bytes delta divided by the peak resident-application count.
//!
//! Honesty rules (as in BENCH_PR5/PR7): measured on whatever container
//! runs this (1 CPU core on the reference box), assertions sit far
//! below the measured values so only a genuine regression — not runner
//! variance — trips them, and the session outcome is cross-checked
//! bit-identical against `simulate_stream` over the journal before any
//! number is reported.

use iosched_core::registry::PolicyFactory;
use iosched_model::{Platform, Time};
use iosched_obs::BenchReport;
use iosched_serve::journal::{Journal, ServeSpec};
use iosched_serve::protocol::{parse_request, Request};
use iosched_serve::session::Session;
use iosched_sim::{simulate_stream, SimConfig, Simulation};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// `System` wrapped with live-bytes and peak-live-bytes counters.
struct TrackingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn phase_start() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

fn phase_peak(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

fn spec() -> ServeSpec {
    ServeSpec {
        platform: Platform::intrepid(),
        policy: PolicyFactory::parse("maxsyseff").unwrap(),
        accel: 0.0,
        config: SimConfig {
            per_app_detail: false,
            ..SimConfig::default()
        },
    }
}

fn submit_line(k: usize, release: f64) -> String {
    format!(
        r#"{{"cmd":"submit","procs":{},"work":{},"vol":{},"count":2,"release":{}}}"#,
        128 << (k % 3),
        40.0 + (k % 7) as f64,
        192.0 + 32.0 * (k % 5) as f64,
        release,
    )
}

fn journal_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("iosched-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn main() {
    let spec = spec();

    // --- 1. Per-submission admission latency (protocol path). ----------
    const LAT_N: usize = 10_000;
    let path = journal_path("latency.jsonl");
    let mut policy = spec.policy.build_online(&spec.platform).unwrap();
    let sim = Simulation::open(&spec.platform, policy.as_mut(), &spec.config).unwrap();
    let journal = Journal::create(&path, &spec).unwrap();
    let mut session = Session::new(sim, journal, &[]).unwrap();
    let lines: Vec<String> = (0..LAT_N)
        .map(|k| submit_line(k, 10.0 + k as f64))
        .collect();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(LAT_N);
    let wall = Instant::now();
    for line in &lines {
        let t0 = Instant::now();
        let Ok(Request::Submit {
            submission,
            release,
        }) = parse_request(line)
        else {
            panic!("benchmark line failed to parse");
        };
        session
            .submit(submission, release, Time::ZERO)
            .expect("accepted")
            .expect("journaled");
        latencies_ns.push(t0.elapsed().as_nanos() as u64);
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    // The session's own registry timed every journal append alongside
    // our external stopwatch — exported below as the report's metrics.
    let admission_metrics = session.metrics_snapshot(Time::ZERO);
    drop(session);
    latencies_ns.sort_unstable();
    let mean_us = latencies_ns.iter().sum::<u64>() as f64 / LAT_N as f64 / 1000.0;
    let p99_us = latencies_ns[LAT_N * 99 / 100] as f64 / 1000.0;
    let burst_rate = LAT_N as f64 / wall_secs;
    println!(
        "admission latency over {LAT_N} submissions: mean {mean_us:.1} us, p99 {p99_us:.1} us \
         ({burst_rate:.0} admissions/s burst, journal flush included)"
    );

    // --- 2+3. Interleaved session: throughput + memory per resident. ---
    const RUN_N: usize = 2_000;
    let path = journal_path("steady.jsonl");
    let baseline = phase_start();
    let mut policy = spec.policy.build_online(&spec.platform).unwrap();
    let sim = Simulation::open(&spec.platform, policy.as_mut(), &spec.config).unwrap();
    let journal = Journal::create(&path, &spec).unwrap();
    let mut session = Session::new(sim, journal, &[]).unwrap();
    let mut peak_resident = 0usize;
    let wall = Instant::now();
    for k in 0..RUN_N {
        // One arrival every 30 virtual seconds; each application spans
        // several arrivals' worth of work, so a steady resident
        // population forms and retires continuously — the daemon's
        // steady state under load.
        let release = 30.0 * (k + 1) as f64;
        let Ok(Request::Submit {
            submission,
            release: r,
        }) = parse_request(&submit_line(k, release))
        else {
            panic!("benchmark line failed to parse");
        };
        session
            .submit(submission, r, Time::ZERO)
            .expect("accepted")
            .expect("journaled");
        session.advance(Time::secs(release)).expect("advance");
        peak_resident = peak_resident.max(session.status(Time::secs(release)).live);
    }
    let (outcome, accepted) = session.finish().expect("session completes");
    let steady_wall = wall.elapsed().as_secs_f64();
    let peak_bytes = phase_peak(baseline);
    let sustained = RUN_N as f64 / steady_wall;
    let per_resident = peak_bytes as f64 / peak_resident.max(1) as f64;
    println!(
        "interleaved session: {RUN_N} submissions + {} events in {steady_wall:.3} s \
         ({sustained:.0} admissions/s sustained incl. completion run)",
        outcome.events
    );
    println!(
        "peak allocation +{peak_bytes} B at peak {peak_resident} resident apps \
         -> {:.1} KiB per resident app",
        per_resident / 1024.0
    );

    // --- Cross-check before reporting: serve path == simulate_stream. --
    let contents = Journal::load(&path).expect("journal loads");
    assert_eq!(contents.arrivals.len(), accepted);
    let mut policy = spec.policy.build_online(&spec.platform).unwrap();
    let reference = simulate_stream(
        &spec.platform,
        contents.arrivals.into_iter(),
        policy.as_mut(),
        &spec.config,
    )
    .expect("reference runs");
    assert_eq!(outcome.events, reference.events, "serve path diverged");
    assert_eq!(
        outcome.report.sys_efficiency.to_bits(),
        reference.report.sys_efficiency.to_bits(),
        "serve path diverged"
    );
    println!("cross-check: serve session bit-identical to simulate_stream over the journal");

    // Bars far below the measured values (see module docs).
    assert!(
        mean_us < 500.0,
        "mean admission latency {mean_us:.1} us >= 500 us"
    );
    assert!(
        p99_us < 5_000.0,
        "p99 admission latency {p99_us:.1} us >= 5 ms"
    );
    assert!(
        burst_rate > 5_000.0,
        "burst admission rate {burst_rate:.0}/s <= 5000/s"
    );
    assert!(
        sustained > 500.0,
        "sustained admission rate {sustained:.0}/s <= 500/s"
    );
    assert!(
        per_resident < 256.0 * 1024.0,
        "per-resident-app peak allocation {per_resident:.0} B >= 256 KiB"
    );

    // Provenance-stamped artifact payload (BENCH_*.json schema); the
    // metrics block is the latency-phase session's own registry —
    // 10k `serve.journal.append.ns` samples measured from the inside.
    use serde::{Serialize, Value};
    let mut report = BenchReport::new(
        "bench_serve_admission",
        10,
        "cargo run --release -p iosched-bench --bin bench_serve_admission",
    )
    .with_results(Value::Map(vec![
        ("admission_latency_mean_us".into(), Value::Num(mean_us)),
        ("admission_latency_p99_us".into(), Value::Num(p99_us)),
        ("burst_admissions_per_sec".into(), Value::Num(burst_rate)),
        ("sustained_admissions_per_sec".into(), Value::Num(sustained)),
        (
            "peak_alloc_delta_bytes".into(),
            (peak_bytes as u64).to_value(),
        ),
        (
            "peak_resident_apps".into(),
            (peak_resident as u64).to_value(),
        ),
        (
            "peak_alloc_per_resident_app_kib".into(),
            Value::Num(per_resident / 1024.0),
        ),
    ]));
    report.metrics = admission_metrics;
    println!("{}", report.to_json_pretty());
}
