//! Regenerates **Fig. 8**: Priority-MaxSysEff and Priority-MinDilation vs
//! the Intrepid scheduler and the upper limit, per congested case.

use iosched_bench::experiments::tables::{run, Machine};
use iosched_bench::report::{dil, pct, Table};

fn main() {
    let limit = iosched_bench::runs_from_env(56);
    let result = run(Machine::Intrepid, limit);
    let series = [
        "priority-maxsyseff",
        "priority-mindilation",
        "intrepid",
        "upper-limit",
    ];
    let mut t = Table::new(["case", "scheduler", "SysEfficiency %", "Dilation"]);
    for c in result
        .cases
        .iter()
        .filter(|c| series.contains(&c.scheduler.as_str()))
    {
        t.row([
            c.case.to_string(),
            c.scheduler.clone(),
            pct(c.sys_efficiency),
            dil(c.dilation),
        ]);
    }
    t.print(&format!(
        "Fig. 8 — Priority heuristics vs Intrepid over {limit} congested cases"
    ));
}
