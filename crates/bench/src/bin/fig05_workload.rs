//! Regenerates **Fig. 5**: Intrepid-2013-shaped workload characteristics
//! from the synthetic Darshan year.

use iosched_bench::experiments::fig05;
use iosched_bench::report::{pct, Table};

fn main() {
    let jobs = iosched_bench::runs_from_env(20_000);
    let rows = fig05::run(jobs, 2013);
    let mut t = Table::new(["category", "jobs", "usage share %", "mean I/O time %"]);
    for r in rows {
        t.row([
            format!("{:?}", r.category),
            r.jobs.to_string(),
            pct(r.usage_share),
            pct(r.mean_io_fraction),
        ]);
    }
    t.print(&format!(
        "Fig. 5 — synthetic year of {jobs} jobs (paper: usage/day and %I/O per type)"
    ));
}
