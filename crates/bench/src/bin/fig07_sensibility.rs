//! Regenerates **Fig. 7**: impact of the computation sensibility (0–30 %)
//! on SysEfficiency and Dilation of MinDilation / MaxSysEff / MinMax-0.5.

use iosched_bench::experiments::fig07;
use iosched_bench::report::{dil, pct, Table};

fn main() {
    let runs = iosched_bench::runs_from_env(50);
    let rows = fig07::run(runs);
    let mut t = Table::new(["sensibility %", "policy", "SysEfficiency %", "Dilation"]);
    for r in &rows {
        t.row([
            r.sensibility_pct.to_string(),
            r.policy.clone(),
            pct(r.sys_efficiency),
            dil(r.dilation),
        ]);
    }
    t.print(&format!(
        "Fig. 7 — sensibility sweep ({runs} mixes/point; paper: 'almost no impact')"
    ));
}
