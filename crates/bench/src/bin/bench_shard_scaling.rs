//! Multi-process shard-scaling benchmark: the load sweep
//! (`examples/campaign_stream.json` shape) executed by 1/2/4/8
//! single-threaded shard *processes* (the binary re-executes itself in
//! `--shard-child` mode, files-only IPC through a partial directory),
//! merged with `shard::merge_dir` and checked bit-identical to the
//! in-process [`run_campaign`] reference at every point.
//!
//! Reports, per shard count: wall-clock seconds, aggregate cells/s,
//! per-shard CPU milliseconds and peak RSS (from the clean-exit footers
//! the shards leave behind), plus `projected_scaling` =
//! `sum(cpu) / max(cpu)` — the speedup the process fan-out delivers on
//! a machine with at least as many cores as shards. On a single-core
//! container the wall-clock column cannot show the fan-out win (the
//! shards time-slice one core); the projection is derived from measured
//! per-shard CPU time, not an estimate of the work.
//!
//! Seed count scales with `REPRO_RUNS` / first CLI argument (default 3,
//! the checked-in `campaign_stream.json` shape).

use iosched_bench::campaign::{run_campaign, CampaignResult, CampaignSpec};
use iosched_bench::experiments::load_sweep;
use iosched_bench::runner::ScenarioRunner;
use iosched_bench::shard::{merge_dir, run_shard, ShardFooter};
use serde::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

fn num(x: f64) -> Value {
    Value::Num(x)
}

fn opt_num(x: Option<u64>) -> Value {
    #[allow(clippy::cast_precision_loss)]
    x.map_or(Value::Null, |v| Value::Num(v as f64))
}

fn shard_child(args: &[String]) -> Result<(), String> {
    let [spec_path, index, of, dir] = args else {
        return Err("--shard-child needs SPEC INDEX OF DIR".into());
    };
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = CampaignSpec::from_json(&text)?;
    let index: usize = index.parse().map_err(|_| format!("bad index '{index}'"))?;
    let of: usize = of.parse().map_err(|_| format!("bad of '{of}'"))?;
    let runner = ScenarioRunner::with_threads(1);
    run_shard(&spec, index, of, Path::new(dir), &runner, |_, _, _| {})?;
    Ok(())
}

struct Point {
    shards: usize,
    wall_secs: f64,
    footers: Vec<ShardFooter>,
}

fn run_point(
    exe: &Path,
    spec_path: &Path,
    base: &Path,
    shards: usize,
    reference: &CampaignResult,
) -> Result<Point, String> {
    let dir = base.join(format!("shards-{shards}"));
    let _ = std::fs::remove_dir_all(&dir);
    let started = Instant::now();
    let children: Vec<_> = (0..shards)
        .map(|i| {
            Command::new(exe)
                .arg("--shard-child")
                .arg(spec_path)
                .arg(i.to_string())
                .arg(shards.to_string())
                .arg(&dir)
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| format!("spawn shard {i}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    for (i, mut child) in children.into_iter().enumerate() {
        let status = child.wait().map_err(|e| format!("wait shard {i}: {e}"))?;
        if !status.success() {
            return Err(format!("shard {i}/{shards} failed: {status}"));
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let merged = merge_dir(&dir)?;
    assert_eq!(
        &merged.result, reference,
        "{shards}-shard merge is not bit-identical to the in-process run"
    );
    let mut footers = merged.footers;
    footers.sort_by_key(|f| f.index);
    assert_eq!(footers.len(), shards, "a shard exited without its footer");
    std::fs::remove_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    Ok(Point {
        shards,
        wall_secs,
        footers,
    })
}

#[allow(clippy::cast_precision_loss)]
fn report(points: &[Point], cells: usize, single_wall: f64) -> Value {
    let rows = points
        .iter()
        .map(|p| {
            let cpu: Vec<u64> = p.footers.iter().filter_map(|f| f.cpu_ms).collect();
            let projected = if cpu.is_empty() || cpu.iter().max() == Some(&0) {
                Value::Null
            } else {
                num(cpu.iter().sum::<u64>() as f64 / *cpu.iter().max().unwrap() as f64)
            };
            Value::Map(vec![
                ("shards".into(), num(p.shards as f64)),
                ("wall_secs".into(), num(p.wall_secs)),
                ("cells_per_sec".into(), num(cells as f64 / p.wall_secs)),
                ("projected_scaling_from_cpu".into(), projected),
                (
                    "cpu_ms_per_shard".into(),
                    Value::Seq(p.footers.iter().map(|f| opt_num(f.cpu_ms)).collect()),
                ),
                (
                    "peak_rss_kib_per_shard".into(),
                    Value::Seq(p.footers.iter().map(|f| opt_num(f.peak_rss_kib)).collect()),
                ),
            ])
        })
        .collect();
    Value::Map(vec![
        ("cells".into(), num(cells as f64)),
        ("single_process_wall_secs".into(), num(single_wall)),
        ("points".into(), Value::Seq(rows)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--shard-child") {
        if let Err(e) = shard_child(&args[1..]) {
            eprintln!("shard child: {e}");
            std::process::exit(1);
        }
        return;
    }

    let seeds = iosched_bench::runs_from_env(3);
    let spec = load_sweep::campaign(seeds);
    let base = std::env::temp_dir().join(format!("iosched-shard-scaling-{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("temp dir");
    let spec_path: PathBuf = base.join("campaign.json");
    std::fs::write(&spec_path, spec.to_json().expect("spec serializes")).expect("write spec");
    let exe = std::env::current_exe().expect("own executable");

    eprintln!(
        "load sweep: {} blocks, {} cells, {} runs; in-process reference...",
        spec.block_count(),
        spec.cell_count(),
        spec.total_runs()
    );
    let started = Instant::now();
    let reference = run_campaign(&spec, &ScenarioRunner::with_threads(1)).expect("reference run");
    let single_wall = started.elapsed().as_secs_f64();
    eprintln!("reference: {single_wall:.2}s single-threaded in-process");

    let mut points = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let point = run_point(&exe, &spec_path, &base, shards, &reference).expect("scaling point");
        eprintln!(
            "{} shard(s): {:.2}s wall, bit-identical merge",
            shards, point.wall_secs
        );
        points.push(point);
    }

    let json = serde_json::to_string_pretty(&report(&points, reference.cells.len(), single_wall))
        .expect("report serializes");
    println!("{json}");
    std::fs::remove_dir_all(&base).expect("cleanup");
}
