//! Regenerates **Table 1**: averages over the Intrepid congested moments
//! for every heuristic (± Priority), the Intrepid scheduler and the upper
//! limit.

use iosched_bench::experiments::tables::{run, Machine};
use iosched_bench::report::{dil, Table};

fn main() {
    let limit = iosched_bench::runs_from_env(56);
    let result = run(Machine::Intrepid, limit);
    let mut t = Table::new(["scheduler", "Dilation (min)", "SysEfficiency (max)"]);
    for r in &result.rows {
        t.row([
            r.scheduler.clone(),
            dil(r.dilation),
            format!("{:.2}", r.sys_efficiency_pct),
        ]);
    }
    t.print(&format!(
        "Table 1 — averages over {limit} Intrepid congested moments \
         (paper: MaxSysEff 2.46/85.35 … MinDilation 1.63/70.45, Intrepid 2.55/71.12, upper 91.59)"
    ));
}
