//! Peak-allocation / throughput comparison of the two campaign execution
//! strategies on a 1600-scenario sweep (1 platform × 1 congestion
//! workload template × 8 policies × 200 seeds):
//!
//! * **collect-then-aggregate** — the pre-campaign shape every figure
//!   runner used: materialize all `Scenario`s up front, `run_all` into a
//!   `Vec<SimOutcome>`, then aggregate per cell;
//! * **run_fold streaming** — `run_campaign`: scenarios expand lazily,
//!   workloads materialize on the workers, outcomes fold into per-cell
//!   `Summary` aggregates in input order and are dropped immediately.
//!
//! A counting global allocator reports the peak live-bytes delta of each
//! phase; both paths are checked to produce bit-identical per-cell means
//! before anything is reported. Results are recorded in `BENCH_PR2.json`.

use iosched_bench::campaign::{run_campaign, CampaignSpec, PlatformSpec};
use iosched_bench::runner::ScenarioRunner;
use iosched_bench::scenario::{PolicySpec, Scenario};
use iosched_core::heuristics::PolicyKind;
use iosched_model::stats::Summary;
use iosched_workload::WorkloadSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// `System` wrapped with live-bytes and peak-live-bytes counters.
struct TrackingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// Reset the peak to the current live level and return a phase token.
fn phase_start() -> (usize, Instant) {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    (live, Instant::now())
}

/// Peak bytes above the phase baseline and elapsed seconds.
fn phase_end((baseline, t0): (usize, Instant)) -> (usize, f64) {
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    (peak, t0.elapsed().as_secs_f64())
}

fn campaign() -> CampaignSpec {
    CampaignSpec {
        name: "bench-fold".into(),
        platforms: vec![PlatformSpec::Preset("vesta".into())],
        workloads: vec![WorkloadSpec::Congestion { seed: 0 }],
        policies: PolicyKind::fig6_roster()
            .into_iter()
            .map(PolicySpec::Kind)
            .collect(),
        seeds: (0..200).collect(),
        config: None,
        threads: None,
    }
}

fn main() {
    let spec = campaign();
    let runner = ScenarioRunner::new();
    let rpc = spec.runs_per_cell();
    println!(
        "campaign: {} runs in {} cells, {} threads",
        spec.total_runs(),
        spec.cell_count(),
        runner.threads()
    );

    // --- Path A: collect-then-aggregate (the pre-campaign shape). ------
    let token = phase_start();
    let scenarios: Vec<Scenario> = spec
        .scenarios()
        .map(|s| s.expect("campaign scenarios build"))
        .collect();
    let outcomes = runner.run_all(&scenarios);
    let mut collect_means = Vec::with_capacity(spec.cell_count());
    for chunk in outcomes.chunks(rpc) {
        let effs: Vec<f64> = chunk
            .iter()
            .map(|r| r.as_ref().expect("valid scenario").report.sys_efficiency)
            .collect();
        collect_means.push(Summary::from_slice(&effs).expect("non-empty cell").mean);
    }
    drop(outcomes);
    drop(scenarios);
    let (collect_peak, collect_secs) = phase_end(token);

    // --- Path B: run_fold streaming (run_campaign). ---------------------
    let token = phase_start();
    let result = run_campaign(&spec, &runner).expect("campaign runs");
    let (fold_peak, fold_secs) = phase_end(token);
    let fold_means: Vec<f64> = result.cells.iter().map(|c| c.sys_efficiency.mean).collect();

    assert_eq!(collect_means.len(), fold_means.len());
    for (a, b) in collect_means.iter().zip(&fold_means) {
        assert_eq!(a.to_bits(), b.to_bits(), "paths diverged");
    }

    let runs = spec.total_runs() as f64;
    println!(
        "collect-then-aggregate: peak +{collect_peak} B, {collect_secs:.3} s ({:.0} runs/s)",
        runs / collect_secs
    );
    println!(
        "run_fold streaming:     peak +{fold_peak} B, {fold_secs:.3} s ({:.0} runs/s)",
        runs / fold_secs
    );
    println!(
        "peak-allocation ratio collect/fold: {:.2}x",
        collect_peak as f64 / fold_peak.max(1) as f64
    );
}
