//! Regenerates **Fig. 16**: per-application dilations in the
//! 512/256/256/32 scenario under MaxSysEff and MinDilation (and the
//! congested IOR baseline).

use iosched_bench::experiments::fig16;
use iosched_bench::report::{dil, Table};

fn main() {
    let rows = fig16::run(1_000.0, 42);
    let mut t = Table::new([
        "policy",
        "app0 (512)",
        "app1 (256)",
        "app2 (256)",
        "app3 (32)",
    ]);
    for r in &rows {
        let mut cells = vec![r.policy.clone()];
        cells.extend(r.dilations.iter().map(|&d| dil(d)));
        t.row(cells);
    }
    t.print(
        "Fig. 16 — per-application dilation, 512/256/256/32 \
         (paper: MaxSysEff favors big apps; MinDilation lowers all nearly uniformly)",
    );
}
