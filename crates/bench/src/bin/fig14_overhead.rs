//! Regenerates **Fig. 14**: execution-time overhead of the modified IOR
//! benchmark (request/grant protocol, allow-all scheduler) per Vesta
//! scenario, with and without burst buffers.

use iosched_bench::experiments::fig14;
use iosched_bench::report::Table;

fn main() {
    // Lower speedup = more faithful timing; 1000× keeps the full sweep
    // under a couple of minutes.
    let rows = fig14::run(1_000.0);
    let mut t = Table::new(["scenario", "apps", "overhead % (no BB)", "overhead % (BB)"]);
    for r in &rows {
        t.row([
            r.scenario.clone(),
            r.apps.to_string(),
            format!("{:.2}", r.overhead_no_bb * 100.0),
            format!("{:.2}", r.overhead_bb * 100.0),
        ]);
    }
    t.print("Fig. 14 — scheduler overhead per scenario (paper: 1–5.3 %, <3 % for ≥3 apps)");
}
