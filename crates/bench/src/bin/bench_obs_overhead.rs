//! The obs overhead bar: observation must be close to free.
//!
//! Runs the `stream_10k_sim` workload (the criterion row of
//! `sim_throughput`: 10k-application Poisson stream on intrepid, lean
//! config, MinDilation) through the engine three times per round — bare,
//! traced with a compact ring, traced with a large ring — alternating
//! to cancel thermal and cache drift, best-of-N on each side. The bar:
//! the compact-ring minimum within 3% of the untraced minimum. Before
//! any number is reported the outcomes are checked bit-identical
//! (events, end time, objective bits): the trace is observation-only by
//! contract, and this binary re-proves it on every run.
//!
//! The large-ring number is *recorded but not asserted*: the per-push
//! cost is flat, but a ring much bigger than L2 cycles its whole
//! footprint through the cache of a hot loop that otherwise fits (each
//! record is ~56 bytes, so 4096 records stream ~230 KiB of writes), and
//! that cost is a property of the chosen capacity, not of the
//! instrumentation. The compact default keeps always-on tracing in the
//! few-percent band; export-oriented runs (`iosched trace`) can afford
//! any capacity because they run once, not in a benchmark loop.
//!
//! Emits the `BENCH_PR9.json` payload (a provenance-stamped
//! [`BenchReport`]) on stdout; the human-readable lines go to stderr so
//! `bench_obs_overhead > BENCH_PR9.json` just works.

use iosched_bench::experiments::load_sweep::stream_10k;
use iosched_core::heuristics::MinDilation;
use iosched_model::{AppSpec, Platform};
use iosched_obs::{BenchReport, Registry};
use iosched_sim::{SimConfig, SimOutcome, Simulation};
use serde::{Serialize, Value};
use std::time::Instant;

const ROUNDS: usize = 15;
const TRACE_CAP: usize = 512;
const TRACE_CAP_LARGE: usize = 4096;
const OVERHEAD_BAR: f64 = 0.03;

fn run(
    platform: &Platform,
    apps: &[AppSpec],
    config: &SimConfig,
    trace_cap: Option<usize>,
) -> (SimOutcome, f64) {
    let mut policy = MinDilation;
    let mut sim = Simulation::from_stream(platform, apps.iter().cloned(), &mut policy, config)
        .expect("stream spec is valid");
    if let Some(cap) = trace_cap {
        sim.enable_decision_trace(cap);
    }
    let t0 = Instant::now();
    let outcome = sim.run_to_completion().expect("stream runs");
    (outcome, t0.elapsed().as_secs_f64())
}

fn assert_bit_identical(bare: &SimOutcome, traced: &SimOutcome) {
    assert_eq!(bare.events, traced.events, "trace changed the event count");
    assert_eq!(
        bare.end_time.get().to_bits(),
        traced.end_time.get().to_bits(),
        "trace changed the end time"
    );
    assert_eq!(
        bare.report.sys_efficiency.to_bits(),
        traced.report.sys_efficiency.to_bits(),
        "trace changed SysEfficiency"
    );
    assert_eq!(
        bare.report.dilation.to_bits(),
        traced.report.dilation.to_bits(),
        "trace changed Dilation"
    );
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn main() {
    let platform = Platform::intrepid();
    let config = SimConfig {
        per_app_detail: false,
        ..SimConfig::default()
    };
    let apps: Vec<AppSpec> = stream_10k()
        .app_source(&platform)
        .expect("stream spec is valid")
        .collect();
    eprintln!("workload: {} ({} apps)", stream_10k().label(), apps.len());

    let registry = Registry::new();
    let hist_off = registry.histogram("bench.run.bare.ns");
    let hist_on = registry.histogram("bench.run.traced.ns");
    let hist_on_large = registry.histogram("bench.run.traced_large.ns");

    let mut min_off = f64::INFINITY;
    let mut min_on = f64::INFINITY;
    let mut min_on_large = f64::INFINITY;
    let mut trace_total = 0u64;
    for round in 0..ROUNDS {
        let (bare, off_secs) = run(&platform, &apps, &config, None);
        let (traced, on_secs) = run(&platform, &apps, &config, Some(TRACE_CAP));
        let (traced_large, on_large_secs) = run(&platform, &apps, &config, Some(TRACE_CAP_LARGE));
        assert_bit_identical(&bare, &traced);
        assert_bit_identical(&bare, &traced_large);
        let trace = traced.decision_trace.expect("trace was attached");
        trace_total = trace.total();
        hist_off.record((off_secs * 1e9) as u64);
        hist_on.record((on_secs * 1e9) as u64);
        hist_on_large.record((on_large_secs * 1e9) as u64);
        min_off = min_off.min(off_secs);
        min_on = min_on.min(on_secs);
        min_on_large = min_on_large.min(on_large_secs);
        eprintln!(
            "round {round}: bare {off_secs:.3} s, traced@{TRACE_CAP} {on_secs:.3} s, \
             traced@{TRACE_CAP_LARGE} {on_large_secs:.3} s \
             ({} events, {trace_total} trace records, ring holds {})",
            bare.events,
            trace.len(),
        );
    }

    let overhead = min_on / min_off - 1.0;
    let overhead_large = min_on_large / min_off - 1.0;
    eprintln!(
        "best-of-{ROUNDS}: bare {min_off:.3} s, traced@{TRACE_CAP} {min_on:.3} s \
         ({:+.2}%), traced@{TRACE_CAP_LARGE} {min_on_large:.3} s ({:+.2}%, recorded only)",
        overhead * 100.0,
        overhead_large * 100.0
    );
    assert!(
        overhead <= OVERHEAD_BAR,
        "obs overhead bar missed: {:.2}% > {:.0}%",
        overhead * 100.0,
        OVERHEAD_BAR * 100.0
    );

    let report = BenchReport::new(
        "bench_obs_overhead",
        10,
        "cargo run --release -p iosched-bench --bin bench_obs_overhead > BENCH_PR9.json",
    )
    .with_results(Value::Map(vec![
        ("bare_min_secs".into(), Value::Num(min_off)),
        ("traced_min_secs".into(), Value::Num(min_on)),
        ("traced_large_min_secs".into(), Value::Num(min_on_large)),
        ("overhead_fraction".into(), Value::Num(overhead)),
        (
            "overhead_fraction_large_ring".into(),
            Value::Num(overhead_large),
        ),
        ("overhead_bar".into(), Value::Num(OVERHEAD_BAR)),
        ("rounds".into(), (ROUNDS as u64).to_value()),
        ("trace_capacity".into(), (TRACE_CAP as u64).to_value()),
        (
            "trace_capacity_large".into(),
            (TRACE_CAP_LARGE as u64).to_value(),
        ),
        ("trace_records_total".into(), trace_total.to_value()),
        (
            "bit_identity".into(),
            Value::Str(
                "checked every round: events, end_time, sys_efficiency and \
                 dilation bits identical with the trace on (both ring sizes) \
                 and off"
                    .into(),
            ),
        ),
    ]))
    .with_registry(&registry);
    println!("{}", report.to_json_pretty());
}
