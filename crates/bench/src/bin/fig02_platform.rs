//! Regenerates **Fig. 2**: the platform model constants (Intrepid, Mira,
//! Vesta) and the derived PFS saturation point.

use iosched_bench::experiments::fig02;
use iosched_bench::report::Table;

fn main() {
    let rows = fig02::run();
    let mut t = Table::new([
        "platform",
        "nodes N",
        "b (GiB/s)",
        "B (GiB/s)",
        "saturation nodes",
    ]);
    for r in rows {
        t.row([
            r.name,
            r.procs.to_string(),
            format!("{:.3}", r.proc_bw_gib),
            format!("{:.1}", r.total_bw_gib),
            r.saturation_nodes.to_string(),
        ]);
    }
    t.print("Fig. 2 — model instantiation (paper: Intrepid architecture diagram)");
}
