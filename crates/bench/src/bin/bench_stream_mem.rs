//! Peak-allocation comparison of the two ways to run a 10k-application
//! Poisson stream (~20 concurrent applications at a time):
//!
//! * **naive full materialization** — the closed-roster shape: collect
//!   the whole stream into a `Vec<AppSpec>`, install every
//!   `AppRuntime` up-front (`O(total)` specs + runtimes + progress
//!   tables) and keep the full per-application outcome detail;
//! * **lazy stream** — `simulate_stream` over the stream iterator with
//!   [`SimConfig::per_app_detail`] off: applications are admitted on
//!   release into a recycled slot arena and retired into streaming
//!   aggregates, so peak allocation tracks *concurrency*, not the
//!   stream length.
//!
//! A counting global allocator (the PR 2 instrument) reports each
//! phase's peak live-bytes delta. Before anything is reported, a third
//! run — lazy with the detail *on* — is checked bit-identical to the
//! naive path: the lazy engine is the same simulation, only its memory
//! shape changes. Results are recorded in `BENCH_PR5.json`.
//!
//! The open-system semantics (admission on release, per-application
//! feasibility) require the stream path in both cases: "naive" here
//! means *materialize and retain everything*, exactly what a closed
//! engine would have to do.

use iosched_bench::experiments::load_sweep::stream_10k;
use iosched_model::{AppSpec, Platform};
use iosched_sim::{simulate_stream, SimConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// `System` wrapped with live-bytes and peak-live-bytes counters.
struct TrackingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// Reset the peak to the current live level and return a phase token.
fn phase_start() -> (usize, Instant) {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    (live, Instant::now())
}

/// Peak bytes above the phase baseline and elapsed seconds.
fn phase_end((baseline, t0): (usize, Instant)) -> (usize, f64) {
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    (peak, t0.elapsed().as_secs_f64())
}

fn main() {
    let platform = Platform::intrepid();
    let spec = stream_10k();
    println!("workload: {}", spec.label());

    // --- Path A: naive full materialization (collect + retain all). ----
    let token = phase_start();
    let apps: Vec<AppSpec> = spec
        .app_source(&platform)
        .expect("stream spec is valid")
        .collect();
    let mut policy = iosched_core::heuristics::MinDilation;
    let naive = simulate_stream(
        &platform,
        apps.iter().cloned(),
        &mut policy,
        &SimConfig::default(), // full per-app detail retained
    )
    .expect("stream runs");
    let naive_apps = apps.len();
    drop(apps);
    let (naive_peak, naive_secs) = phase_end(token);

    // --- Path B: lazy stream, aggregates only. --------------------------
    let lean_config = SimConfig {
        per_app_detail: false,
        ..SimConfig::default()
    };
    let token = phase_start();
    let mut policy = iosched_core::heuristics::MinDilation;
    let lean = simulate_stream(
        &platform,
        spec.app_source(&platform).expect("stream spec is valid"),
        &mut policy,
        &lean_config,
    )
    .expect("stream runs");
    let (lean_peak, lean_secs) = phase_end(token);

    // --- Cross-check: the lazy engine is the same simulation. -----------
    let mut policy = iosched_core::heuristics::MinDilation;
    let detailed = simulate_stream(
        &platform,
        spec.app_source(&platform).expect("stream spec is valid"),
        &mut policy,
        &SimConfig::default(),
    )
    .expect("stream runs");
    assert_eq!(naive.events, detailed.events, "paths diverged");
    assert_eq!(
        naive.report.sys_efficiency.to_bits(),
        detailed.report.sys_efficiency.to_bits(),
        "paths diverged"
    );
    assert_eq!(naive.events, lean.events, "lean run diverged");
    assert!((naive.report.sys_efficiency - lean.report.sys_efficiency).abs() < 1e-12);
    assert_eq!(
        naive.report.dilation.to_bits(),
        lean.report.dilation.to_bits()
    );

    let steady = lean.steady.expect("stream runs attach steady state");
    println!(
        "stream: {} apps, {} events, mean queue {:.1}, peak concurrency ~{:.0}",
        naive_apps,
        lean.events,
        steady.mean_queue,
        steady.mean_queue.ceil()
    );
    println!(
        "naive full materialization: peak +{naive_peak} B, {naive_secs:.3} s ({:.0} apps/s)",
        naive_apps as f64 / naive_secs
    );
    println!(
        "lazy stream:                peak +{lean_peak} B, {lean_secs:.3} s ({:.0} apps/s)",
        naive_apps as f64 / lean_secs
    );
    let ratio = naive_peak as f64 / lean_peak.max(1) as f64;
    println!("peak-allocation ratio naive/lazy: {ratio:.2}x");
    assert!(
        ratio >= 10.0,
        "bounded-memory bar missed: {ratio:.2}x < 10x"
    );

    // Throughput floor: the lazy run clocks ~2.7M events/s on the
    // reference container (BENCH_PR6.json); the bar sits far below the
    // measurement so only a genuine ~2x engine regression — not CI-runner
    // variance — trips it.
    let events_per_sec = lean.events as f64 / lean_secs;
    println!("lazy stream engine throughput: {events_per_sec:.0} events/s");
    assert!(
        events_per_sec >= 1_000_000.0,
        "events/s floor missed: {events_per_sec:.0} < 1,000,000"
    );

    // Provenance-stamped artifact payload (BENCH_*.json schema): phase
    // wall times through the obs registry, results inline.
    use iosched_obs::{BenchReport, Registry};
    use serde::{Serialize, Value};
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let registry = {
        let registry = Registry::new();
        registry
            .histogram("bench.naive.ns")
            .record((naive_secs * 1e9) as u64);
        registry
            .histogram("bench.lazy.ns")
            .record((lean_secs * 1e9) as u64);
        registry
    };
    let report = BenchReport::new(
        "bench_stream_mem",
        10,
        "cargo run --release -p iosched-bench --bin bench_stream_mem",
    )
    .with_results(Value::Map(vec![
        ("apps".into(), (naive_apps as u64).to_value()),
        ("events".into(), (lean.events as u64).to_value()),
        ("naive_peak_bytes".into(), (naive_peak as u64).to_value()),
        ("lazy_peak_bytes".into(), (lean_peak as u64).to_value()),
        ("peak_ratio_naive_over_lazy".into(), Value::Num(ratio)),
        ("events_per_sec".into(), Value::Num(events_per_sec)),
    ]))
    .with_registry(&registry);
    println!("{}", report.to_json_pretty());
}
