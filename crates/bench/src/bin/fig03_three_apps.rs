//! Regenerates **Fig. 3**: the bandwidth-sharing timeline of three
//! applications competing for the PFS.

use iosched_bench::experiments::fig03;
use iosched_bench::report::Table;

fn main() {
    let result = fig03::run();
    let mut t = Table::new(["t start (s)", "t end (s)", "allocation (app@GiB/s)"]);
    for seg in &result.segments {
        let grants = seg
            .grants
            .iter()
            .map(|(id, bw)| format!("{}@{:.1}", id.0, bw.as_gib_per_sec()))
            .collect::<Vec<_>>()
            .join(" ");
        t.row([
            format!("{:.2}", seg.start.as_secs()),
            format!("{:.2}", seg.end.as_secs()),
            if grants.is_empty() {
                "-".into()
            } else {
                grants
            },
        ]);
    }
    t.print(&format!(
        "Fig. 3 — three applications sharing B = {:.0} GiB/s",
        result.total_bw_gib
    ));
}
