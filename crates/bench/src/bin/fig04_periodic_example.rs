//! Regenerates **Fig. 4**: a periodic schedule for the paper's four
//! example applications, built by the §3.2.3 machinery — now driven as a
//! campaign whose policy is the offline
//! `periodic:cong:eps=0.02:tmax=1.5` registry factory, replayed in the
//! fluid engine (`examples/campaign_fig4.json` is the same experiment as
//! a file for `iosched campaign`).

use iosched_bench::experiments::fig04;
use iosched_bench::report::{dil, pct, Table};

fn main() {
    let result = fig04::run();
    println!(
        "period T = {:.2} s   SysEfficiency = {}%   Dilation = {}   (steady state)",
        result.schedule.period.as_secs(),
        pct(result.report.sys_efficiency),
        dil(result.report.dilation),
    );
    println!(
        "engine replay over {} periods ({}): SysEfficiency = {}%   Dilation = {}",
        fig04::REPLAY_PERIODS,
        result.simulated.policy,
        pct(result.simulated.sys_efficiency.mean),
        dil(result.simulated.dilation.mean),
    );
    let mut t = Table::new(["app", "instance", "compute", "I/O window", "bw (units/s)"]);
    const MAX_ROWS_PER_APP: usize = 5;
    for plan in &result.schedule.plans {
        for inst in plan.instances.iter().take(MAX_ROWS_PER_APP) {
            t.row([
                plan.app.to_string(),
                inst.index.to_string(),
                format!(
                    "[{:.1}, {:.1})",
                    inst.compute_start.as_secs(),
                    inst.compute_end.as_secs()
                ),
                format!(
                    "[{:.1}, {:.1})",
                    inst.io_start.as_secs(),
                    inst.io_end.as_secs()
                ),
                format!("{:.1}", inst.io_bw.get()),
            ]);
        }
        if plan.instances.len() > MAX_ROWS_PER_APP {
            t.row([
                plan.app.to_string(),
                "…".into(),
                format!(
                    "(+{} more instances)",
                    plan.instances.len() - MAX_ROWS_PER_APP
                ),
                "…".into(),
                "…".into(),
            ]);
        }
    }
    t.print("Fig. 4 — one regular period (paper: n_per = 3, 3, 1, 1)");
    println!("n_per = {:?}", result.n_per);
}
