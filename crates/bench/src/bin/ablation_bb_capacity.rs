//! Ablation: burst-buffer capacity sweep for the native scheduler — how
//! much buffer would Intrepid need to match the global heuristics?

use iosched_bench::experiments::ablations::bb_capacity_sweep;
use iosched_bench::report::{pct, Table};

fn main() {
    let cases = iosched_bench::runs_from_env(8);
    let capacities = [1.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0];
    let rows = bb_capacity_sweep(&capacities, cases);
    let mut t = Table::new(["BB capacity (s of B)", "native SysEfficiency %"]);
    for r in &rows {
        t.row([format!("{:.0}", r.capacity_secs), pct(r.sys_efficiency)]);
    }
    t.print(&format!(
        "Ablation — native scheduler vs burst-buffer capacity ({cases} Intrepid cases)"
    ));
}
