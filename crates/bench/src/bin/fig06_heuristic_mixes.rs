//! Regenerates **Fig. 6**: SysEfficiency and Dilation of the eight online
//! policies over the three application mixes (mean of N random mixes;
//! the paper uses 200).

use iosched_bench::experiments::fig06;
use iosched_bench::report::{dil, pct, Table};

fn main() {
    let runs = iosched_bench::runs_from_env(200);
    let rows = fig06::run(runs);
    for (label, desc) in [
        ("a", "10 large applications, I/O ratio 20 %"),
        ("b", "50 small + 5 large, I/O ratio 20 %"),
        ("c", "50 small + 5 large, I/O ratio 35 %"),
    ] {
        let mut t = Table::new(["policy", "SysEfficiency %", "Dilation", "upper limit %"]);
        for r in rows.iter().filter(|r| r.mix == label) {
            t.row([
                r.policy.clone(),
                pct(r.sys_efficiency),
                dil(r.dilation),
                pct(r.upper_limit),
            ]);
        }
        t.print(&format!("Fig. 6({label}) — {desc} ({runs} mixes)"));
    }
}
