//! Regenerates **Table 2**: averages over the Mira congested moments.

use iosched_bench::experiments::tables::{run, Machine};
use iosched_bench::report::{dil, Table};

fn main() {
    let limit = iosched_bench::runs_from_env(11);
    let result = run(Machine::Mira, limit);
    let mut t = Table::new(["scheduler", "Dilation (min)", "SysEfficiency (max)"]);
    for r in &result.rows {
        t.row([
            r.scheduler.clone(),
            dil(r.dilation),
            format!("{:.2}", r.sys_efficiency_pct),
        ]);
    }
    t.print(&format!(
        "Table 2 — averages over {limit} Mira congested moments \
         (paper: MaxSysEff 1.82/73.96 … MinDilation 1.27/61.62, Mira 2.01/64.26, upper 85.04)"
    ));
}
