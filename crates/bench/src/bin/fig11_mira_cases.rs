//! Regenerates **Fig. 11**: Priority heuristics vs the Mira scheduler and
//! the upper limit over the Mira congested cases.

use iosched_bench::experiments::tables::{run, Machine};
use iosched_bench::report::{dil, pct, Table};

fn main() {
    let limit = iosched_bench::runs_from_env(11);
    let result = run(Machine::Mira, limit);
    let series = [
        "priority-maxsyseff",
        "priority-mindilation",
        "mira",
        "upper-limit",
    ];
    let mut t = Table::new(["case", "scheduler", "SysEfficiency %", "Dilation"]);
    for c in result
        .cases
        .iter()
        .filter(|c| series.contains(&c.scheduler.as_str()))
    {
        t.row([
            c.case.to_string(),
            c.scheduler.clone(),
            pct(c.sys_efficiency),
            dil(c.dilation),
        ]);
    }
    t.print(&format!(
        "Fig. 11 — Priority heuristics vs Mira over {limit} congested cases"
    ));
}
