//! Regenerates **Fig. 9**: the Priority MinMax-γ family (γ = 0.25, 0.5,
//! 0.75) between Priority-MaxSysEff and Priority-MinDilation on the
//! Intrepid congested cases.

use iosched_bench::experiments::tables::{run, Machine};
use iosched_bench::report::{dil, pct, Table};

fn main() {
    let limit = iosched_bench::runs_from_env(56);
    let result = run(Machine::Intrepid, limit);
    let series = [
        "priority-maxsyseff",
        "priority-minmax-0.25",
        "priority-minmax-0.50",
        "priority-minmax-0.75",
        "priority-mindilation",
    ];
    let mut t = Table::new(["case", "scheduler", "SysEfficiency %", "Dilation"]);
    for c in result
        .cases
        .iter()
        .filter(|c| series.contains(&c.scheduler.as_str()))
    {
        t.row([
            c.case.to_string(),
            c.scheduler.clone(),
            pct(c.sys_efficiency),
            dil(c.dilation),
        ]);
    }
    t.print(&format!(
        "Fig. 9 — Priority MinMax-γ sweep over {limit} Intrepid congested cases"
    ));
}
