//! Regenerates **Fig. 1**: per-application I/O throughput decrease under
//! congestion on Intrepid (400 applications).
//!
//! Usage: `cargo run --release -p iosched-bench --bin fig01_throughput_decrease [apps]`

use iosched_bench::experiments::fig01;
use iosched_bench::report::Table;
use iosched_model::stats::Histogram;

fn main() {
    let apps = iosched_bench::runs_from_env(400);
    let result = fig01::run(apps);

    let mut hist = Histogram::new(0.0, 1.0, 10);
    for &d in &result.decreases {
        hist.add(d);
    }
    let mut t = Table::new(["decrease bin", "applications"]);
    for (center, count) in hist.centers() {
        t.row([
            format!(
                "{:>4.0}-{:>3.0}%",
                (center - 0.05) * 100.0,
                (center + 0.05) * 100.0
            ),
            count.to_string(),
        ]);
    }
    t.print(&format!(
        "Fig. 1 — I/O throughput decrease over {apps} applications (paper: up to ~70 %)"
    ));
    println!(
        "max decrease: {:.1}%   median: {:.1}%",
        result.max() * 100.0,
        result.median() * 100.0
    );
}
