//! Regenerates **Fig. 15**: SysEfficiency and Dilation on Vesta for every
//! scenario × {IOR, MaxSysEff, MinDilation} × {no BB, BB}, using the
//! real-thread IOR harness.

use iosched_bench::experiments::fig15;
use iosched_bench::report::{dil, pct, Table};

fn main() {
    let rows = fig15::run(1_000.0);
    let mut t = Table::new(["scenario", "variant", "SysEfficiency %", "Dilation"]);
    for r in &rows {
        t.row([
            r.scenario.clone(),
            r.variant.clone(),
            pct(r.sys_efficiency),
            dil(r.dilation),
        ]);
    }
    t.print(
        "Fig. 15 — Vesta scenarios (paper: with ≥3 apps the heuristics without BB \
         match or beat the native scheduler with BB)",
    );
}
