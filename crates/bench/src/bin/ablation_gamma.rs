//! Ablation: fine-grained MinMax-γ sweep (extends Figs. 9/12).

use iosched_bench::experiments::ablations::gamma_sweep;
use iosched_bench::report::{dil, pct, Table};

fn main() {
    let cases = iosched_bench::runs_from_env(12);
    let rows = gamma_sweep(11, cases);
    let mut t = Table::new(["gamma", "SysEfficiency %", "Dilation"]);
    for r in &rows {
        t.row([
            format!("{:.1}", r.gamma),
            pct(r.sys_efficiency),
            dil(r.dilation),
        ]);
    }
    t.print(&format!(
        "Ablation — MinMax-γ sweep over {cases} Intrepid congested cases \
         (γ=0 ≡ MaxSysEff, γ=1 ≡ MinDilation)"
    ));
}
