//! Ablation: period-search ε granularity vs periodic schedule quality
//! ("the larger Tmax and the smaller ε, the better the results, but the
//! longer the execution time", §3.2.3). One campaign over
//! `periodic:cong:eps=<ε>` policies: each winning timetable is replayed
//! in the fluid engine on the same Intrepid congested moment.

use iosched_bench::experiments::ablations::epsilon_sweep;
use iosched_bench::report::{dil, Table};

fn main() {
    let rows = epsilon_sweep(&[0.5, 0.2, 0.1, 0.05, 0.02, 0.01]);
    let mut t = Table::new(["epsilon", "candidate periods", "replayed Dilation"]);
    for r in &rows {
        t.row([
            format!("{:.2}", r.epsilon),
            r.candidates.to_string(),
            dil(r.dilation),
        ]);
    }
    t.print("Ablation — period-search granularity (Insert-In-Schedule-Cong, Intrepid case 17)");
}
