//! Declarative experiment campaigns: every experiment is data.
//!
//! A [`ScenarioSpec`] is the serializable counterpart of a
//! [`Scenario`] — platform, workload, policy and engine configuration,
//! all as *specs* rather than materialized objects. A [`CampaignSpec`]
//! describes a whole sweep as the cartesian product
//! `platforms × workloads × policies × seeds` and expands it lazily:
//! scenarios are built (and their workloads materialized) on the worker
//! threads as the runner reaches them, never all at once.
//!
//! [`run_campaign`] executes a campaign through the streaming
//! [`ScenarioRunner::fold`] and aggregates outcomes into one
//! [`CellSummary`] per `(platform, workload, policy)` cell: each
//! `(platform, workload, seed)` block materializes its workload once,
//! shares it across every policy, and folds into the in-flight group's
//! sample buffers — a 200-mix × 8-policy Fig. 6 campaign holds
//! `O(cells)` summaries plus one group of samples, not `O(runs)`
//! simulation outcomes.

use crate::runner::ScenarioRunner;
use crate::scenario::{PolicySpec, Scenario};
use iosched_baselines::native_platform;
use iosched_model::stats::Summary;
use iosched_sim::{simulate, simulate_open, SimConfig, SimOutcome};
use iosched_workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Resolve a platform preset by name (`intrepid`, `mira`, `vesta`) — the
/// one name table shared by the CLI, campaign files and experiments.
pub fn platform_preset(name: &str) -> Result<iosched_model::Platform, String> {
    match name {
        "intrepid" => Ok(iosched_model::Platform::intrepid()),
        "mira" => Ok(iosched_model::Platform::mira()),
        "vesta" => Ok(iosched_model::Platform::vesta()),
        other => Err(format!(
            "unknown platform '{other}' (expected intrepid, mira or vesta)"
        )),
    }
}

/// Serializable machine description: a preset name, its "native" variant
/// (interference penalty + default burst buffer, the Tables 1–2
/// baseline), or a fully custom [`iosched_model::Platform`].
///
/// Serde representation: `"intrepid"`, `"native:intrepid"`, or the
/// inline platform object.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformSpec {
    /// A stock preset.
    Preset(String),
    /// [`native_platform`] applied to a preset.
    Native(String),
    /// An explicit platform description.
    Custom(iosched_model::Platform),
}

impl PlatformSpec {
    /// Resolve into a concrete platform.
    pub fn build(&self) -> Result<iosched_model::Platform, String> {
        match self {
            Self::Preset(name) => platform_preset(name),
            Self::Native(name) => platform_preset(name).map(native_platform),
            Self::Custom(platform) => {
                platform.validate().map_err(|e| e.to_string())?;
                Ok(platform.clone())
            }
        }
    }

    /// Report label (`intrepid`, `native:intrepid`, or the custom name).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Preset(name) => name.clone(),
            Self::Native(name) => format!("native:{name}"),
            Self::Custom(platform) => platform.name.clone(),
        }
    }
}

impl serde::Serialize for PlatformSpec {
    fn to_value(&self) -> serde::Value {
        match self {
            Self::Preset(name) => serde::Value::Str(name.clone()),
            Self::Native(name) => serde::Value::Str(format!("native:{name}")),
            Self::Custom(platform) => platform.to_value(),
        }
    }
}

impl serde::Deserialize for PlatformSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(s) = v.as_str() {
            let spec = match s.strip_prefix("native:") {
                Some(base) => Self::Native(base.to_string()),
                None => Self::Preset(s.to_string()),
            };
            // Fail at parse time, not deep inside a worker thread.
            spec.build().map_err(serde::Error::custom)?;
            return Ok(spec);
        }
        if v.as_map().is_some() {
            return iosched_model::Platform::from_value(v).map(Self::Custom);
        }
        Err(serde::Error::custom(
            "expected a platform name string or an inline platform object",
        ))
    }
}

/// One simulate-one-scenario unit of work, as pure data. The
/// serializable counterpart of [`Scenario`]: [`ScenarioSpec::build`]
/// resolves the platform, materializes the workload and instantiates the
/// policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Free-form tag carried into reports.
    pub label: String,
    /// Machine description.
    pub platform: PlatformSpec,
    /// Workload description.
    pub workload: WorkloadSpec,
    /// Policy description.
    pub policy: PolicySpec,
    /// Engine configuration (`None` = [`SimConfig::default`]).
    pub config: Option<SimConfig>,
}

impl ScenarioSpec {
    /// Materialize into a runnable [`Scenario`]. Stream workloads mark
    /// the scenario open-system, so the runner admits applications on
    /// release instead of requiring the closed processor budget.
    pub fn build(&self) -> Result<Scenario, String> {
        let platform = self.platform.build()?;
        let apps = self.workload.materialize(&platform)?;
        Ok(
            Scenario::new(self.label.clone(), platform, apps, self.policy)
                .with_config(self.config.clone().unwrap_or_default())
                .open(self.workload.is_open()),
        )
    }
}

/// A whole sweep as data: the cartesian product
/// `platforms × workloads × policies × seeds`, expanded lazily in
/// cell-major order (platform, then workload, then policy, seeds
/// innermost). The workload entries are *templates*: each seed rebinds
/// them via [`WorkloadSpec::with_seed`]. An empty `seeds` list means
/// "one run per cell, templates used as-is".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (report headers, scenario labels).
    pub name: String,
    /// Platform axis.
    pub platforms: Vec<PlatformSpec>,
    /// Workload-template axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Policy axis.
    pub policies: Vec<PolicySpec>,
    /// Seed axis (may be empty: run each template once, unseeded).
    pub seeds: Vec<u64>,
    /// Engine configuration shared by every run (`None` = default).
    pub config: Option<SimConfig>,
    /// Worker-thread override for the CLI (`None` = environment).
    pub threads: Option<usize>,
}

impl CampaignSpec {
    /// Parse from JSON and validate.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let spec: Self = serde_json::from_str(s).map_err(|e| e.to_string())?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serialize as pretty JSON. Validates first: a programmatically
    /// built spec with degenerate periodic knobs would otherwise
    /// serialize into a name string [`CampaignSpec::from_json`] rejects
    /// — better to refuse at write time than to produce an unreadable
    /// file.
    pub fn to_json(&self) -> Result<String, String> {
        self.validate()?;
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Check every axis: non-empty, resolvable platforms, structurally
    /// valid workload templates, a sane thread count.
    pub fn validate(&self) -> Result<(), String> {
        if self.platforms.is_empty() {
            return Err("campaign needs at least one platform".into());
        }
        if self.workloads.is_empty() {
            return Err("campaign needs at least one workload".into());
        }
        if self.policies.is_empty() {
            return Err("campaign needs at least one policy".into());
        }
        if self.threads == Some(0) {
            return Err("thread count must be at least 1".into());
        }
        for platform in &self.platforms {
            platform.build()?;
        }
        for workload in &self.workloads {
            workload
                .validate()
                .map_err(|e| format!("workload '{}': {e}", workload.label()))?;
        }
        for policy in &self.policies {
            // Parsed policies are always valid; this catches
            // programmatically built factories with degenerate periodic
            // knobs before they serialize into an unreadable file or
            // reach a worker.
            policy.validate()?;
        }
        Ok(())
    }

    /// Number of aggregation cells (`platforms × workloads × policies`).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.platforms.len() * self.workloads.len() * self.policies.len()
    }

    /// Runs per cell: one per seed (at least one).
    #[must_use]
    pub fn runs_per_cell(&self) -> usize {
        self.seeds.len().max(1)
    }

    /// Total simulate-one-scenario runs the campaign expands into.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.cell_count() * self.runs_per_cell()
    }

    /// Number of seed blocks — the unit of parallel (and sharded) work.
    /// Block `b` covers seed slot `b % runs_per_cell()` of
    /// workload-group `b / runs_per_cell()` (groups in platform-major,
    /// workload-minor order) and runs every policy over one shared
    /// workload materialization.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.platforms.len() * self.workloads.len() * self.runs_per_cell()
    }

    /// Decompose a run index (input order) into axis indices
    /// `(platform, workload, policy, seed_slot)`.
    #[must_use]
    pub fn decompose(&self, idx: usize) -> (usize, usize, usize, usize) {
        let rpc = self.runs_per_cell();
        let cell = idx / rpc;
        let seed_slot = idx % rpc;
        let per_platform = self.workloads.len() * self.policies.len();
        let p = cell / per_platform;
        let rem = cell % per_platform;
        (
            p,
            rem / self.policies.len(),
            rem % self.policies.len(),
            seed_slot,
        )
    }

    /// The workload template `w` bound to seed slot `j`.
    #[must_use]
    pub fn bound_workload(&self, w: usize, seed_slot: usize) -> WorkloadSpec {
        match self.seeds.get(seed_slot) {
            Some(&seed) => self.workloads[w].with_seed(seed),
            None => self.workloads[w].clone(),
        }
    }

    /// The spec of run `idx`.
    ///
    /// # Panics
    /// Panics when `idx >= total_runs()`.
    #[must_use]
    pub fn scenario_spec(&self, idx: usize) -> ScenarioSpec {
        assert!(idx < self.total_runs(), "run index out of range");
        let (p, w, pol, j) = self.decompose(idx);
        let seed_tag = self
            .seeds
            .get(j)
            .map_or_else(String::new, |s| format!("/{s}"));
        ScenarioSpec {
            label: format!(
                "{}/{}/{}/{}{seed_tag}",
                self.name,
                self.platforms[p].label(),
                self.workloads[w].label(),
                self.policies[pol].name(),
            ),
            platform: self.platforms[p].clone(),
            workload: self.bound_workload(w, j),
            policy: self.policies[pol],
            config: self.config.clone(),
        }
    }

    /// Lazily expand into scenario specs, in run order.
    pub fn scenario_specs(&self) -> impl Iterator<Item = ScenarioSpec> + '_ {
        (0..self.total_runs()).map(|idx| self.scenario_spec(idx))
    }

    /// Lazily expand into runnable scenarios (platform resolution and
    /// workload materialization happen per item, as the iterator is
    /// advanced).
    pub fn scenarios(&self) -> impl Iterator<Item = Result<Scenario, String>> + '_ {
        self.scenario_specs().map(|spec| spec.build())
    }

    /// Labels of the aggregation cells, in cell order. Policies are
    /// keyed by [`PolicySpec::serde_name`] (full precision), so a fine γ
    /// sweep whose display names collide after rounding still yields
    /// distinct cell labels.
    #[must_use]
    pub fn cell_labels(&self) -> Vec<(String, String, String)> {
        let mut labels = Vec::with_capacity(self.cell_count());
        for platform in &self.platforms {
            for workload in &self.workloads {
                for policy in &self.policies {
                    labels.push((platform.label(), workload.label(), policy.serde_name()));
                }
            }
        }
        labels
    }
}

/// The raw per-run numbers a campaign aggregates — one value per
/// metric, extracted from a [`SimOutcome`] the moment it finishes.
///
/// This is the unit the sharded partial format (`crate::shard`) carries:
/// cell summaries are *derived* state (`Summary::from_slice` over a
/// cell's runs) whose mean/std depend on the fold order at the ulp
/// level, so shards persist the raw metrics instead and the merge
/// reducer replays the exact single-process fold. Optional metrics
/// mirror [`SimOutcome`]: `utilization` is present iff the run carried a
/// telemetry summary, `queue`/`stretch` iff it carried a steady-state
/// summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// SysEfficiency (fraction).
    pub sys_efficiency: f64,
    /// Dilation.
    pub dilation: f64,
    /// Congestion-free upper limit (fraction).
    pub upper_limit: f64,
    /// Makespan in seconds (`end_time`, horizon-safe).
    pub makespan_secs: f64,
    /// Time-weighted mean delivered utilization, if telemetry was on.
    pub utilization: Option<f64>,
    /// Steady-state mean I/O-queue length, if a steady window applied.
    pub queue: Option<f64>,
    /// Steady-state mean per-application stretch, same presence as
    /// `queue`.
    pub stretch: Option<f64>,
}

impl RunMetrics {
    /// Extract the campaign-level metrics from one finished run.
    #[must_use]
    pub fn from_outcome(outcome: &SimOutcome) -> Self {
        Self {
            sys_efficiency: outcome.report.sys_efficiency,
            dilation: outcome.report.dilation,
            upper_limit: outcome.report.upper_limit,
            // `end_time` equals `report.makespan()` bit-for-bit on
            // completed runs (the engine's last event is the last
            // completion), and unlike the report fold it stays correct
            // when the per-app detail is off (empty `per_app` would fold
            // to 0) or a horizon cut the run.
            makespan_secs: outcome.end_time.as_secs(),
            utilization: outcome.telemetry.as_ref().map(|t| t.mean_utilization),
            queue: outcome.steady.as_ref().map(|s| s.mean_queue),
            stretch: outcome.steady.as_ref().map(|s| s.mean_stretch),
        }
    }
}

/// Aggregates of one `(platform, workload, policy)` cell over its seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Platform label.
    pub platform: String,
    /// Workload-template label.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Runs aggregated.
    pub runs: usize,
    /// SysEfficiency (fraction) over the seeds.
    pub sys_efficiency: Summary,
    /// Dilation over the seeds.
    pub dilation: Summary,
    /// Congestion-free upper limit (fraction) over the seeds.
    pub upper_limit: Summary,
    /// Makespan in seconds over the seeds.
    pub makespan_secs: Summary,
    /// Time-weighted mean delivered utilization per run, over the seeds
    /// (present iff the campaign's [`SimConfig::telemetry`] flag asked
    /// every run for a telemetry summary).
    pub utilization: Option<Summary>,
    /// Steady-state mean I/O-queue length per run, over the seeds
    /// (present iff every run attached a steady summary — stream
    /// workloads, or a campaign-wide `warmup`/`horizon` window). The
    /// load-sweep saturation curves read queue growth off this.
    pub queue: Option<Summary>,
    /// Steady-state mean per-application stretch per run, over the
    /// seeds (same presence rule as `queue`).
    pub stretch: Option<Summary>,
}

/// Output of [`run_campaign`]: one summary per cell, in cell order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Campaign name.
    pub name: String,
    /// Runs executed.
    pub total_runs: usize,
    /// Per-cell aggregates.
    pub cells: Vec<CellSummary>,
}

impl CampaignResult {
    /// Find a cell by workload label and policy name (first platform
    /// match).
    #[must_use]
    pub fn cell(&self, workload: &str, policy: &str) -> Option<&CellSummary> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.policy == policy)
    }

    /// Pool one policy's per-run dilations across every cell (platforms
    /// × workloads) via [`Summary::merge`] — the sharded-aggregation
    /// view: each cell is one shard, the pooled summary is the summary
    /// of all of that policy's runs. `None` for an unknown policy.
    #[must_use]
    pub fn pooled_dilation(&self, policy: &str) -> Option<Summary> {
        let mut acc = Summary::empty();
        for cell in self.cells.iter().filter(|c| c.policy == policy) {
            acc.merge(&cell.dilation);
        }
        (acc.n > 0).then_some(acc)
    }
}

/// Streaming per-cell accumulator: holds one cell's samples while its
/// runs stream in, then drains into a [`CellSummary`].
#[derive(Default)]
struct CellBuffer {
    effs: Vec<f64>,
    dils: Vec<f64>,
    uppers: Vec<f64>,
    spans: Vec<f64>,
    utils: Vec<f64>,
    queues: Vec<f64>,
    stretches: Vec<f64>,
}

impl CellBuffer {
    fn push(&mut self, run: &RunMetrics) {
        self.effs.push(run.sys_efficiency);
        self.dils.push(run.dilation);
        self.uppers.push(run.upper_limit);
        self.spans.push(run.makespan_secs);
        if let Some(util) = run.utilization {
            self.utils.push(util);
        }
        if let Some(queue) = run.queue {
            self.queues.push(queue);
        }
        if let Some(stretch) = run.stretch {
            self.stretches.push(stretch);
        }
    }

    fn summarize(&mut self, labels: &(String, String, String)) -> CellSummary {
        // All-or-nothing presence: the telemetry flag and the steady
        // window are campaign-wide, so a partially-populated buffer
        // would mean runs disagreed.
        let optional = |xs: &[f64], runs: usize| {
            (xs.len() == runs)
                .then(|| Summary::from_slice(xs))
                .flatten()
        };
        let runs = self.effs.len();
        let summary = CellSummary {
            platform: labels.0.clone(),
            workload: labels.1.clone(),
            policy: labels.2.clone(),
            runs,
            sys_efficiency: Summary::from_slice(&self.effs).expect("non-empty cell"),
            dilation: Summary::from_slice(&self.dils).expect("non-empty cell"),
            upper_limit: Summary::from_slice(&self.uppers).expect("non-empty cell"),
            makespan_secs: Summary::from_slice(&self.spans).expect("non-empty cell"),
            utilization: optional(&self.utils, runs),
            queue: optional(&self.queues, runs),
            stretch: optional(&self.stretches, runs),
        };
        self.effs.clear();
        self.dils.clear();
        self.uppers.clear();
        self.spans.clear();
        self.utils.clear();
        self.queues.clear();
        self.stretches.clear();
        summary
    }
}

/// The campaign's canonical cell fold, shared by [`run_campaign`] and
/// the shard merge reducer (`crate::shard`): feed every seed block's
/// [`RunMetrics`] in **ascending block order** and it produces the
/// per-cell summaries bit-for-bit identically regardless of where the
/// blocks were computed. Ascending block order is the pinned canonical
/// merge order — `Summary::from_slice` means/stds are sensitive to
/// sample order at the ulp level, so any reducer that wants
/// bit-identity with the single-process run must replay this fold, not
/// re-merge finished summaries.
pub(crate) struct CellFold {
    rpc: usize,
    n_policies: usize,
    labels: Vec<(String, String, String)>,
    cells: Vec<CellSummary>,
    /// One buffer per policy of the `(platform, workload)` group in
    /// flight.
    group: Vec<CellBuffer>,
}

impl CellFold {
    pub(crate) fn new(spec: &CampaignSpec) -> Self {
        Self {
            rpc: spec.runs_per_cell(),
            n_policies: spec.policies.len(),
            labels: spec.cell_labels(),
            cells: Vec::with_capacity(spec.cell_count()),
            group: (0..spec.policies.len())
                .map(|_| CellBuffer::default())
                .collect(),
        }
    }

    /// Fold one seed block's runs (one [`RunMetrics`] per policy, in
    /// policy order). Blocks must arrive in ascending block order.
    pub(crate) fn push_block(&mut self, b: usize, runs: &[RunMetrics]) {
        debug_assert_eq!(runs.len(), self.n_policies);
        for (buffer, run) in self.group.iter_mut().zip(runs) {
            buffer.push(run);
        }
        if (b + 1).is_multiple_of(self.rpc) {
            // The group's last seed block: emit its cells in policy
            // order (= cell order).
            let group = b / self.rpc;
            for (pol, buffer) in self.group.iter_mut().enumerate() {
                let cell = group * self.n_policies + pol;
                self.cells.push(buffer.summarize(&self.labels[cell]));
            }
        }
    }

    /// Cells finished so far, in cell order.
    pub(crate) fn cells(&self) -> &[CellSummary] {
        &self.cells
    }

    /// Drain into the finished cell list.
    pub(crate) fn into_cells(self) -> Vec<CellSummary> {
        self.cells
    }
}

/// Marker for blocks skipped because an earlier block already failed —
/// never surfaced to callers, only used to keep the real error message.
const ABORTED: &str = "\u{0}aborted";

/// Streaming seed-block executor shared by [`run_campaign`] and
/// [`fold_outcomes`].
///
/// The unit of parallel work is one **seed block** — a
/// `(platform, workload, seed)` triple: the workload is materialized
/// *once* per block and every policy runs over the shared application
/// list (mirroring what the hand-written figure runners did, instead of
/// regenerating the same mix once per policy). The flip side of the
/// shared materialization is the parallel grain: a campaign with few
/// seed blocks but many policies (a wide γ sweep over a handful of
/// cases) exposes only `blocks` units of parallelism, each running its
/// policies sequentially.
///
/// Blocks stream back in input order; `fold` receives each block's
/// outcomes as `(block index, Vec<SimOutcome>)` (one outcome per policy,
/// in policy order) and is never called after an error. Once any block
/// fails, the remaining queued blocks return immediately instead of
/// simulating, and the first executed error (with its scenario label) is
/// reported. Note the tradeoff: the short-circuit means *which* error
/// surfaces when several blocks would fail can vary with worker timing —
/// a later block's failure may abort an earlier queued one before it
/// runs. Successful results stay bit-deterministic; only the failure
/// message is timing-dependent.
fn fold_blocks<A, F>(
    spec: &CampaignSpec,
    runner: &ScenarioRunner,
    init: A,
    fold: F,
) -> Result<A, String>
where
    F: FnMut(A, usize, &[SimOutcome]) -> A,
{
    let blocks: Vec<usize> = (0..spec.block_count()).collect();
    fold_block_subset(spec, runner, &blocks, init, fold)
}

/// [`fold_blocks`] over an arbitrary subset of the campaign's seed
/// blocks, identified by their **global** block indices — the shard
/// execution primitive. Blocks stream back in `blocks` order (each
/// block's simulation is bit-identical wherever and with whomever it
/// runs: the workload is rebound from the spec's seed, never from
/// neighbouring blocks), and `fold` receives the global block index.
pub(crate) fn fold_block_subset<A, F>(
    spec: &CampaignSpec,
    runner: &ScenarioRunner,
    blocks: &[usize],
    init: A,
    mut fold: F,
) -> Result<A, String>
where
    F: FnMut(A, usize, &[SimOutcome]) -> A,
{
    spec.validate()?;
    let total = spec.block_count();
    if let Some(&bad) = blocks.iter().find(|&&b| b >= total) {
        return Err(format!(
            "block index {bad} out of range (campaign has {total} blocks)"
        ));
    }
    let platforms: Vec<iosched_model::Platform> = spec
        .platforms
        .iter()
        .map(PlatformSpec::build)
        .collect::<Result<_, _>>()?;
    let config = spec.config.clone().unwrap_or_default();
    let rpc = spec.runs_per_cell();
    let n_workloads = spec.workloads.len();
    let abort = std::sync::atomic::AtomicBool::new(false);

    let (acc, error) = runner.fold(
        blocks.iter().copied(),
        |_, &b| -> Result<Vec<SimOutcome>, String> {
            use std::sync::atomic::Ordering;
            if abort.load(Ordering::Relaxed) {
                return Err(ABORTED.into());
            }
            let group = b / rpc;
            let (p, w, j) = (group / n_workloads, group % n_workloads, b % rpc);
            let workload = spec.bound_workload(w, j);
            let block_label = || {
                let seed_tag = spec
                    .seeds
                    .get(j)
                    .map_or_else(String::new, |s| format!("/{s}"));
                format!(
                    "{}/{}/{}{seed_tag}",
                    spec.name,
                    spec.platforms[p].label(),
                    workload.label()
                )
            };
            let run_all = || -> Result<Vec<SimOutcome>, String> {
                let apps = workload
                    .materialize(&platforms[p])
                    .map_err(|e| format!("{}: {e}", block_label()))?;
                // Stream workloads run under open-system semantics
                // (admission on release, per-app feasibility).
                let run = if workload.is_open() {
                    simulate_open
                } else {
                    simulate
                };
                spec.policies
                    .iter()
                    .map(|policy_spec| {
                        // Scenario-aware instantiation (stage 2 of the
                        // registry): offline `periodic:*` policies build
                        // their schedule right here, against the one
                        // workload materialization this seed block shares
                        // across the whole policy axis.
                        let mut policy = policy_spec
                            .build(&platforms[p], &apps)
                            .map_err(|e| format!("{}/{e}", block_label()))?;
                        run(&platforms[p], &apps, policy.as_mut(), &config).map_err(|e| {
                            format!("{}/{}: {e}", block_label(), policy_spec.serde_name())
                        })
                    })
                    .collect()
            };
            run_all().inspect_err(|_| abort.store(true, Ordering::Relaxed))
        },
        (init, None::<String>),
        |(acc, error), i, result| {
            if error.is_some() {
                return (acc, error);
            }
            match result {
                Ok(outcomes) => (fold(acc, blocks[i], &outcomes), None),
                // Skip the abort marker: the block carrying the real
                // error message is folded too (every produced result is).
                Err(e) if e == ABORTED => (acc, None),
                Err(e) => (acc, Some(e)),
            }
        },
    );
    match error {
        Some(e) => Err(e),
        None => Ok(acc),
    }
}

/// Stream every run's outcome of a campaign through `fold`, with
/// workloads materialized once per seed block and shared across the
/// policy axis.
///
/// `fold` is called once per run with the run's expansion index (the
/// [`CampaignSpec::scenario_spec`] index) and its outcome. Calls arrive
/// in deterministic *block* order — all policies of one
/// `(platform, workload, seed)` block before the next block — which is
/// not ascending run order; use the index to place results.
pub fn fold_outcomes<A, F>(
    spec: &CampaignSpec,
    runner: &ScenarioRunner,
    init: A,
    mut fold: F,
) -> Result<A, String>
where
    F: FnMut(A, usize, &SimOutcome) -> A,
{
    let rpc = spec.runs_per_cell();
    let n_policies = spec.policies.len();
    fold_blocks(spec, runner, init, |mut acc, b, outcomes| {
        let (group, j) = (b / rpc, b % rpc);
        for (pol, outcome) in outcomes.iter().enumerate() {
            acc = fold(acc, (group * n_policies + pol) * rpc + j, outcome);
        }
        acc
    })
}

/// Execute a campaign on `runner`, folding outcomes into per-cell
/// summaries as they stream back in input order.
///
/// Built on the seed-block executor ([`fold_blocks`]): the fold holds
/// the sample buffers of the one `(platform, workload)` group currently
/// in flight plus the finished [`CellSummary`]s —
/// `O(cells + policies × seeds)` numbers, never `O(runs)` simulation
/// outcomes. Outcomes are folded in the same `(cell, seed)` order a
/// sequential per-scenario loop produces, so the aggregates are
/// bit-identical to it and thread-count invariant.
pub fn run_campaign(
    spec: &CampaignSpec,
    runner: &ScenarioRunner,
) -> Result<CampaignResult, String> {
    run_campaign_observed(spec, runner, |_| {})
}

/// [`run_campaign`] with a progress hook: `observer` is called once per
/// finished cell, in cell order, the moment the cell's last seed block
/// folds in — so long sweeps can stream per-cell rows instead of going
/// silent until the whole result is buffered. The returned result is
/// identical to [`run_campaign`]'s.
pub fn run_campaign_observed(
    spec: &CampaignSpec,
    runner: &ScenarioRunner,
    mut observer: impl FnMut(&CellSummary),
) -> Result<CampaignResult, String> {
    let mut seen = 0usize;
    let fold = fold_blocks(
        spec,
        runner,
        CellFold::new(spec),
        |mut fold, b, outcomes| {
            let runs: Vec<RunMetrics> = outcomes.iter().map(RunMetrics::from_outcome).collect();
            fold.push_block(b, &runs);
            for cell in &fold.cells()[seen..] {
                observer(cell);
            }
            seen = fold.cells().len();
            fold
        },
    )?;
    Ok(CampaignResult {
        name: spec.name.clone(),
        total_runs: spec.total_runs(),
        cells: fold.into_cells(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_core::heuristics::{BasePolicy, PolicyKind};
    use iosched_workload::MixConfig;

    fn small_campaign() -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            platforms: vec![PlatformSpec::Preset("vesta".into())],
            workloads: vec![
                WorkloadSpec::Congestion { seed: 0 },
                WorkloadSpec::Mix {
                    config: MixConfig::fig6a(),
                    seed: 0,
                },
            ],
            policies: vec![
                PolicySpec::Kind(PolicyKind::plain(BasePolicy::MaxSysEff)),
                PolicySpec::FairShare,
            ],
            seeds: vec![1, 2, 3],
            config: None,
            threads: None,
        }
    }

    #[test]
    fn expansion_counts_and_order() {
        let spec = small_campaign();
        assert_eq!(spec.cell_count(), 4);
        assert_eq!(spec.total_runs(), 12);
        // Seeds are innermost: the first three runs share a cell.
        let specs: Vec<ScenarioSpec> = spec.scenario_specs().collect();
        assert_eq!(specs.len(), 12);
        assert_eq!(specs[0].policy, specs[2].policy);
        assert_eq!(specs[0].workload, spec.workloads[0].with_seed(1));
        assert_eq!(specs[1].workload, spec.workloads[0].with_seed(2));
        // Cell boundary: run 3 flips to the second policy.
        assert_eq!(specs[3].policy, PolicySpec::FairShare);
        // Workload flips after both policies finished their seeds.
        assert_eq!(specs[6].workload, spec.workloads[1].with_seed(1));
        // Decompose is the inverse of the construction order.
        for (idx, s) in specs.iter().enumerate() {
            let (p, w, pol, j) = spec.decompose(idx);
            assert_eq!(s.platform, spec.platforms[p]);
            assert_eq!(s.policy, spec.policies[pol]);
            assert_eq!(s.workload, spec.bound_workload(w, j));
        }
    }

    #[test]
    fn empty_seed_axis_runs_templates_as_is() {
        let mut spec = small_campaign();
        spec.seeds.clear();
        assert_eq!(spec.total_runs(), spec.cell_count());
        let first = spec.scenario_spec(0);
        assert_eq!(first.workload, spec.workloads[0]);
    }

    #[test]
    fn run_campaign_produces_one_summary_per_cell() {
        let spec = small_campaign();
        let result = run_campaign(&spec, &ScenarioRunner::with_threads(2)).unwrap();
        assert_eq!(result.cells.len(), spec.cell_count());
        assert_eq!(result.total_runs, spec.total_runs());
        for cell in &result.cells {
            assert_eq!(cell.runs, 3);
            assert!(cell.sys_efficiency.mean > 0.0 && cell.sys_efficiency.mean <= 1.0);
            assert!(cell.dilation.min >= 1.0);
            assert!(cell.upper_limit.mean >= cell.sys_efficiency.mean - 1e-9);
        }
        // Cells carry the axis labels in cell order.
        assert_eq!(result.cells[0].workload, "congestion");
        assert_eq!(result.cells[0].policy, "maxsyseff");
        assert_eq!(result.cells[1].policy, "fairshare");
        assert!(result.cells[2].workload.starts_with("mix("));
        assert!(result.cell("congestion", "fairshare").is_some());
    }

    #[test]
    fn run_campaign_matches_manual_sequential_fold() {
        let spec = small_campaign();
        let result = run_campaign(&spec, &ScenarioRunner::with_threads(4)).unwrap();
        // Reference: build + run every scenario sequentially, fold by hand.
        let mut cell_effs: Vec<Vec<f64>> = vec![Vec::new(); spec.cell_count()];
        for (idx, scenario) in spec.scenarios().enumerate() {
            let outcome = scenario.unwrap().run().unwrap();
            cell_effs[idx / spec.runs_per_cell()].push(outcome.report.sys_efficiency);
        }
        for (cell, effs) in result.cells.iter().zip(&cell_effs) {
            let reference = Summary::from_slice(effs).unwrap();
            assert_eq!(
                cell.sys_efficiency.mean.to_bits(),
                reference.mean.to_bits(),
                "cell {}/{} diverged",
                cell.workload,
                cell.policy
            );
            assert_eq!(cell.sys_efficiency.std.to_bits(), reference.std.to_bits());
        }
    }

    #[test]
    fn fold_outcomes_indices_match_scenario_expansion() {
        let spec = small_campaign();
        let mut by_idx: Vec<Option<f64>> = vec![None; spec.total_runs()];
        fold_outcomes(
            &spec,
            &ScenarioRunner::with_threads(2),
            (),
            |(), idx, out| {
                assert!(by_idx[idx].is_none(), "run {idx} folded twice");
                by_idx[idx] = Some(out.report.sys_efficiency);
            },
        )
        .unwrap();
        // Every run index observed exactly once, bit-identical to the
        // per-scenario expansion at the same index.
        for (idx, scenario) in spec.scenarios().enumerate() {
            let direct = scenario.unwrap().run().unwrap();
            assert_eq!(
                by_idx[idx].expect("run folded").to_bits(),
                direct.report.sys_efficiency.to_bits(),
                "run {idx} diverged"
            );
        }
    }

    #[test]
    fn pooled_dilation_merges_cells_like_one_big_sample() {
        let spec = small_campaign();
        let result = run_campaign(&spec, &ScenarioRunner::with_threads(2)).unwrap();
        // Reference: every fairshare run's dilation as one flat sample.
        let mut all = Vec::new();
        for (idx, scenario) in spec.scenarios().enumerate() {
            let (_, _, pol, _) = spec.decompose(idx);
            if spec.policies[pol].name() == "fairshare" {
                all.push(scenario.unwrap().run().unwrap().report.dilation);
            }
        }
        let pooled = result.pooled_dilation("fairshare").expect("policy exists");
        let reference = Summary::from_slice(&all).unwrap();
        assert_eq!(pooled.n, reference.n);
        assert!((pooled.mean - reference.mean).abs() < 1e-12);
        assert!((pooled.std - reference.std).abs() < 1e-12);
        assert_eq!(pooled.min.to_bits(), reference.min.to_bits());
        assert_eq!(pooled.max.to_bits(), reference.max.to_bits());
        // Under the reservoir cap the pooled quantiles are exact too.
        assert_eq!(pooled.median.to_bits(), reference.median.to_bits());
        assert!(result.pooled_dilation("lottery").is_none());
    }

    #[test]
    fn invalid_campaigns_are_rejected() {
        let mut spec = small_campaign();
        spec.policies.clear();
        assert!(run_campaign(&spec, &ScenarioRunner::with_threads(1)).is_err());
        let mut spec = small_campaign();
        spec.platforms = vec![PlatformSpec::Preset("summit".into())];
        assert!(spec.validate().is_err());
        let mut spec = small_campaign();
        spec.threads = Some(0);
        assert!(spec.validate().is_err());
        let mut spec = small_campaign();
        spec.workloads = vec![WorkloadSpec::Explicit(vec![])];
        assert!(spec.validate().is_err());
        // Programmatically built periodic factories with degenerate
        // search knobs (whose names would not parse back) are caught by
        // validation, not first serialized into an unreadable file.
        let mut spec = small_campaign();
        spec.policies = vec![PolicySpec::Periodic(
            iosched_bench_periodic_factory().with_epsilon(0.0),
        )];
        assert!(spec.validate().is_err());
        assert!(spec.to_json().is_err(), "write path must validate too");
        let mut spec = small_campaign();
        spec.policies = vec![PolicySpec::Periodic(
            iosched_bench_periodic_factory().with_max_factor(0.5),
        )];
        assert!(spec.validate().is_err());
    }

    fn iosched_bench_periodic_factory() -> crate::scenario::PeriodicFactory {
        crate::scenario::PeriodicFactory::new(
            iosched_core::periodic::InsertionHeuristic::Congestion,
        )
    }

    #[test]
    fn campaign_json_roundtrip() {
        let spec = small_campaign();
        let json = spec.to_json().unwrap();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
        // Policies serialize as their name strings.
        assert!(json.contains("\"maxsyseff\""));
        assert!(json.contains("\"fairshare\""));
        // Platform presets serialize as bare names.
        assert!(json.contains("\"vesta\""));
    }

    #[test]
    fn scenario_spec_json_roundtrip_and_build() {
        let spec = ScenarioSpec {
            label: "one".into(),
            platform: PlatformSpec::Native("intrepid".into()),
            workload: WorkloadSpec::Congestion { seed: 5 },
            policy: PolicySpec::parse("priority-minmax-0.25").unwrap(),
            config: Some(SimConfig {
                use_burst_buffer: true,
                ..SimConfig::default()
            }),
        };
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        let scenario = back.build().unwrap();
        assert!(scenario.config.use_burst_buffer);
        assert_eq!(scenario.policy.name(), "priority-minmax-0.25");
        assert!(!scenario.apps.is_empty());
    }

    #[test]
    fn sim_config_json_is_lenient_about_missing_fields() {
        let config: SimConfig = serde_json::from_str(r#"{"use_burst_buffer": true}"#).unwrap();
        assert!(config.use_burst_buffer);
        assert_eq!(config.max_events, SimConfig::default().max_events);
        assert!(config.external_load.is_none());
        // …but not about unknown ones (typos must not silently no-op).
        assert!(serde_json::from_str::<SimConfig>(r#"{"burst": true}"#).is_err());
    }

    #[test]
    fn platform_spec_strings_resolve() {
        assert_eq!(
            PlatformSpec::Preset("mira".into()).build().unwrap().name,
            "mira"
        );
        let native = PlatformSpec::Native("intrepid".into()).build().unwrap();
        assert!(native.burst_buffer.is_some());
        assert!(native.interference.is_penalizing());
        assert!(PlatformSpec::Preset("summit".into()).build().is_err());
        // Serde forms.
        let parsed: PlatformSpec = serde_json::from_str("\"native:vesta\"").unwrap();
        assert_eq!(parsed, PlatformSpec::Native("vesta".into()));
        assert!(serde_json::from_str::<PlatformSpec>("\"native:summit\"").is_err());
        let custom = PlatformSpec::Custom(iosched_model::Platform::vesta());
        let json = serde_json::to_string(&custom).unwrap();
        assert_eq!(serde_json::from_str::<PlatformSpec>(&json).unwrap(), custom);
    }

    #[test]
    fn campaign_errors_carry_the_scenario_label() {
        // An explicit workload too big for vesta fails at materialization.
        let spec = CampaignSpec {
            name: "broken".into(),
            platforms: vec![PlatformSpec::Preset("vesta".into())],
            workloads: vec![WorkloadSpec::Mix {
                config: MixConfig {
                    // 40 very-large apps cannot scale into Vesta (each
                    // needs ≥ 1 node but sampling drives the sum over).
                    small: 0,
                    large: 0,
                    very_large: 5000,
                    ..MixConfig::fig6a()
                },
                seed: 0,
            }],
            policies: vec![PolicySpec::FairShare],
            seeds: vec![0],
            config: None,
            threads: None,
        };
        let err = run_campaign(&spec, &ScenarioRunner::with_threads(1)).unwrap_err();
        assert!(err.contains("broken/"), "error lacks label: {err}");
    }
}
