//! Parallel batch execution of [`Scenario`]s with deterministic,
//! input-ordered results.
//!
//! Every figure/table of the paper is an embarrassingly parallel sweep of
//! independent scenarios; this module is the one place that knows how to
//! fan such a sweep out over threads. Guarantees:
//!
//! * **Determinism** — results come back in input order, and each
//!   scenario's outcome is a pure function of the scenario itself (the
//!   engine is deterministic), so the thread count never changes any
//!   result. `ScenarioRunner` honors the `RAYON_NUM_THREADS` convention
//!   (set it to `1` to force sequential execution).
//! * **Work stealing** — workers pull the next scenario off a shared
//!   atomic cursor, so heterogeneous scenario sizes (a 5-app moment next
//!   to a 50-app mix) don't leave threads idle.
//!
//! ```
//! use iosched_bench::runner::ScenarioRunner;
//! use iosched_bench::scenario::{PolicySpec, Scenario};
//! use iosched_model::{AppSpec, Bytes, Platform, Time};
//!
//! let scenarios: Vec<Scenario> = (0..4)
//!     .map(|seed| {
//!         let apps = vec![AppSpec::periodic(
//!             0, Time::ZERO, 128, Time::secs(30.0 + seed as f64), Bytes::gib(50.0), 4,
//!         )];
//!         Scenario::new(
//!             format!("seed-{seed}"),
//!             Platform::vesta(),
//!             apps,
//!             PolicySpec::parse("maxsyseff").unwrap(),
//!         )
//!     })
//!     .collect();
//! let results = ScenarioRunner::new().run_all(&scenarios);
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

use crate::scenario::Scenario;
use iosched_sim::{SimError, SimOutcome};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel, deterministic batch executor for [`Scenario`]s.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    threads: usize,
}

impl Default for ScenarioRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioRunner {
    /// A runner sized from the environment: `RAYON_NUM_THREADS` when set
    /// (the convention shared with rayon-based tooling), else the number
    /// of available cores.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Self { threads }
    }

    /// A runner with an explicit worker count.
    ///
    /// # Panics
    /// Panics when `threads` is zero.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "runner needs at least one thread");
        Self { threads }
    }

    /// Worker threads this runner will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute every scenario, in parallel, returning results in input
    /// order.
    #[must_use]
    pub fn run_all(&self, scenarios: &[Scenario]) -> Vec<Result<SimOutcome, SimError>> {
        self.map(scenarios, |_, s| s.run())
    }

    /// Streaming parallel execution: run every scenario of a (possibly
    /// lazy) iterator and fold the outcomes into `init` **in input
    /// order**, without ever materializing the full outcome vector.
    ///
    /// This is the campaign primitive: a 200-mix × 8-policy sweep holds
    /// one chunk of outcomes (`O(threads)`) plus whatever the fold
    /// accumulates (per-cell aggregates), not `O(runs)` simulation
    /// outcomes. Because outcomes are folded in input order and each
    /// outcome is a pure function of its scenario, the result is
    /// bit-identical to a sequential `for` loop over `scenarios` — the
    /// thread count only changes wall-clock time.
    pub fn run_fold<A, F>(
        &self,
        scenarios: impl IntoIterator<Item = Scenario>,
        init: A,
        fold: F,
    ) -> A
    where
        F: FnMut(A, usize, Result<SimOutcome, SimError>) -> A,
    {
        self.fold(scenarios, |_, s: &Scenario| s.run(), init, fold)
    }

    /// Generic streaming fold over a parallel map — the machinery behind
    /// [`ScenarioRunner::run_fold`], also used by experiments whose unit
    /// of work is not a fluid simulation (workload-synthesis shards).
    ///
    /// Items are pulled from the iterator in chunks of a few times the
    /// worker count and each chunk is mapped in parallel, but results
    /// are **streamed** to `fold` in input order as they complete (a
    /// reorder buffer holds out-of-order stragglers) rather than
    /// delivered at a per-chunk join barrier — so peak memory is
    /// `O(threads)` items + results regardless of the sweep length, the
    /// fold observes exactly the order a sequential loop would produce,
    /// and a fold that checkpoints to disk (the shard partial writer)
    /// persists each result as soon as its turn comes, not a chunk
    /// later.
    pub fn fold<T, R, A, M, F>(
        &self,
        items: impl IntoIterator<Item = T>,
        map: M,
        init: A,
        mut fold: F,
    ) -> A
    where
        T: Sync,
        R: Send,
        M: Fn(usize, &T) -> R + Sync,
        F: FnMut(A, usize, R) -> A,
    {
        // Large enough to amortize the per-chunk setup, small enough
        // that a chunk of outcomes never dominates memory.
        let chunk_len = self.threads.max(1) * 4;
        let mut acc = init;
        let mut base = 0usize;
        let mut iter = items.into_iter();
        loop {
            let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            let workers = self.threads.min(chunk.len());
            if workers <= 1 {
                // Sequential: fold immediately after each map — the
                // checkpoint granularity a single-threaded shard wants.
                for (offset, t) in chunk.iter().enumerate() {
                    let r = map(base + offset, t);
                    acc = fold(acc, base + offset, r);
                }
            } else {
                let cursor = AtomicUsize::new(0);
                let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
                let mut acc_slot = Some(acc);
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        let tx = tx.clone();
                        let cursor = &cursor;
                        let chunk = &chunk;
                        let map = &map;
                        scope.spawn(move || loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= chunk.len() {
                                break;
                            }
                            let r = map(base + i, &chunk[i]);
                            if tx.send((i, r)).is_err() {
                                break;
                            }
                        });
                    }
                    drop(tx);
                    // In-order delivery: buffer stragglers, fold the
                    // contiguous prefix as it completes.
                    let mut pending: std::collections::BTreeMap<usize, R> =
                        std::collections::BTreeMap::new();
                    let mut next = 0usize;
                    for (i, r) in rx {
                        pending.insert(i, r);
                        while let Some(r) = pending.remove(&next) {
                            let folded =
                                fold(acc_slot.take().expect("accumulator"), base + next, r);
                            acc_slot = Some(folded);
                            next += 1;
                        }
                    }
                });
                acc = acc_slot.expect("accumulator");
            }
            base += chunk.len();
        }
        acc
    }

    /// Generic parallel map with input-ordered results — the batch
    /// primitive behind [`ScenarioRunner::run_all`], also used by
    /// experiments whose unit of work is not a fluid simulation (workload
    /// synthesis shards, period searches).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            produced.push((i, f(i, &items[i])));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("scenario worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every input index produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PolicySpec;
    use iosched_model::{AppSpec, Bytes, Platform, Time};

    fn batch(n: usize) -> Vec<Scenario> {
        (0..n)
            .map(|i| {
                let apps = vec![
                    AppSpec::periodic(
                        0,
                        Time::ZERO,
                        200,
                        Time::secs(10.0 + i as f64),
                        Bytes::gib(40.0),
                        3,
                    ),
                    AppSpec::periodic(
                        1,
                        Time::secs(5.0),
                        300,
                        Time::secs(20.0),
                        Bytes::gib(60.0),
                        2,
                    ),
                ];
                Scenario::new(
                    format!("s{i}"),
                    Platform::vesta(),
                    apps,
                    PolicySpec::parse(if i % 2 == 0 {
                        "maxsyseff"
                    } else {
                        "mindilation"
                    })
                    .unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn results_are_input_ordered_and_thread_count_invariant() {
        let scenarios = batch(12);
        let parallel = ScenarioRunner::with_threads(4).run_all(&scenarios);
        let sequential = ScenarioRunner::with_threads(1).run_all(&scenarios);
        assert_eq!(parallel.len(), scenarios.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.events, s.events);
            assert_eq!(
                p.report.sys_efficiency.to_bits(),
                s.report.sys_efficiency.to_bits()
            );
        }
    }

    #[test]
    fn map_preserves_indices() {
        let runner = ScenarioRunner::with_threads(3);
        let items: Vec<usize> = (0..100).collect();
        let out = runner.map(&items, |i, &x| i * 1000 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 1000 + i);
        }
    }

    #[test]
    fn fold_matches_sequential_fold_and_sees_input_order() {
        let runner = ScenarioRunner::with_threads(4);
        let items: Vec<usize> = (0..53).collect(); // not a chunk multiple
        let mut seen = Vec::new();
        let sum = runner.fold(
            items.iter().copied(),
            |i, &x| i * 7 + x,
            0usize,
            |acc, i, r| {
                seen.push(i);
                acc + r
            },
        );
        let expected: usize = (0..53).map(|i| i * 7 + i).sum();
        assert_eq!(sum, expected);
        assert_eq!(seen, (0..53).collect::<Vec<_>>(), "fold order broken");
    }

    #[test]
    fn run_fold_is_bit_identical_to_run_all() {
        let scenarios = batch(10);
        let collected = ScenarioRunner::with_threads(3).run_all(&scenarios);
        let folded: Vec<f64> = ScenarioRunner::with_threads(3).run_fold(
            scenarios.iter().cloned(),
            Vec::new(),
            |mut acc, _, r| {
                acc.push(r.unwrap().report.sys_efficiency);
                acc
            },
        );
        assert_eq!(folded.len(), collected.len());
        for (f, c) in folded.iter().zip(&collected) {
            assert_eq!(
                f.to_bits(),
                c.as_ref().unwrap().report.sys_efficiency.to_bits()
            );
        }
    }

    #[test]
    fn errors_surface_in_place() {
        let mut scenarios = batch(3);
        // Blow the processor budget of the middle scenario.
        scenarios[1].apps.push(AppSpec::periodic(
            9,
            Time::ZERO,
            10_000_000,
            Time::secs(1.0),
            Bytes::gib(1.0),
            1,
        ));
        let results = ScenarioRunner::with_threads(2).run_all(&scenarios);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }
}
