//! Criterion bench: workload generation throughput (mixes, congested
//! moments, Darshan synthesis) — these run 200+ times per figure.

use criterion::{criterion_group, criterion_main, Criterion};
use iosched_model::Platform;
use iosched_workload::congestion::congested_moment;
use iosched_workload::{DarshanLog, MixConfig};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let platform = Platform::intrepid();
    let mut group = c.benchmark_group("workload");

    group.bench_function("mix_fig6b", |b| {
        let cfg = MixConfig::fig6b();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(cfg.generate(&platform, seed))
        });
    });
    group.bench_function("congested_moment", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(congested_moment(&platform, seed))
        });
    });
    group.bench_function("darshan_synthesize_1k_jobs", |b| {
        b.iter(|| black_box(DarshanLog::synthesize_year(&platform, 7, 1_000)));
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
