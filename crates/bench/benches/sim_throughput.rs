//! Criterion bench: fluid-simulator event throughput on a congested
//! moment (events/second of simulator work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iosched_baselines::FairShare;
use iosched_bench::experiments::load_sweep;
use iosched_core::heuristics::{MaxSysEff, MinDilation};
use iosched_core::periodic::{
    InsertionHeuristic, PeriodSearch, PeriodicAppSpec, PeriodicObjective, TimetablePolicy,
};
use iosched_model::Platform;
use iosched_sim::{simulate, simulate_stream, SimConfig};
use iosched_workload::congestion::congested_moment;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let platform = Platform::intrepid();
    let apps = congested_moment(&platform, 5);
    let mut group = c.benchmark_group("sim_congested_moment");
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("maxsyseff", apps.len()), |b| {
        b.iter(|| {
            let out = simulate(
                &platform,
                black_box(&apps),
                &mut MaxSysEff,
                &SimConfig::default(),
            )
            .unwrap();
            black_box(out.events)
        });
    });
    group.bench_function(BenchmarkId::new("mindilation", apps.len()), |b| {
        b.iter(|| {
            let out = simulate(
                &platform,
                black_box(&apps),
                &mut MinDilation,
                &SimConfig::default(),
            )
            .unwrap();
            black_box(out.events)
        });
    });
    group.bench_function(BenchmarkId::new("fairshare", apps.len()), |b| {
        b.iter(|| {
            let out = simulate(
                &platform,
                black_box(&apps),
                &mut FairShare,
                &SimConfig::default(),
            )
            .unwrap();
            black_box(out.events)
        });
    });
    group.bench_function(BenchmarkId::new("fairshare+bb", apps.len()), |b| {
        let bb = platform.clone().with_default_burst_buffer();
        b.iter(|| {
            let out = simulate(
                &bb,
                black_box(&apps),
                &mut FairShare,
                &SimConfig::with_burst_buffer(),
            )
            .unwrap();
            black_box(out.events)
        });
    });
    // Closed-loop control: every event reads the telemetry signal,
    // advances the PI loop and the token buckets — the upper bound on
    // the tap's per-event cost (the open-loop cases above measure the
    // always-on tap itself, which must stay within noise).
    group.bench_function(BenchmarkId::new("control", apps.len()), |b| {
        use iosched_core::control::ControlPolicy;
        b.iter(|| {
            let mut policy = ControlPolicy::pi_default();
            let out = simulate(
                &platform,
                black_box(&apps),
                &mut policy,
                &SimConfig::default(),
            )
            .unwrap();
            black_box(out.events)
        });
    });
    // Offline timetable replay: the wakeup-driven event pattern whose
    // confirm-the-running-allocation events exercise the engine's
    // predicted-completion cache.
    group.bench_function(BenchmarkId::new("timetable", apps.len()), |b| {
        let specs: Vec<PeriodicAppSpec> = apps
            .iter()
            .map(|a| PeriodicAppSpec::from_app(a).expect("congested moments are periodic"))
            .collect();
        let schedule = PeriodSearch::new(PeriodicObjective::Dilation)
            .run_complete(&platform, &specs, InsertionHeuristic::Congestion)
            .expect("congested moment schedules cleanly")
            .schedule;
        b.iter(|| {
            let mut policy = TimetablePolicy::new(schedule.clone());
            let out = simulate(
                &platform,
                black_box(&apps),
                &mut policy,
                &SimConfig::default(),
            )
            .unwrap();
            black_box(out.events)
        });
    });
    // Open-system stream, split so events/s measures the engine and not
    // the lazy workload synthesis riding along in the source iterator:
    // `stream_10k_gen` drains the generator alone, `stream_10k_sim`
    // replays a pre-materialized arrival list through the slot-recycling
    // arena (`bench_stream_mem` measures the allocation side).
    group.bench_function(BenchmarkId::new("stream_10k_gen", 10_000), |b| {
        let spec = load_sweep::stream_10k();
        b.iter(|| {
            let source = spec.app_source(&platform).expect("stream spec is valid");
            black_box(source.count())
        });
    });
    group.bench_function(BenchmarkId::new("stream_10k_sim", 10_000), |b| {
        let spec = load_sweep::stream_10k();
        let arrivals: Vec<_> = spec
            .app_source(&platform)
            .expect("stream spec is valid")
            .collect();
        let config = SimConfig {
            per_app_detail: false,
            ..SimConfig::default()
        };
        b.iter(|| {
            let mut policy = MinDilation;
            let out =
                simulate_stream(&platform, arrivals.iter().cloned(), &mut policy, &config).unwrap();
            black_box(out.events)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
