//! Criterion bench: per-event decision latency of every online policy —
//! the cost the scheduler thread pays at each I/O event (§5.1 overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iosched_core::heuristics::PolicyKind;
use iosched_core::policy::{AppState, SchedContext};
use iosched_model::{AppId, Bw, Time};
use std::hint::black_box;

fn pending(n: usize) -> Vec<AppState> {
    (0..n)
        .map(|i| AppState {
            id: AppId(i),
            procs: 64 + (i as u64 * 37) % 4_000,
            dilation_ratio: (i as f64 * 0.6180339887).fract(),
            syseff_key: ((i as f64 * 2.414).fract()) * 4_000.0,
            last_io_end: Time::secs((i as f64 * 13.7) % 500.0),
            io_requested_at: Time::secs((i as f64 * 7.3) % 500.0),
            started_io: i % 3 == 0,
            max_bw: Bw::gib_per_sec(1.0 + (i % 32) as f64),
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_allocate");
    for &n in &[8usize, 64, 512] {
        let apps = pending(n);
        let ctx = SchedContext {
            now: Time::secs(1_000.0),
            total_bw: Bw::gib_per_sec(64.0),
            pending: &apps,
            signal: None,
        };
        for kind in PolicyKind::fig6_roster() {
            let mut policy = kind.build();
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &ctx, |b, ctx| {
                b.iter(|| black_box(policy.allocate(black_box(ctx))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
