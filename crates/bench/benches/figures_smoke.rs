//! Criterion bench: end-to-end figure regeneration at reduced sample
//! counts — tracks the cost of the full experiment pipelines.

use criterion::{criterion_group, criterion_main, Criterion};
use iosched_bench::experiments::{fig01, fig05, fig06, tables};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig01_40_apps", |b| {
        b.iter(|| black_box(fig01::run(40)));
    });
    group.bench_function("fig05_2k_jobs", |b| {
        b.iter(|| black_box(fig05::run(2_000, 1)));
    });
    group.bench_function("fig06_2_mixes", |b| {
        b.iter(|| black_box(fig06::run(2)));
    });
    group.bench_function("table1_2_cases", |b| {
        b.iter(|| black_box(tables::run(tables::Machine::Intrepid, 2)));
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
