//! Criterion bench: periodic-schedule construction (one period fill) and
//! the full `(1+ε)` period search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iosched_core::periodic::{
    build_schedule, InsertionHeuristic, PeriodSearch, PeriodicAppSpec, PeriodicObjective,
};
use iosched_model::{Platform, Time};
use iosched_workload::congestion::congested_moment;
use std::hint::black_box;

fn apps(platform: &Platform, seed: u64) -> Vec<PeriodicAppSpec> {
    congested_moment(platform, seed)
        .iter()
        .map(|a| PeriodicAppSpec::from_app(a).unwrap())
        .collect()
}

fn bench_periodic(c: &mut Criterion) {
    let platform = Platform::intrepid();
    let periodic = apps(&platform, 9);
    let t0: Time = periodic
        .iter()
        .map(|a| a.span(&platform))
        .fold(Time::ZERO, Time::max);

    let mut group = c.benchmark_group("periodic");
    group.sample_size(20);
    for heuristic in [
        InsertionHeuristic::Throughput,
        InsertionHeuristic::Congestion,
    ] {
        group.bench_with_input(
            BenchmarkId::new("fill_one_period", heuristic.name()),
            &heuristic,
            |b, &h| {
                b.iter(|| black_box(build_schedule(&platform, black_box(&periodic), t0 * 4.0, h)));
            },
        );
    }
    group.bench_function("period_search_eps_0.1", |b| {
        let search = PeriodSearch::new(PeriodicObjective::Dilation)
            .with_epsilon(0.1)
            .with_max_factor(4.0);
        b.iter(|| black_box(search.run(&platform, &periodic, InsertionHeuristic::Congestion)));
    });
    group.finish();
}

criterion_group!(benches, bench_periodic);
criterion_main!(benches);
