//! Declarative, serializable workload descriptions.
//!
//! Every workload family this crate can generate — explicit application
//! lists, the Fig. 6 random mixes, Darshan-log reductions, congested
//! moments, the Vesta IOR node-splits, and the §4.3 sensibility
//! perturbation — is described by one [`WorkloadSpec`] value. A spec is
//! pure data (JSON-serializable through `serde`), and
//! [`WorkloadSpec::materialize`] is the single entry point turning it
//! into the `Vec<AppSpec>` the simulator consumes. Experiment campaigns
//! sweep a seed axis over spec *templates* via [`WorkloadSpec::with_seed`]
//! without knowing anything about the family being seeded.

use crate::darshan::DarshanLog;
use crate::generator::MixConfig;
use crate::ior_profile::{scenario_apps, IorParams, VestaScenario};
use crate::stream::{ArrivalProcess, StopRule, StreamIter};
use crate::{congestion, sensibility};
use iosched_model::app::{validate_open_scenario, validate_scenario};
use iosched_model::{AppSpec, Platform};
use serde::{Deserialize, Serialize};

/// Salt decorrelating a [`WorkloadSpec::Perturbed`] wrapper's perturbation
/// stream from its base workload's generation stream when one campaign
/// seed drives both (the Fig. 7 convention: `perturb_seed = seed ^ SALT`).
pub const PERTURB_SEED_SALT: u64 = 0xABCD;

/// Salt decorrelating a [`WorkloadSpec::Stream`] wrapper's arrival/pick
/// streams from its template's generation stream when one campaign seed
/// drives both (mirrors [`PERTURB_SEED_SALT`]).
pub const STREAM_SEED_SALT: u64 = 0x57EA;

/// One serializable workload description.
///
/// `Mix`, `Darshan`, `Congestion`, `IorProfile` and `Perturbed` are
/// generative: deterministic functions of their parameters, the target
/// [`Platform`] and a seed. `Explicit` carries a pre-materialized
/// application list (hand-authored scenario files, externally produced
/// traces) and ignores seeding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A literal application list.
    Explicit(Vec<AppSpec>),
    /// A Fig. 6-style random mix (§4.2).
    Mix {
        /// Mix composition.
        config: MixConfig,
        /// Generation seed.
        seed: u64,
    },
    /// A synthetic year-long Darshan log reduced to one scenario (§4.1,
    /// §4.4): synthesize `jobs` records, take the jobs running in
    /// `[window_start, window_start + window_secs]`, enforce periodicity
    /// and replicate to `coverage` of the machine.
    Darshan {
        /// Jobs in the synthetic year.
        jobs: usize,
        /// Seed of the log synthesizer.
        log_seed: u64,
        /// Window start (seconds since the log epoch).
        window_start: f64,
        /// Window length in seconds.
        window_secs: f64,
        /// Node-coverage target of the replication step, in `(0, 1]`.
        coverage: f64,
        /// Seed of the reduction (releases, replication draws).
        seed: u64,
    },
    /// A seeded congested moment (Tables 1–2 sweep point).
    Congestion {
        /// Case seed.
        seed: u64,
    },
    /// A Vesta IOR node-split scenario (§5).
    IorProfile {
        /// Node split, e.g. `512/256/256/32`.
        scenario: VestaScenario,
        /// IOR parameters.
        params: IorParams,
        /// Jitter seed.
        seed: u64,
    },
    /// The §4.3 sensibility perturbation applied on top of another spec:
    /// per-instance work drawn from `U[w, w(1+work_x)]`, volumes likewise.
    Perturbed {
        /// The workload being perturbed.
        base: Box<WorkloadSpec>,
        /// Work sensibility fraction (0.30 = "30 %").
        work_x: f64,
        /// I/O-volume sensibility fraction.
        vol_x: f64,
        /// Perturbation seed.
        seed: u64,
    },
    /// An *open-system* stream: applications arrive dynamically through
    /// an [`ArrivalProcess`], each drawing its shape from the pool any
    /// closed `template` family materializes, until the [`StopRule`]
    /// ends the stream. Open streams drop the closed-roster `Σβ ≤ N`
    /// budget (each application must fit the machine individually; the
    /// model does not queue on processors, so a supercritical stream is
    /// read through its queue/stretch metrics) and materialize lazily
    /// through [`WorkloadSpec::app_source`].
    Stream {
        /// How inter-arrival gaps are drawn.
        arrivals: ArrivalProcess,
        /// The closed family whose materialization is the shape pool.
        template: Box<WorkloadSpec>,
        /// When the stream ends.
        stop: StopRule,
        /// Seed of the arrival/pick draw streams.
        seed: u64,
    },
}

/// A lazily-produced application roster: the one source every consumer
/// (materialization, the streaming engine, the memory benches) pulls
/// from. Closed families yield their materialized roster; open streams
/// generate one application per `next()` and never hold the full list.
pub enum AppSource {
    /// A fully materialized (closed) roster.
    Roster(std::vec::IntoIter<AppSpec>),
    /// A lazy open-system stream.
    Stream(StreamIter),
}

impl AppSource {
    /// True when this source was produced by an open-system spec.
    #[must_use]
    pub fn is_open(&self) -> bool {
        matches!(self, Self::Stream(_))
    }
}

impl Iterator for AppSource {
    type Item = AppSpec;

    fn next(&mut self) -> Option<AppSpec> {
        match self {
            Self::Roster(it) => it.next(),
            Self::Stream(it) => it.next(),
        }
    }
}

impl WorkloadSpec {
    /// Structural validation, independent of any platform: empty mixes,
    /// out-of-range ratios and malformed ranges are rejected here so that
    /// campaign files fail fast instead of deep inside a worker thread.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Self::Explicit(apps) => {
                if apps.is_empty() {
                    return Err("explicit workload has no applications".into());
                }
                Ok(())
            }
            Self::Mix { config, .. } => {
                if config.count() == 0 {
                    return Err("mix must contain at least one application".into());
                }
                if !(config.io_ratio > 0.0 && config.io_ratio < 1.0) {
                    return Err(format!("mix io_ratio {} outside (0, 1)", config.io_ratio));
                }
                if !(config.work_range.0 > 0.0 && config.work_range.1 > config.work_range.0) {
                    return Err(format!(
                        "mix work_range ({}, {}) must be positive and ascending",
                        config.work_range.0, config.work_range.1
                    ));
                }
                if config.instances.0 == 0 || config.instances.1 < config.instances.0 {
                    return Err(format!(
                        "mix instance range ({}, {}) must be ≥ 1 and ascending",
                        config.instances.0, config.instances.1
                    ));
                }
                if config.release_jitter < 0.0 {
                    return Err("mix release_jitter must be non-negative".into());
                }
                Ok(())
            }
            Self::Darshan {
                jobs,
                window_secs,
                coverage,
                ..
            } => {
                if *jobs == 0 {
                    return Err("darshan workload needs at least one job".into());
                }
                if *window_secs <= 0.0 {
                    return Err("darshan window must have positive length".into());
                }
                if !(*coverage > 0.0 && *coverage <= 1.0) {
                    return Err(format!("darshan coverage {coverage} outside (0, 1]"));
                }
                Ok(())
            }
            Self::Congestion { .. } => Ok(()),
            Self::IorProfile {
                scenario, params, ..
            } => {
                if scenario.nodes.is_empty() {
                    return Err("IOR profile has no applications".into());
                }
                if params.work <= 0.0 || params.io_ratio <= 0.0 || params.iterations == 0 {
                    return Err("IOR parameters must be positive".into());
                }
                Ok(())
            }
            Self::Perturbed {
                base,
                work_x,
                vol_x,
                ..
            } => {
                if *work_x < 0.0 || *vol_x < 0.0 {
                    return Err("sensibility fractions must be non-negative".into());
                }
                if base.contains_stream() {
                    return Err("the sensibility perturbation cannot wrap an open stream; \
                         perturb the stream's template instead"
                        .into());
                }
                base.validate()
            }
            Self::Stream {
                arrivals,
                template,
                stop,
                ..
            } => {
                arrivals.validate()?;
                stop.validate()?;
                if template.contains_stream() {
                    return Err("stream templates must be closed (streams cannot nest)".into());
                }
                template.validate()
            }
        }
    }

    /// True when a `Stream` appears anywhere in this spec tree. Used by
    /// [`WorkloadSpec::validate`] to keep open streams at the top level
    /// only — wrappers treating an open roster as a closed one would
    /// silently change its semantics (and [`WorkloadSpec::is_open`]
    /// relies on top-level-only streams to be accurate).
    fn contains_stream(&self) -> bool {
        match self {
            Self::Stream { .. } => true,
            Self::Perturbed { base, .. } => base.contains_stream(),
            _ => false,
        }
    }

    /// True for open-system specs: the roster is a dynamic stream, the
    /// closed `Σβ ≤ N` budget does not apply over its whole extent, and
    /// runners should prefer [`WorkloadSpec::app_source`] plus the
    /// streaming engine over full materialization.
    #[must_use]
    pub fn is_open(&self) -> bool {
        matches!(self, Self::Stream { .. })
    }

    /// Open the application source on `platform` — the single
    /// generation path shared by [`WorkloadSpec::materialize`] and the
    /// open-system runners. `Stream` specs generate **lazily**: a
    /// consumer that stops early (a horizon-bounded engine, a prefix
    /// probe) pulls exactly what it uses and a 100k-application stream
    /// never exists as a `Vec`. Closed families are generated and
    /// validated whole before the iterator is handed out (their
    /// generators need the full roster for scaling and the `Σβ ≤ N`
    /// check), so for them the source only unifies the call shape.
    pub fn app_source(&self, platform: &Platform) -> Result<AppSource, String> {
        self.validate()?;
        if let Self::Stream {
            arrivals,
            template,
            stop,
            seed,
        } = self
        {
            // `validate()` above already recursed into the template;
            // generate the pool without a second structural pass.
            let pool = template.generate_closed(platform)?;
            return Ok(AppSource::Stream(StreamIter::new(
                pool, arrivals, *stop, *seed,
            )));
        }
        Ok(AppSource::Roster(
            self.generate_closed(platform)?.into_iter(),
        ))
    }

    /// Generate a closed (non-`Stream`) family and check the roster
    /// against the platform. Structural validation is the caller's job
    /// ([`WorkloadSpec::app_source`] runs it once for the whole spec
    /// tree).
    fn generate_closed(&self, platform: &Platform) -> Result<Vec<AppSpec>, String> {
        let apps = match self {
            Self::Explicit(apps) => apps.clone(),
            Self::Mix { config, seed } => config.generate(platform, *seed),
            Self::Darshan {
                jobs,
                log_seed,
                window_start,
                window_secs,
                coverage,
                seed,
            } => {
                let log = DarshanLog::synthesize_year(platform, *log_seed, *jobs);
                let apps = log.reduce_to_scenario(
                    platform,
                    (*window_start, *window_start + *window_secs),
                    *coverage,
                    *seed,
                );
                if apps.is_empty() {
                    return Err(format!(
                        "darshan window [{window_start}, {}] contains no jobs",
                        *window_start + *window_secs
                    ));
                }
                apps
            }
            Self::Congestion { seed } => congestion::congested_moment(platform, *seed),
            Self::IorProfile {
                scenario,
                params,
                seed,
            } => scenario_apps(scenario, platform, *params, *seed),
            Self::Perturbed {
                base,
                work_x,
                vol_x,
                seed,
            } => {
                let periodic = base.materialize(platform)?;
                sensibility::perturb(&periodic, *work_x, *vol_x, *seed)
            }
            Self::Stream { .. } => unreachable!("streams cannot nest and are routed above"),
        };
        validate_scenario(platform, &apps).map_err(|e| e.to_string())?;
        Ok(apps)
    }

    /// Generate the applications on `platform`. The single eager entry
    /// point every closed runner uses: validates the spec, generates
    /// through [`WorkloadSpec::app_source`], and checks the result
    /// against the platform (closed families: dense ids and the `Σβ ≤ N`
    /// processor budget; open streams: per-application feasibility).
    pub fn materialize(&self, platform: &Platform) -> Result<Vec<AppSpec>, String> {
        let source = self.app_source(platform)?;
        let open = source.is_open();
        let apps: Vec<AppSpec> = source.collect();
        if open && apps.is_empty() {
            return Err(format!("{} produced no applications", self.label()));
        }
        // Open rosters satisfy `validate_open_scenario` by construction
        // (StreamIter re-ids densely in arrival order over a validated
        // pool); the runners that consume them re-check per admission.
        debug_assert!(!open || validate_open_scenario(platform, &apps).is_ok());
        Ok(apps)
    }

    /// Rebind the generation seed — the campaign layer's seed axis. The
    /// spec stays a template: `Explicit` is unaffected, `Perturbed`
    /// reseeds its base with `seed` and its own draw stream with
    /// `seed ^ PERTURB_SEED_SALT` so the two stay decorrelated.
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> Self {
        match self {
            Self::Explicit(apps) => Self::Explicit(apps.clone()),
            Self::Mix { config, .. } => Self::Mix {
                config: *config,
                seed,
            },
            Self::Darshan {
                jobs,
                log_seed,
                window_start,
                window_secs,
                coverage,
                ..
            } => Self::Darshan {
                jobs: *jobs,
                log_seed: *log_seed,
                window_start: *window_start,
                window_secs: *window_secs,
                coverage: *coverage,
                seed,
            },
            Self::Congestion { .. } => Self::Congestion { seed },
            Self::IorProfile {
                scenario, params, ..
            } => Self::IorProfile {
                scenario: scenario.clone(),
                params: *params,
                seed,
            },
            Self::Perturbed {
                base,
                work_x,
                vol_x,
                ..
            } => Self::Perturbed {
                base: Box::new(base.with_seed(seed)),
                work_x: *work_x,
                vol_x: *vol_x,
                seed: seed ^ PERTURB_SEED_SALT,
            },
            Self::Stream {
                arrivals,
                template,
                stop,
                ..
            } => Self::Stream {
                arrivals: arrivals.clone(),
                template: Box::new(template.with_seed(seed)),
                stop: *stop,
                seed: seed ^ STREAM_SEED_SALT,
            },
        }
    }

    /// Short human-readable family label used as the workload key in
    /// campaign reports (seed-independent, so every seed of one template
    /// lands in the same cell).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Explicit(apps) => format!("explicit({} apps)", apps.len()),
            Self::Mix { config, .. } => format!(
                "mix(s{}+l{}+vl{}@{:.0}%)",
                config.small,
                config.large,
                config.very_large,
                config.io_ratio * 100.0
            ),
            Self::Darshan {
                jobs, window_secs, ..
            } => format!("darshan({jobs} jobs/{window_secs:.0}s)"),
            Self::Congestion { .. } => "congestion".into(),
            Self::IorProfile { scenario, .. } => format!("ior({})", scenario.name),
            Self::Perturbed {
                base,
                work_x,
                vol_x,
                ..
            } => format!(
                "{}+sens({:.0}%/{:.0}%)",
                base.label(),
                work_x * 100.0,
                vol_x * 100.0
            ),
            Self::Stream {
                arrivals,
                template,
                stop,
                ..
            } => format!(
                "stream({}->{}{})",
                arrivals.label(),
                template.label(),
                stop.label()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::{Bytes, Time};

    fn all_families() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::Explicit(vec![AppSpec::periodic(
                0,
                Time::ZERO,
                128,
                Time::secs(30.0),
                Bytes::gib(40.0),
                3,
            )]),
            WorkloadSpec::Mix {
                config: MixConfig::fig6a(),
                seed: 7,
            },
            WorkloadSpec::Darshan {
                jobs: 4_000,
                log_seed: 3,
                window_start: 0.0,
                window_secs: 50_000.0,
                coverage: 0.5,
                seed: 9,
            },
            WorkloadSpec::Congestion { seed: 11 },
            WorkloadSpec::IorProfile {
                scenario: VestaScenario::new(&[512, 256]),
                params: IorParams::default(),
                seed: 2,
            },
            WorkloadSpec::Perturbed {
                base: Box::new(WorkloadSpec::Mix {
                    config: MixConfig::fig6b(),
                    seed: 5,
                }),
                work_x: 0.2,
                vol_x: 0.2,
                seed: 5 ^ PERTURB_SEED_SALT,
            },
            WorkloadSpec::Stream {
                arrivals: ArrivalProcess::Poisson { rate: 0.02 },
                template: Box::new(WorkloadSpec::Congestion { seed: 0 }),
                stop: StopRule::Apps(40),
                seed: 13,
            },
        ]
    }

    fn platform_for(spec: &WorkloadSpec) -> Platform {
        match spec {
            WorkloadSpec::IorProfile { .. } | WorkloadSpec::Explicit(_) => Platform::vesta(),
            _ => Platform::intrepid(),
        }
    }

    #[test]
    fn every_family_materializes_valid_scenarios() {
        for spec in all_families() {
            let platform = platform_for(&spec);
            let apps = spec
                .materialize(&platform)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
            assert!(!apps.is_empty(), "{} produced no apps", spec.label());
            if spec.is_open() {
                // Open streams only promise per-instant feasibility.
                validate_open_scenario(&platform, &apps).unwrap();
            } else {
                validate_scenario(&platform, &apps).unwrap();
            }
        }
    }

    #[test]
    fn stream_materialization_matches_its_lazy_source() {
        let spec = WorkloadSpec::Stream {
            arrivals: ArrivalProcess::Poisson { rate: 0.05 },
            template: Box::new(WorkloadSpec::Congestion { seed: 3 }),
            stop: StopRule::Apps(200),
            seed: 9,
        };
        let platform = Platform::intrepid();
        let eager = spec.materialize(&platform).unwrap();
        let lazy: Vec<AppSpec> = spec.app_source(&platform).unwrap().collect();
        assert_eq!(eager, lazy);
        assert_eq!(eager.len(), 200);
        // Shapes come from the template pool (releases and ids rebound).
        let pool = WorkloadSpec::Congestion { seed: 3 }
            .materialize(&platform)
            .unwrap();
        for app in &eager {
            assert!(
                pool.iter()
                    .any(|p| p.procs() == app.procs() && p.pattern() == app.pattern()),
                "{} has a shape outside the pool",
                app.id()
            );
        }
        // The open roster legitimately oversubscribes the closed budget
        // (that is the point of the open system)…
        assert!(validate_scenario(&platform, &eager).is_err());
        // …but stays per-app feasible.
        validate_open_scenario(&platform, &eager).unwrap();
    }

    #[test]
    fn stream_with_seed_rebinds_template_and_draw_streams() {
        let template = WorkloadSpec::Stream {
            arrivals: ArrivalProcess::Poisson { rate: 0.02 },
            template: Box::new(WorkloadSpec::Congestion { seed: 0 }),
            stop: StopRule::Apps(10),
            seed: 0,
        };
        let bound = template.with_seed(4);
        let WorkloadSpec::Stream {
            template: inner,
            seed,
            ..
        } = &bound
        else {
            panic!("with_seed changed the variant");
        };
        assert_eq!(*seed, 4 ^ STREAM_SEED_SALT);
        assert_eq!(**inner, WorkloadSpec::Congestion { seed: 4 });
    }

    #[test]
    fn invalid_stream_specs_are_rejected() {
        let base = |arrivals, stop| WorkloadSpec::Stream {
            arrivals,
            template: Box::new(WorkloadSpec::Congestion { seed: 0 }),
            stop,
            seed: 0,
        };
        assert!(
            base(ArrivalProcess::Poisson { rate: -1.0 }, StopRule::Apps(5))
                .validate()
                .is_err()
        );
        assert!(
            base(ArrivalProcess::Poisson { rate: 1.0 }, StopRule::Apps(0))
                .validate()
                .is_err()
        );
        // Nested streams are rejected.
        let nested = WorkloadSpec::Stream {
            arrivals: ArrivalProcess::Poisson { rate: 1.0 },
            template: Box::new(base(
                ArrivalProcess::Poisson { rate: 1.0 },
                StopRule::Apps(5),
            )),
            stop: StopRule::Apps(5),
            seed: 0,
        };
        assert!(nested.validate().is_err());
        // …including a stream smuggled in through a Perturbed wrapper,
        // both as a template and at the top level (a wrapped stream
        // would read as closed and run under the wrong semantics).
        let wrapped = WorkloadSpec::Perturbed {
            base: Box::new(base(
                ArrivalProcess::Poisson { rate: 1.0 },
                StopRule::Apps(5),
            )),
            work_x: 0.1,
            vol_x: 0.1,
            seed: 0,
        };
        assert!(!wrapped.is_open());
        assert!(wrapped.validate().is_err());
        let smuggled = WorkloadSpec::Stream {
            arrivals: ArrivalProcess::Poisson { rate: 1.0 },
            template: Box::new(wrapped),
            stop: StopRule::Apps(5),
            seed: 0,
        };
        assert!(smuggled.validate().is_err());
    }

    #[test]
    fn materialization_matches_the_direct_generators() {
        let p = Platform::intrepid();
        let mix = WorkloadSpec::Mix {
            config: MixConfig::fig6b(),
            seed: 42,
        };
        assert_eq!(
            mix.materialize(&p).unwrap(),
            MixConfig::fig6b().generate(&p, 42)
        );
        let cong = WorkloadSpec::Congestion { seed: 3 };
        assert_eq!(
            cong.materialize(&p).unwrap(),
            congestion::congested_moment(&p, 3)
        );
        // The Perturbed wrapper reproduces the Fig. 7 pipeline.
        let level = WorkloadSpec::Perturbed {
            base: Box::new(WorkloadSpec::Mix {
                config: MixConfig::fig6b(),
                seed: 0,
            }),
            work_x: 0.1,
            vol_x: 0.1,
            seed: 17,
        };
        let direct = sensibility::perturb(&MixConfig::fig6b().generate(&p, 0), 0.1, 0.1, 17);
        assert_eq!(level.materialize(&p).unwrap(), direct);
    }

    #[test]
    fn with_seed_rebinds_every_generative_family() {
        for spec in all_families() {
            let platform = platform_for(&spec);
            let a = spec.with_seed(100).materialize(&platform).unwrap();
            let b = spec.with_seed(100).materialize(&platform).unwrap();
            assert_eq!(a, b, "{} not deterministic", spec.label());
            if !matches!(spec, WorkloadSpec::Explicit(_)) {
                let c = spec.with_seed(101).materialize(&platform).unwrap();
                assert_ne!(a, c, "{} ignored the seed", spec.label());
            }
        }
    }

    #[test]
    fn perturbed_seed_axis_matches_the_fig7_convention() {
        let template = WorkloadSpec::Perturbed {
            base: Box::new(WorkloadSpec::Mix {
                config: MixConfig::fig6b(),
                seed: 0,
            }),
            work_x: 0.3,
            vol_x: 0.3,
            seed: 0,
        };
        let bound = template.with_seed(4);
        let WorkloadSpec::Perturbed { base, seed, .. } = &bound else {
            panic!("with_seed changed the variant");
        };
        assert_eq!(*seed, 4 ^ PERTURB_SEED_SALT);
        assert_eq!(
            **base,
            WorkloadSpec::Mix {
                config: MixConfig::fig6b(),
                seed: 4
            }
        );
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let empty_mix = WorkloadSpec::Mix {
            config: MixConfig {
                small: 0,
                large: 0,
                very_large: 0,
                io_ratio: 0.2,
                work_range: (100.0, 400.0),
                instances: (8, 12),
                release_jitter: 1.0,
            },
            seed: 0,
        };
        assert!(empty_mix.validate().is_err());
        let bad_ratio = WorkloadSpec::Mix {
            config: MixConfig {
                io_ratio: 1.5,
                ..MixConfig::fig6a()
            },
            seed: 0,
        };
        assert!(bad_ratio.validate().is_err());
        assert!(WorkloadSpec::Explicit(vec![]).validate().is_err());
        let bad_coverage = WorkloadSpec::Darshan {
            jobs: 100,
            log_seed: 0,
            window_start: 0.0,
            window_secs: 1_000.0,
            coverage: 1.5,
            seed: 0,
        };
        assert!(bad_coverage.validate().is_err());
        let negative_sens = WorkloadSpec::Perturbed {
            base: Box::new(WorkloadSpec::Congestion { seed: 0 }),
            work_x: -0.1,
            vol_x: 0.0,
            seed: 0,
        };
        assert!(negative_sens.validate().is_err());
    }

    #[test]
    fn oversubscription_is_rejected_at_materialization() {
        // 3000 nodes of IOR groups on 2048-node Vesta.
        let spec = WorkloadSpec::IorProfile {
            scenario: VestaScenario::new(&[1024, 1024, 952]),
            params: IorParams::default(),
            seed: 0,
        };
        assert!(spec.materialize(&Platform::vesta()).is_err());
    }

    #[test]
    fn json_roundtrip_every_family() {
        for spec in all_families() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "roundtrip failed for {}", spec.label());
        }
    }

    #[test]
    fn labels_are_distinct_and_seed_free() {
        let labels: Vec<String> = all_families().iter().map(WorkloadSpec::label).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "duplicate labels: {labels:?}");
        for spec in all_families() {
            assert_eq!(spec.label(), spec.with_seed(999).label());
        }
    }
}
