//! Synthetic Darshan-like I/O characterization logs.
//!
//! §4.1: "We use Darshan, an application level I/O characterization tool
//! developed at Argonne, to capture the behavior of applications running
//! on Intrepid." The paper's simulation pipeline reduces every job record
//! to total runtime + total I/O volume, enforces periodicity, and — since
//! "Darshan only records around 50 % of all the applications running in
//! the system" — replicates known applications to fill the machine.
//!
//! We cannot ship Argonne's logs, so this module provides (a) the record
//! format, (b) a synthesizer producing a year of category-calibrated job
//! records, and (c) [`DarshanLog::reduce_to_scenario`], the same
//! reduction pipeline the paper describes, including the coverage
//! replication step.

use crate::categories::AppCategory;
use iosched_model::{AppSpec, Bytes, Platform, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// One job as a Darshan-style characterization record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DarshanRecord {
    /// Job identifier.
    pub job_id: u64,
    /// Application name (synthetic names reuse the paper's §4.1 roster).
    pub app_name: String,
    /// Nodes used (`β`).
    pub nodes: u64,
    /// Job start (seconds since the log epoch).
    pub start: f64,
    /// Job end.
    pub end: f64,
    /// Total bytes moved to/from the PFS.
    pub total_bytes: f64,
    /// Seconds spent inside I/O calls.
    pub io_time: f64,
    /// Number of I/O phases observed (≈ instances).
    pub n_phases: usize,
}

impl DarshanRecord {
    /// Job runtime in seconds.
    #[must_use]
    pub fn runtime(&self) -> f64 {
        self.end - self.start
    }

    /// Fraction of runtime spent in I/O.
    #[must_use]
    pub fn io_fraction(&self) -> f64 {
        let rt = self.runtime();
        if rt <= 0.0 {
            0.0
        } else {
            self.io_time / rt
        }
    }

    /// Size category of the job.
    #[must_use]
    pub fn category(&self) -> AppCategory {
        AppCategory::of_nodes(self.nodes)
    }
}

/// Periodic HPC applications of §4.1 used as synthetic job names.
const APP_NAMES: [&str; 6] = ["S3D", "HOMME", "GTC", "Enzo", "HACC", "CM1"];

/// A collection of Darshan records (one log file).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DarshanLog {
    /// All job records, unordered.
    pub records: Vec<DarshanRecord>,
}

impl DarshanLog {
    /// Serialize as pretty JSON to a writer.
    pub fn write_json<W: Write>(&self, w: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer_pretty(w, self)
    }

    /// Deserialize from a JSON reader.
    pub fn read_json<R: Read>(r: R) -> Result<Self, serde_json::Error> {
        serde_json::from_reader(r)
    }

    /// Synthesize `jobs` records covering one year (Fig. 5 shape):
    /// categories drawn from the usage mixture, runtimes of 1–24 h, I/O
    /// fractions per category.
    #[must_use]
    pub fn synthesize_year(platform: &Platform, seed: u64, jobs: usize) -> Self {
        const YEAR: f64 = 365.0 * 24.0 * 3600.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let records = (0..jobs as u64)
            .map(|job_id| {
                let cat = AppCategory::sample_weighted_by_jobs(&mut rng);
                let nodes = cat.sample_nodes(&mut rng).min(platform.procs);
                let runtime = rng.gen_range(3_600.0..86_400.0);
                let start = rng.gen_range(0.0..YEAR - runtime);
                let io_frac = cat.sample_io_fraction(&mut rng);
                let io_time = runtime * io_frac;
                // Volume the job could push during its I/O time.
                let total_bytes = platform.app_max_bw(nodes).get() * io_time;
                let n_phases = rng.gen_range(8..48);
                DarshanRecord {
                    job_id,
                    app_name: APP_NAMES[rng.gen_range(0..APP_NAMES.len())].to_string(),
                    nodes,
                    start,
                    end: start + runtime,
                    total_bytes,
                    io_time,
                    n_phases,
                }
            })
            .collect();
        Self { records }
    }

    /// Jobs running during `[t0, t1]`.
    #[must_use]
    pub fn jobs_in_window(&self, t0: f64, t1: f64) -> Vec<&DarshanRecord> {
        self.records
            .iter()
            .filter(|r| r.start < t1 && r.end > t0)
            .collect()
    }

    /// The paper's log→scenario reduction (§4.4):
    ///
    /// 1. take the jobs running in the window,
    /// 2. enforce periodicity: `n_tot = n_phases`,
    ///    `w = (runtime − io_time)/n`, `vol = total_bytes/n`,
    /// 3. Darshan coverage is ~50 %, so replicate the known applications
    ///    (fresh ids, staggered releases) until the node budget reaches
    ///    `coverage_target` of the machine or the budget is exhausted.
    #[must_use]
    pub fn reduce_to_scenario(
        &self,
        platform: &Platform,
        window: (f64, f64),
        coverage_target: f64,
        seed: u64,
    ) -> Vec<AppSpec> {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = self.jobs_in_window(window.0, window.1);
        let mut apps: Vec<AppSpec> = Vec::new();
        let mut used_nodes: u64 = 0;
        let budget = (platform.procs as f64 * coverage_target) as u64;

        let push =
            |rng: &mut StdRng, apps: &mut Vec<AppSpec>, used: &mut u64, rec: &DarshanRecord| {
                if *used + rec.nodes > platform.procs || rec.n_phases == 0 {
                    return;
                }
                let n = rec.n_phases;
                let w = ((rec.runtime() - rec.io_time) / n as f64).max(1.0);
                let vol = Bytes::new(rec.total_bytes / n as f64);
                let release = Time::secs(rng.gen_range(0.0..w + 1.0));
                apps.push(AppSpec::periodic(
                    apps.len(),
                    release,
                    rec.nodes,
                    Time::secs(w),
                    vol,
                    n.min(32),
                ));
                *used += rec.nodes;
            };

        for rec in &jobs {
            push(&mut rng, &mut apps, &mut used_nodes, rec);
        }
        // Coverage replication: clone observed jobs until the target.
        if !jobs.is_empty() {
            let mut guard = 0;
            while used_nodes < budget && guard < 10_000 {
                let rec = jobs[rng.gen_range(0..jobs.len())];
                push(&mut rng, &mut apps, &mut used_nodes, rec);
                guard += 1;
            }
        }
        apps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::app::validate_scenario;

    #[test]
    fn synthesis_is_deterministic_and_well_formed() {
        let p = Platform::intrepid();
        let a = DarshanLog::synthesize_year(&p, 1, 500);
        let b = DarshanLog::synthesize_year(&p, 1, 500);
        assert_eq!(a, b);
        for r in &a.records {
            assert!(r.runtime() > 0.0);
            assert!(r.io_fraction() > 0.0 && r.io_fraction() < 1.0);
            assert!(r.nodes >= 1 && r.nodes <= p.procs);
            assert!(APP_NAMES.contains(&r.app_name.as_str()));
        }
    }

    #[test]
    fn json_roundtrip() {
        let p = Platform::vesta();
        let log = DarshanLog::synthesize_year(&p, 2, 50);
        let mut buf = Vec::new();
        log.write_json(&mut buf).unwrap();
        let back = DarshanLog::read_json(buf.as_slice()).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn window_query_filters_by_overlap() {
        let p = Platform::intrepid();
        let log = DarshanLog::synthesize_year(&p, 3, 1_000);
        let (t0, t1) = (100_000.0, 200_000.0);
        let inside = log.jobs_in_window(t0, t1);
        assert!(!inside.is_empty());
        for r in &inside {
            assert!(r.start < t1 && r.end > t0);
        }
        let everything = log.jobs_in_window(f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(everything.len(), log.records.len());
    }

    #[test]
    fn reduction_produces_valid_periodic_scenarios() {
        let p = Platform::intrepid();
        // Enough jobs that a 50,000-second window is guaranteed non-empty.
        let log = DarshanLog::synthesize_year(&p, 4, 10_000);
        let apps = log.reduce_to_scenario(&p, (0.0, 50_000.0), 0.8, 7);
        assert!(!apps.is_empty());
        validate_scenario(&p, &apps).unwrap();
        for a in &apps {
            assert!(
                a.pattern().is_periodic(),
                "reduction must enforce periodicity"
            );
        }
    }

    #[test]
    fn replication_increases_coverage() {
        let p = Platform::intrepid();
        let log = DarshanLog::synthesize_year(&p, 5, 2_000);
        let window = (0.0, 30_000.0);
        let low = log.reduce_to_scenario(&p, window, 0.05, 7);
        let high = log.reduce_to_scenario(&p, window, 0.9, 7);
        let nodes = |apps: &[AppSpec]| apps.iter().map(AppSpec::procs).sum::<u64>();
        assert!(
            nodes(&high) >= nodes(&low),
            "higher coverage target must use at least as many nodes"
        );
    }

    #[test]
    fn category_distribution_follows_fig5_shape() {
        let p = Platform::intrepid();
        let log = DarshanLog::synthesize_year(&p, 6, 10_000);
        let mut counts = [0usize; 3];
        let mut node_secs = [0.0f64; 3];
        for r in &log.records {
            let idx = match r.category() {
                AppCategory::Small => 0,
                AppCategory::Large => 1,
                AppCategory::VeryLarge => 2,
            };
            counts[idx] += 1;
            node_secs[idx] += r.nodes as f64 * r.runtime();
        }
        // By job count, small dominates (Fig. 5: many small jobs)…
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        // …but by machine usage (node-seconds), large jobs dominate.
        assert!(node_secs[1] > node_secs[0]);
    }
}
