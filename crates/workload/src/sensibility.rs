//! The §4.3 *sensibility* perturbation (Fig. 7).
//!
//! "We define the sensibility of an application as
//! `Sens_w = (max_i w(k,i) − min_i w(k,i)) / max_i w(k,i)`. […] To compute
//! each point on the x % sensibility axis, we have generated applications
//! where the value of the computation has a continuous uniform
//! distribution between `w_min` and `w_min(1+x%)`."

use iosched_model::{AppSpec, Instance, InstancePattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replace each periodic application's constant work by per-instance draws
/// `w_i ~ U[w, w·(1+x)]` (and likewise the I/O volume with `vol_x`),
/// producing the non-periodic applications of Fig. 7.
///
/// `x` and `vol_x` are fractions (0.30 = "30 % sensibility").
///
/// # Panics
/// Panics on negative sensibility values.
#[must_use]
pub fn perturb(apps: &[AppSpec], x: f64, vol_x: f64, seed: u64) -> Vec<AppSpec> {
    assert!(x >= 0.0 && vol_x >= 0.0, "sensibility must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    apps.iter()
        .map(|app| {
            let instances: Vec<Instance> = app
                .pattern()
                .iter()
                .map(|inst| {
                    let w = if x > 0.0 && inst.work.get() > 0.0 {
                        inst.work * rng.gen_range(1.0..1.0 + x)
                    } else {
                        inst.work
                    };
                    let v = if vol_x > 0.0 && inst.vol.get() > 0.0 {
                        inst.vol * rng.gen_range(1.0..1.0 + vol_x)
                    } else {
                        inst.vol
                    };
                    Instance::new(w, v)
                })
                .collect();
            AppSpec::new(
                app.id(),
                app.release(),
                app.procs(),
                InstancePattern::Explicit(instances),
            )
        })
        .collect()
}

/// Measured work sensibility of an application:
/// `(max_i w_i − min_i w_i) / max_i w_i` (§4.3). Zero for periodic
/// applications.
#[must_use]
pub fn work_sensibility(app: &AppSpec) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for inst in app.pattern().iter() {
        lo = lo.min(inst.work.as_secs());
        hi = hi.max(inst.work.as_secs());
    }
    if hi <= 0.0 {
        0.0
    } else {
        (hi - lo) / hi
    }
}

/// Measured I/O-volume sensibility (the `Sens_io` of §4.3).
#[must_use]
pub fn io_sensibility(app: &AppSpec) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for inst in app.pattern().iter() {
        lo = lo.min(inst.vol.get());
        hi = hi.max(inst.vol.get());
    }
    if hi <= 0.0 {
        0.0
    } else {
        (hi - lo) / hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::{Bytes, Time};

    fn periodic_app() -> AppSpec {
        AppSpec::periodic(0, Time::ZERO, 100, Time::secs(100.0), Bytes::gib(10.0), 20)
    }

    #[test]
    fn zero_sensibility_is_identity_shape() {
        let apps = [periodic_app()];
        let out = perturb(&apps, 0.0, 0.0, 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].pattern().is_periodic());
        assert!((work_sensibility(&out[0])).abs() < 1e-12);
    }

    #[test]
    fn perturbed_work_stays_in_band_and_measures_below_x() {
        let apps = [periodic_app()];
        let x = 0.30;
        let out = perturb(&apps, x, 0.0, 7);
        let app = &out[0];
        for inst in app.pattern().iter() {
            let w = inst.work.as_secs();
            assert!((100.0..100.0 * (1.0 + x)).contains(&w), "w = {w}");
        }
        let s = work_sensibility(app);
        // Sens = (max−min)/max ≤ x/(1+x) < x by construction.
        assert!(s > 0.0 && s <= x / (1.0 + x) + 1e-9, "sens {s}");
    }

    #[test]
    fn io_perturbation_independent_of_work_perturbation() {
        let apps = [periodic_app()];
        let out = perturb(&apps, 0.0, 0.25, 9);
        let app = &out[0];
        assert!((work_sensibility(app)).abs() < 1e-12);
        assert!(io_sensibility(app) > 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let apps = [periodic_app()];
        assert_eq!(perturb(&apps, 0.2, 0.2, 5), perturb(&apps, 0.2, 0.2, 5));
        assert_ne!(perturb(&apps, 0.2, 0.2, 5), perturb(&apps, 0.2, 0.2, 6));
    }

    #[test]
    fn sensibility_of_example_from_paper() {
        // "if the amount of work between two instances varies from 65 to
        // 102 time units, then Sens_w = 1 − 65/102 ≈ 36 %".
        let app = AppSpec::new(
            0,
            Time::ZERO,
            1,
            InstancePattern::Explicit(vec![
                Instance::new(Time::secs(65.0), Bytes::gib(1.0)),
                Instance::new(Time::secs(102.0), Bytes::gib(1.0)),
            ]),
        );
        let s = work_sensibility(&app);
        assert!((s - (1.0 - 65.0 / 102.0)).abs() < 1e-12);
    }
}
