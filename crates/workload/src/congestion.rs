//! Seeded congested-moment generator — the stand-in for the Darshan logs
//! of "56 different congested moments on Intrepid" (Table 1) and "11
//! different congested moments on Mira" (Table 2).
//!
//! A congested moment is an application set whose aggregate steady-state
//! I/O demand exceeds the PFS bandwidth over a sustained window. The
//! generator draws a category-weighted mix (Fig. 5 shape) and then scales
//! the I/O volumes until the demand
//! `Σ_k vol(k) / (w(k) + time_io(k))` reaches a seed-dependent
//! oversubscription factor in `[1.5, 3]×B` — the regime in which the
//! paper's Figures 8–13 live (upper limits between ~40 % and ~95 %).

use crate::categories::AppCategory;
use iosched_model::{AppSpec, Bw, Bytes, Platform, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of Intrepid congested moments averaged in Table 1.
pub const INTREPID_CASES: usize = 56;
/// Number of Mira congested moments averaged in Table 2.
pub const MIRA_CASES: usize = 11;

/// Seeds for the Intrepid cases.
#[must_use]
pub fn intrepid_cases() -> Vec<u64> {
    (0..INTREPID_CASES as u64).collect()
}

/// Seeds for the Mira cases.
#[must_use]
pub fn mira_cases() -> Vec<u64> {
    (1_000..1_000 + MIRA_CASES as u64).collect()
}

/// Aggregate steady-state I/O demand of `apps` on `platform` (bytes/s each
/// application wants on average when running at its dedicated pace).
#[must_use]
pub fn aggregate_demand(platform: &Platform, apps: &[AppSpec]) -> Bw {
    apps.iter()
        .map(|a| {
            let inst = a.instance(0);
            let span = inst.work + platform.dedicated_io_time(a.procs(), inst.vol);
            inst.vol / span
        })
        .sum()
}

/// Generate one congested moment (deterministic in `seed`).
#[must_use]
pub fn congested_moment(platform: &Platform, seed: u64) -> Vec<AppSpec> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let k = rng.gen_range(5..=15);
    // Calibrated so the congestion-free upper limits land in the band the
    // paper's Figures 8-13 show (mostly 70-95 %) while aggregate demand
    // still exceeds the PFS.
    let oversubscription = rng.gen_range(1.15..1.9);

    // Draw the mix. Node counts are sampled *relative to the platform's
    // PFS saturation point* so that an Intrepid "large" application (one
    // that alone saturates the PFS, §4.1) stays "large" on Mira, whose
    // saturation point is 3.75× higher. On Intrepid this reduces exactly
    // to the §4.1 node boundaries.
    let sat = platform.saturation_procs() as f64;
    let mut specs: Vec<(u64, f64, f64, usize)> = Vec::with_capacity(k); // (nodes, w, io_frac, n)
    for _ in 0..k {
        let cat = AppCategory::sample_weighted(&mut rng);
        let frac = match cat {
            AppCategory::Small => rng.gen_range(0.05..1.0),
            AppCategory::Large => rng.gen_range(1.0..3.58),
            AppCategory::VeryLarge => rng.gen_range(3.58..12.8),
        };
        let nodes = ((frac * sat) as u64).clamp(1, platform.procs);
        let w = rng.gen_range(60.0..300.0);
        let io_frac = cat.sample_io_fraction(&mut rng) * rng.gen_range(0.5..1.0);
        let n = rng.gen_range(8..=16);
        specs.push((nodes, w, io_frac, n));
    }
    let total: u64 = specs.iter().map(|s| s.0).sum();
    if total > platform.procs {
        let scale = platform.procs as f64 / total as f64;
        for s in &mut specs {
            s.0 = ((s.0 as f64 * scale).floor() as u64).max(1);
        }
    }

    // Initial volumes from the I/O fraction: time_io = io_frac · w.
    let mut vols: Vec<Bytes> = specs
        .iter()
        .map(|&(nodes, w, io_frac, _)| platform.app_max_bw(nodes) * Time::secs(w * io_frac))
        .collect();

    // Fixed-point rescaling of volumes until the aggregate demand hits the
    // oversubscription target (demand is monotone in volume, so this
    // converges geometrically; 16 rounds put it well inside 1 %).
    let target = platform.total_bw * oversubscription;
    for _ in 0..16 {
        let demand: Bw = specs
            .iter()
            .zip(&vols)
            .map(|(&(nodes, w, _, _), &vol)| {
                let span = Time::secs(w) + platform.dedicated_io_time(nodes, vol);
                vol / span
            })
            .sum();
        if demand.get() <= 0.0 {
            break;
        }
        let factor = target / demand;
        for v in &mut vols {
            *v = *v * factor;
        }
    }

    specs
        .iter()
        .zip(&vols)
        .enumerate()
        .map(|(id, (&(nodes, w, _, n), &vol))| {
            let span = Time::secs(w) + platform.dedicated_io_time(nodes, vol);
            let release = Time::secs(rng.gen_range(0.0..span.as_secs()));
            AppSpec::periodic(id, release, nodes, Time::secs(w), vol, n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::app::validate_scenario;

    #[test]
    fn case_lists_have_the_paper_counts() {
        assert_eq!(intrepid_cases().len(), 56);
        assert_eq!(mira_cases().len(), 11);
        // Disjoint seed spaces.
        assert!(intrepid_cases().iter().all(|s| !mira_cases().contains(s)));
    }

    #[test]
    fn moments_are_valid_and_congested() {
        for (platform, seeds) in [
            (Platform::intrepid(), intrepid_cases()),
            (Platform::mira(), mira_cases()),
        ] {
            for &seed in seeds.iter().take(8) {
                let apps = congested_moment(&platform, seed);
                validate_scenario(&platform, &apps).unwrap();
                let demand = aggregate_demand(&platform, &apps);
                let ratio = demand / platform.total_bw;
                assert!(
                    ratio > 1.1,
                    "seed {seed}: demand {ratio:.2}×B is not congested"
                );
                assert!(ratio < 2.5, "seed {seed}: demand {ratio:.2}×B implausible");
            }
        }
    }

    #[test]
    fn moments_are_deterministic() {
        let p = Platform::intrepid();
        assert_eq!(congested_moment(&p, 3), congested_moment(&p, 3));
        assert_ne!(congested_moment(&p, 3), congested_moment(&p, 4));
    }

    #[test]
    fn app_counts_vary_across_seeds() {
        let p = Platform::intrepid();
        let counts: Vec<usize> = (0..20).map(|s| congested_moment(&p, s).len()).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(min < max, "all seeds produced {min} applications");
        assert!(*min >= 5 && *max <= 15);
    }
}
