//! The Vesta experiment scenarios of §5 (Figs. 14–16).
//!
//! The paper's modified IOR benchmark splits its processes into groups
//! running on different node counts; scenarios are written `x/y/z` where
//! each component is one application's node count ("for example 512/32
//! means there are two applications running, one on 512 nodes and the
//! other on 32").

use iosched_model::{AppSpec, Bytes, Platform, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One node-split scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VestaScenario {
    /// The paper's label, e.g. `"512/256/256/32"`.
    pub name: String,
    /// Node count of each application.
    pub nodes: Vec<u64>,
}

impl VestaScenario {
    /// Build from node counts (label derived).
    #[must_use]
    pub fn new(nodes: &[u64]) -> Self {
        let name = nodes
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("/");
        Self {
            name,
            nodes: nodes.to_vec(),
        }
    }

    /// Number of applications.
    #[must_use]
    pub fn app_count(&self) -> usize {
        self.nodes.len()
    }
}

/// The eleven scenarios of Figs. 14–15, in the paper's order.
#[must_use]
pub fn vesta_scenarios() -> Vec<VestaScenario> {
    [
        vec![256],
        vec![512],
        vec![32, 512],
        vec![256, 256],
        vec![256, 512],
        vec![256, 256, 256],
        vec![256, 256, 512],
        vec![512, 256, 32],
        vec![512, 256, 256, 32],
        vec![256, 256, 256, 256],
        vec![512, 512, 512, 512],
    ]
    .iter()
    .map(|nodes| VestaScenario::new(nodes))
    .collect()
}

/// The scenario Fig. 16 dissects per-application.
#[must_use]
pub fn fig16_scenario() -> VestaScenario {
    VestaScenario::new(&[512, 256, 256, 32])
}

/// IOR-like application parameters for the Vesta runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IorParams {
    /// Compute seconds between I/O phases (the added MPI_Reduce work).
    pub work: f64,
    /// Average I/O-over-computation time ratio (jittered ±30 %).
    pub io_ratio: f64,
    /// Iterations per application.
    pub iterations: usize,
}

impl Default for IorParams {
    fn default() -> Self {
        Self {
            work: 20.0,
            io_ratio: 0.30,
            iterations: 10,
        }
    }
}

/// Instantiate the applications of `scenario` on `platform`
/// (deterministic in `seed`).
#[must_use]
pub fn scenario_apps(
    scenario: &VestaScenario,
    platform: &Platform,
    params: IorParams,
    seed: u64,
) -> Vec<AppSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    scenario
        .nodes
        .iter()
        .enumerate()
        .map(|(id, &nodes)| {
            let work = Time::secs(params.work * rng.gen_range(0.9..1.1));
            let ratio = params.io_ratio * rng.gen_range(0.7..1.3);
            let vol: Bytes = platform.app_max_bw(nodes) * (work * ratio);
            // All IOR groups start together (the experiment controls the
            // exact moment all applications perform I/O).
            AppSpec::periodic(id, Time::ZERO, nodes, work, vol, params.iterations)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::app::validate_scenario;

    #[test]
    fn scenario_roster_matches_fig14() {
        let all = vesta_scenarios();
        assert_eq!(all.len(), 11);
        assert_eq!(all[0].name, "256");
        assert_eq!(all[2].name, "32/512");
        assert_eq!(all[8].name, "512/256/256/32");
        assert_eq!(all[10].name, "512/512/512/512");
        assert_eq!(all[10].app_count(), 4);
    }

    #[test]
    fn fig16_scenario_is_the_uneven_mix() {
        let s = fig16_scenario();
        assert_eq!(s.name, "512/256/256/32");
        assert_eq!(s.nodes, vec![512, 256, 256, 32]);
    }

    #[test]
    fn scenarios_fit_vesta() {
        let p = Platform::vesta();
        for s in vesta_scenarios() {
            let apps = scenario_apps(&s, &p, IorParams::default(), 9);
            assert_eq!(apps.len(), s.app_count());
            validate_scenario(&p, &apps).unwrap();
        }
    }

    #[test]
    fn apps_are_deterministic_and_sized_correctly() {
        let p = Platform::vesta();
        let s = fig16_scenario();
        let a = scenario_apps(&s, &p, IorParams::default(), 5);
        let b = scenario_apps(&s, &p, IorParams::default(), 5);
        assert_eq!(a, b);
        for (app, &nodes) in a.iter().zip(&s.nodes) {
            assert_eq!(app.procs(), nodes);
        }
    }

    #[test]
    fn io_volume_scales_with_node_count() {
        let p = Platform::vesta();
        let s = VestaScenario::new(&[32, 512]);
        let apps = scenario_apps(&s, &p, IorParams::default(), 3);
        // The 512-node group pushes (roughly) more bytes than the 32-node
        // one: its card bandwidth is 16× higher (jitter is only ±30 %).
        assert!(apps[1].instance(0).vol.get() > apps[0].instance(0).vol.get());
    }
}
