//! # iosched-workload
//!
//! Workload substrate standing in for the Darshan traces of Argonne's
//! Intrepid and Mira that drive the paper's evaluation (§4).
//!
//! The paper reduces every Darshan job record to the tuple the §2 model
//! needs — `(β, w, vol_io, n_tot, r)` — and *enforces periodicity* on it
//! ("we choose to enforce application periodicity by considering that
//! these applications have a fixed number of iterations, each of a
//! constant execution time and I/O volume", §4.4). This crate generates
//! exactly those tuples:
//!
//! * [`categories`] — the small / large / very-large application classes
//!   of §4.1 with a Fig. 5-shaped usage mixture,
//! * [`generator`] — the three Fig. 6 application mixes (10 large @ 20 %;
//!   50 small + 5 large @ 20 %; 50 small + 5 large @ 35 %),
//! * [`congestion`] — seeded congested moments for the Intrepid (56) and
//!   Mira (11) comparisons of Figs. 8–13 / Tables 1–2,
//! * [`sensibility`] — the §4.3 non-periodicity perturbation (Fig. 7),
//! * [`darshan`] — a synthetic Darshan-like JSON log format, a year-long
//!   log synthesizer and the paper's log→scenario reduction pipeline,
//! * [`ior_profile`] — the Vesta node-split scenarios of Figs. 14–16,
//! * [`stream`] — open-system arrival processes (Poisson / MMPP /
//!   trace-driven) and the lazy application stream they drive,
//! * [`spec`] — the serializable [`WorkloadSpec`] description unifying
//!   all of the above behind one `materialize(&Platform)` entry point
//!   and its lazy twin [`spec::AppSource`] (the campaign layer's
//!   workload axis).

pub mod categories;
pub mod congestion;
pub mod darshan;
pub mod generator;
pub mod ior_profile;
pub mod sensibility;
pub mod spec;
pub mod stream;
pub mod submission;

pub use categories::AppCategory;
pub use congestion::{congested_moment, intrepid_cases, mira_cases};
pub use darshan::{DarshanLog, DarshanRecord};
pub use generator::MixConfig;
pub use ior_profile::{scenario_apps, vesta_scenarios, VestaScenario};
pub use spec::{AppSource, WorkloadSpec};
pub use stream::{ArrivalProcess, StopRule, StreamIter};
pub use submission::AppSubmission;
