//! Parsing of external application submissions — the `submit` payload
//! of the `iosched serve` JSONL protocol.
//!
//! A submission describes *what the application does*, never *when or as
//! whom it runs*: the daemon assigns the dense [`AppId`] and the release
//! time (its virtual clock) at acceptance, because both are properties
//! of the admission sequence, not of the application. Keeping them out
//! of the wire format makes it impossible for a client to violate the
//! engine's dense-id/sorted-release admission contract by construction.
//!
//! ```json
//! {"procs": 100, "work": 8.0, "vol": 20.0, "count": 3}
//! {"procs": 64, "instances": [[10.0, 5.0], [0.0, 2.5]]}
//! ```
//!
//! `work` is seconds of computation per instance, `vol` GiB of I/O per
//! instance, `count` the number of instances (default 1). The explicit
//! `instances` form lists `[work_secs, vol_gib]` pairs. Every malformed
//! field is rejected with an error naming the field and the expected
//! shape — a daemon must be able to hand the message straight back to
//! the submitting client.
//!
//! [`AppId`]: iosched_model::AppId

use iosched_model::{AppSpec, Bytes, Instance, InstancePattern, Time};

/// One parsed submission: everything an [`AppSpec`] needs except the
/// id and release the daemon assigns at acceptance.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSubmission {
    /// Dedicated processors (β).
    pub procs: u64,
    /// The instance pattern (periodic or explicit).
    pub pattern: InstancePattern,
}

impl AppSubmission {
    /// Parse one submission payload. Errors are actionable: they name
    /// the offending field, the received value and the expected shape.
    pub fn from_value(v: &serde::Value) -> Result<Self, String> {
        let map = v.as_map().ok_or(
            "submission must be a JSON object like \
                    {\"procs\": 100, \"work\": 8.0, \"vol\": 20.0, \"count\": 3}",
        )?;

        for (key, _) in map {
            if !matches!(
                key.as_str(),
                "procs" | "work" | "vol" | "count" | "instances"
            ) {
                return Err(format!(
                    "unknown submission field '{key}' \
                     (expected procs, work, vol, count or instances)"
                ));
            }
        }
        let field = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, value)| value);
        let number = |key: &str| -> Result<Option<f64>, String> {
            match field(key) {
                None => Ok(None),
                Some(value) => {
                    let n = value
                        .as_f64()
                        .ok_or_else(|| format!("submission field '{key}' must be a number"))?;
                    if !n.is_finite() || n < 0.0 {
                        return Err(format!(
                            "submission field '{key}' is {n} but must be finite and non-negative"
                        ));
                    }
                    // Normalize -0.0: the derived AppSpec serde writes
                    // plain JSON numbers, which cannot carry the sign of
                    // zero — and a journaled spec must round-trip
                    // bit-identically.
                    Ok(Some(if n == 0.0 { 0.0 } else { n }))
                }
            }
        };

        let procs =
            number("procs")?.ok_or("submission is missing 'procs' (dedicated processor count)")?;
        if procs < 1.0 || procs.fract() != 0.0 {
            return Err(format!(
                "submission field 'procs' is {procs} but must be a positive integer"
            ));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let procs = procs as u64;

        let explicit = field("instances");
        let periodic =
            field("work").is_some() || field("vol").is_some() || field("count").is_some();
        let pattern = match (explicit, periodic) {
            (Some(_), true) => {
                return Err("submission mixes 'instances' with 'work'/'vol'/'count'; \
                            use one form or the other"
                    .into())
            }
            (None, false) => {
                return Err("submission needs either 'work'+'vol' (periodic form) \
                            or 'instances' (explicit form)"
                    .into())
            }
            (Some(list), false) => {
                let seq = list.as_seq().ok_or(
                    "submission field 'instances' must be an array of \
                            [work_secs, vol_gib] pairs",
                )?;
                if seq.is_empty() {
                    return Err("submission field 'instances' must list at least one \
                                [work_secs, vol_gib] pair"
                        .into());
                }
                let mut instances = Vec::with_capacity(seq.len());
                for (k, pair) in seq.iter().enumerate() {
                    let err = || {
                        format!(
                            "submission instance {k} must be a [work_secs, vol_gib] \
                             pair of finite non-negative numbers"
                        )
                    };
                    let pair = pair.as_seq().ok_or_else(err)?;
                    let [work, vol] = pair else {
                        return Err(err());
                    };
                    let (work, vol) = match (work.as_f64(), vol.as_f64()) {
                        (Some(w), Some(v))
                            if w.is_finite() && w >= 0.0 && v.is_finite() && v >= 0.0 =>
                        {
                            // Same -0.0 normalization as the periodic form.
                            (
                                if w == 0.0 { 0.0 } else { w },
                                if v == 0.0 { 0.0 } else { v },
                            )
                        }
                        _ => return Err(err()),
                    };
                    instances.push(Instance::new(Time::secs(work), Bytes::gib(vol)));
                }
                InstancePattern::Explicit(instances)
            }
            (None, true) => {
                let work = number("work")?
                    .ok_or("submission is missing 'work' (seconds of computation per instance)")?;
                let vol = number("vol")?
                    .ok_or("submission is missing 'vol' (GiB of I/O per instance)")?;
                let count = number("count")?.unwrap_or(1.0);
                // Upper bound: per-application progress accounting is
                // O(n_tot) in memory, and `count` arrives from untrusted
                // clients — an unbounded value is a one-line allocation
                // bomb. 10^7 instances already exceeds the engine's
                // default event budget.
                if count < 1.0 || count.fract() != 0.0 || count > 10_000_000.0 {
                    return Err(format!(
                        "submission field 'count' is {count} but must be a positive integer \
                         (at most 10000000 instances)"
                    ));
                }
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                InstancePattern::Periodic {
                    work: Time::secs(work),
                    vol: Bytes::gib(vol),
                    count: count as usize,
                }
            }
        };
        Ok(Self { procs, pattern })
    }

    /// Parse a raw JSON payload string (one protocol line's argument).
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let value = serde_json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        Self::from_value(&value)
    }

    /// Stamp the daemon-assigned identity onto the submission. The
    /// result still passes through the engine's admission validation
    /// ([`iosched_model::app::validate_open_arrival`]) — this only
    /// assembles, it does not bypass.
    #[must_use]
    pub fn into_app(self, id: usize, release: Time) -> AppSpec {
        AppSpec::new(id, release, self.procs, self.pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<AppSubmission, String> {
        AppSubmission::parse_json(text)
    }

    #[test]
    fn periodic_form_parses_with_defaulted_count() {
        let sub = parse(r#"{"procs": 100, "work": 8.0, "vol": 20.0, "count": 3}"#).unwrap();
        assert_eq!(sub.procs, 100);
        assert_eq!(
            sub.pattern,
            InstancePattern::Periodic {
                work: Time::secs(8.0),
                vol: Bytes::gib(20.0),
                count: 3
            }
        );
        let one = parse(r#"{"procs": 1, "work": 0.0, "vol": 1.5}"#).unwrap();
        assert!(matches!(
            one.pattern,
            InstancePattern::Periodic { count: 1, .. }
        ));
        // The stamped AppSpec is a valid application.
        let app = one.into_app(0, Time::secs(10.0));
        app.validate().unwrap();
        assert_eq!(app.id(), iosched_model::AppId(0));
        assert!(app.release().approx_eq(Time::secs(10.0)));
    }

    #[test]
    fn explicit_form_parses_instance_pairs() {
        let sub = parse(r#"{"procs": 64, "instances": [[10.0, 5.0], [0.0, 2.5]]}"#).unwrap();
        let InstancePattern::Explicit(instances) = &sub.pattern else {
            panic!("expected explicit pattern");
        };
        assert_eq!(instances.len(), 2);
        assert!(instances[0].work.approx_eq(Time::secs(10.0)));
        assert!(instances[1].vol.approx_eq(Bytes::gib(2.5)));
    }

    #[test]
    fn malformed_submissions_get_actionable_errors() {
        for (bad, needle) in [
            ("[]", "JSON object"),
            ("{}", "missing 'procs'"),
            (r#"{"procs": 100}"#, "either 'work'+'vol'"),
            (r#"{"procs": 0, "work": 1, "vol": 1}"#, "positive integer"),
            (r#"{"procs": 2.5, "work": 1, "vol": 1}"#, "positive integer"),
            (r#"{"procs": -4, "work": 1, "vol": 1}"#, "non-negative"),
            (r#"{"procs": 100, "work": 1}"#, "missing 'vol'"),
            (r#"{"procs": 100, "vol": 1}"#, "missing 'work'"),
            (r#"{"procs": 100, "work": -1, "vol": 1}"#, "'work'"),
            (
                r#"{"procs": 100, "work": 1, "vol": 1, "count": 0}"#,
                "'count'",
            ),
            (
                r#"{"procs": 100, "work": 1, "vol": 1, "count": 1.5}"#,
                "'count'",
            ),
            (r#"{"procs": 100, "work": "fast", "vol": 1}"#, "'work'"),
            (
                r#"{"procs": 100, "work": 1, "vol": 1, "nodes": 4}"#,
                "unknown submission field 'nodes'",
            ),
            (r#"{"procs": 64, "instances": []}"#, "at least one"),
            (r#"{"procs": 64, "instances": [[1.0]]}"#, "instance 0"),
            (
                r#"{"procs": 64, "instances": [[1.0, 2.0, 3.0]]}"#,
                "instance 0",
            ),
            (r#"{"procs": 64, "instances": [[1.0, -2.0]]}"#, "instance 0"),
            (r#"{"procs": 64, "instances": 7}"#, "array"),
            (
                r#"{"procs": 64, "instances": [[1.0, 1.0]], "work": 1}"#,
                "mixes",
            ),
            ("{not json", "invalid JSON"),
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(
                err.contains(needle),
                "{bad}: error '{err}' lacks '{needle}'"
            );
        }
    }
}
