//! Open-system workload streams: dynamic job arrivals.
//!
//! Everything the paper evaluates is a *closed* system — the full
//! application roster is known at `t = 0`. Production I/O schedulers
//! face an *open* stream of arriving jobs, the regime in which both
//! "Periodic I/O scheduling for super-computers" and "Mitigating Shared
//! Storage Congestion Using Control Theory" run their steady-state load
//! sweeps. This module provides the serializable arrival half of that
//! regime:
//!
//! * [`ArrivalProcess`] — how inter-arrival gaps are drawn: a
//!   deterministic seeded Poisson process, a two-phase MMPP (Markov-
//!   modulated Poisson: calm/burst phases with exponential dwell times),
//!   or a trace-driven list of gaps (cycled);
//! * [`StopRule`] — when the stream ends: after `n` applications or at a
//!   release-time horizon;
//! * [`StreamIter`] — the lazy, seeded iterator composing an arrival
//!   process with a *template pool* of application shapes (any closed
//!   [`crate::WorkloadSpec`] family), yielding release-sorted
//!   [`AppSpec`]s with dense ids, one at a time — a 100k-application
//!   stream never exists as a `Vec`.
//!
//! The composition with the rest of the workload layer lives in
//! [`crate::WorkloadSpec::Stream`].

use iosched_model::{AppSpec, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Salt decorrelating the template-pool *pick* stream from the
/// inter-arrival *gap* stream when both are driven by one stream seed.
pub const PICK_SEED_SALT: u64 = 0x9C1E;

/// How inter-arrival gaps are drawn. All processes are deterministic
/// functions of their parameters and the stream seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals: i.i.d. exponential gaps with mean `1/rate`.
    Poisson {
        /// Arrival rate λ in applications per second.
        rate: f64,
    },
    /// Two-phase Markov-modulated Poisson process: the stream alternates
    /// between a calm and a burst phase (exponential dwell times) and
    /// draws Poisson arrivals at the current phase's rate. `calm_rate`
    /// may be zero (completely quiet valleys).
    Mmpp {
        /// Arrival rate during the calm phase (may be 0).
        calm_rate: f64,
        /// Arrival rate during the burst phase (must be positive).
        burst_rate: f64,
        /// Mean dwell seconds in the calm phase.
        calm_secs: f64,
        /// Mean dwell seconds in the burst phase.
        burst_secs: f64,
    },
    /// Trace-driven gaps: the recorded inter-arrival list, cycled when
    /// the stop rule outlives it.
    Trace {
        /// Inter-arrival gaps in seconds (cycled).
        gaps: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Structural validation (campaign files fail fast, not deep inside
    /// a worker thread).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Self::Poisson { rate } => {
                if !(rate.is_finite() && *rate > 0.0) {
                    return Err(format!("poisson rate {rate} must be positive and finite"));
                }
                Ok(())
            }
            Self::Mmpp {
                calm_rate,
                burst_rate,
                calm_secs,
                burst_secs,
            } => {
                if !(calm_rate.is_finite() && *calm_rate >= 0.0) {
                    return Err(format!(
                        "mmpp calm rate {calm_rate} must be >= 0 and finite"
                    ));
                }
                if !(burst_rate.is_finite() && *burst_rate > 0.0) {
                    return Err(format!(
                        "mmpp burst rate {burst_rate} must be positive and finite"
                    ));
                }
                let dwell_ok = |d: f64| d.is_finite() && d > 0.0;
                if !dwell_ok(*calm_secs) || !dwell_ok(*burst_secs) {
                    return Err(format!(
                        "mmpp dwell times ({calm_secs}s, {burst_secs}s) must be positive"
                    ));
                }
                Ok(())
            }
            Self::Trace { gaps } => {
                if gaps.is_empty() {
                    return Err("trace arrival process has no gaps".into());
                }
                if gaps.iter().any(|g| !g.is_finite() || *g < 0.0) {
                    return Err("trace gaps must be finite and non-negative".into());
                }
                if gaps.iter().sum::<f64>() <= 0.0 {
                    return Err(
                        "trace gaps sum to zero: the cycled stream would never advance".into(),
                    );
                }
                Ok(())
            }
        }
    }

    /// Seed-free label used in report keys. Labels carry every
    /// parameter (full precision), so a fine sweep over any knob keeps
    /// distinct campaign cell labels — the same convention policy
    /// serde-names follow.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Poisson { rate } => format!("poisson@{rate}/s"),
            Self::Mmpp {
                calm_rate,
                burst_rate,
                calm_secs,
                burst_secs,
            } => format!("mmpp@{calm_rate}~{burst_rate}/s:{calm_secs}+{burst_secs}s"),
            Self::Trace { gaps } => {
                format!("trace({}x{}s)", gaps.len(), gaps.iter().sum::<f64>())
            }
        }
    }

    /// Deterministic gap sampler for this process.
    ///
    /// # Panics
    /// Panics on a process [`ArrivalProcess::validate`] rejects — a
    /// degenerate MMPP (both rates zero, or a zero dwell) would make
    /// [`ArrivalSampler::next_gap`] spin forever, so misuse fails loudly
    /// here instead of hanging there.
    #[must_use]
    pub fn sampler(&self, seed: u64) -> ArrivalSampler {
        if let Err(e) = self.validate() {
            panic!("invalid arrival process: {e}");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let state = match self {
            Self::Poisson { rate } => SamplerState::Poisson { rate: *rate },
            Self::Mmpp {
                calm_rate,
                burst_rate,
                calm_secs,
                burst_secs,
            } => SamplerState::Mmpp {
                rates: [*calm_rate, *burst_rate],
                dwells: [*calm_secs, *burst_secs],
                phase: 0,
                phase_left: exponential(&mut rng, 1.0 / *calm_secs),
            },
            Self::Trace { gaps } => SamplerState::Trace {
                gaps: gaps.clone(),
                cursor: 0,
            },
        };
        ArrivalSampler { rng, state }
    }
}

/// Draw an `Exp(rate)` variate; `f64::INFINITY` when the rate is zero.
fn exponential(rng: &mut StdRng, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    // 1 - u in (0, 1]: ln never sees zero.
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / rate
}

#[derive(Debug, Clone)]
enum SamplerState {
    Poisson {
        rate: f64,
    },
    Mmpp {
        rates: [f64; 2],
        dwells: [f64; 2],
        phase: usize,
        /// Seconds left in the current phase.
        phase_left: f64,
    },
    Trace {
        gaps: Vec<f64>,
        cursor: usize,
    },
}

/// Stateful deterministic inter-arrival gap stream (see
/// [`ArrivalProcess::sampler`]).
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    rng: StdRng,
    state: SamplerState,
}

impl ArrivalSampler {
    /// The gap (seconds) between the previous arrival and the next one.
    pub fn next_gap(&mut self) -> f64 {
        match &mut self.state {
            SamplerState::Poisson { rate } => exponential(&mut self.rng, *rate),
            SamplerState::Mmpp {
                rates,
                dwells,
                phase,
                phase_left,
            } => {
                // Walk phases until an arrival lands inside one: the gap
                // accumulates the quiet remainders of crossed phases.
                let mut gap = 0.0;
                loop {
                    let candidate = exponential(&mut self.rng, rates[*phase]);
                    if candidate <= *phase_left {
                        *phase_left -= candidate;
                        return gap + candidate;
                    }
                    gap += *phase_left;
                    *phase = 1 - *phase;
                    *phase_left = exponential(&mut self.rng, 1.0 / dwells[*phase]);
                }
            }
            SamplerState::Trace { gaps, cursor } => {
                let gap = gaps[*cursor];
                *cursor = (*cursor + 1) % gaps.len();
                gap
            }
        }
    }
}

/// When a stream stops producing applications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StopRule {
    /// Exactly this many applications.
    Apps(usize),
    /// Applications released strictly before this horizon (seconds).
    Horizon(f64),
}

impl StopRule {
    /// Structural validation.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Self::Apps(n) => {
                if *n == 0 {
                    return Err("stream stop rule needs at least one application".into());
                }
                Ok(())
            }
            Self::Horizon(h) => {
                if !(h.is_finite() && *h > 0.0) {
                    return Err(format!("stream horizon {h}s must be positive and finite"));
                }
                Ok(())
            }
        }
    }

    /// Seed-free label used in report keys.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Apps(n) => format!("x{n}"),
            Self::Horizon(h) => format!("<{h}s"),
        }
    }
}

/// The lazy application stream: arrivals drawn from the sampler,
/// application *shapes* drawn uniformly from a template pool, ids dense
/// in arrival order, releases non-decreasing. This is the only producer
/// of open-system rosters; it is deterministic in `(pool, process, seed)`.
pub struct StreamIter {
    pool: Vec<AppSpec>,
    gaps: ArrivalSampler,
    picks: StdRng,
    stop: StopRule,
    clock: f64,
    next_id: usize,
}

impl StreamIter {
    /// Compose a template pool with an arrival process.
    ///
    /// # Panics
    /// Panics on an empty pool — [`crate::WorkloadSpec::validate`]
    /// rejects that before any iterator is built.
    #[must_use]
    pub fn new(pool: Vec<AppSpec>, process: &ArrivalProcess, stop: StopRule, seed: u64) -> Self {
        assert!(!pool.is_empty(), "stream template pool is empty");
        Self {
            pool,
            gaps: process.sampler(seed),
            picks: StdRng::seed_from_u64(seed ^ PICK_SEED_SALT),
            stop,
            clock: 0.0,
            next_id: 0,
        }
    }

    /// Applications yielded so far.
    #[must_use]
    pub fn yielded(&self) -> usize {
        self.next_id
    }
}

impl Iterator for StreamIter {
    type Item = AppSpec;

    fn next(&mut self) -> Option<AppSpec> {
        if let StopRule::Apps(n) = self.stop {
            if self.next_id >= n {
                return None;
            }
        }
        self.clock += self.gaps.next_gap();
        if let StopRule::Horizon(h) = self.stop {
            if self.clock >= h {
                return None;
            }
        }
        let shape = &self.pool[self.picks.gen_range(0..self.pool.len())];
        let mut app = shape.clone();
        app.set_id(self.next_id);
        app.set_release(Time::secs(self.clock));
        self.next_id += 1;
        Some(app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::Bytes;

    fn pool() -> Vec<AppSpec> {
        vec![
            AppSpec::periodic(0, Time::ZERO, 64, Time::secs(10.0), Bytes::gib(5.0), 2),
            AppSpec::periodic(
                1,
                Time::secs(3.0),
                128,
                Time::secs(20.0),
                Bytes::gib(10.0),
                3,
            ),
        ]
    }

    #[test]
    fn poisson_stream_is_deterministic_and_sorted() {
        let p = ArrivalProcess::Poisson { rate: 0.5 };
        let a: Vec<AppSpec> = StreamIter::new(pool(), &p, StopRule::Apps(50), 7).collect();
        let b: Vec<AppSpec> = StreamIter::new(pool(), &p, StopRule::Apps(50), 7).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for (i, app) in a.iter().enumerate() {
            assert_eq!(app.id().0, i, "ids dense in arrival order");
        }
        for w in a.windows(2) {
            assert!(w[0].release() <= w[1].release(), "releases non-decreasing");
        }
        let c: Vec<AppSpec> = StreamIter::new(pool(), &p, StopRule::Apps(50), 8).collect();
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn poisson_rate_is_respected_on_average() {
        let p = ArrivalProcess::Poisson { rate: 0.25 };
        let apps: Vec<AppSpec> = StreamIter::new(pool(), &p, StopRule::Apps(2_000), 3).collect();
        let span = apps.last().unwrap().release().as_secs();
        let rate = 2_000.0 / span;
        assert!(
            (rate - 0.25).abs() < 0.02,
            "empirical rate {rate} far from 0.25"
        );
    }

    #[test]
    fn horizon_stop_rule_truncates_by_release() {
        let p = ArrivalProcess::Poisson { rate: 1.0 };
        let apps: Vec<AppSpec> =
            StreamIter::new(pool(), &p, StopRule::Horizon(100.0), 11).collect();
        assert!(!apps.is_empty());
        assert!(apps.iter().all(|a| a.release().as_secs() < 100.0));
        // Roughly rate × horizon arrivals.
        assert!((60..160).contains(&apps.len()), "{} arrivals", apps.len());
    }

    #[test]
    fn mmpp_bursts_cluster_arrivals() {
        let calm = ArrivalProcess::Poisson { rate: 0.1 };
        let bursty = ArrivalProcess::Mmpp {
            calm_rate: 0.01,
            burst_rate: 2.0,
            calm_secs: 500.0,
            burst_secs: 50.0,
        };
        let n = 1_000;
        let flat: Vec<f64> = StreamIter::new(pool(), &calm, StopRule::Apps(n), 5)
            .map(|a| a.release().as_secs())
            .collect();
        let clustered: Vec<f64> = StreamIter::new(pool(), &bursty, StopRule::Apps(n), 5)
            .map(|a| a.release().as_secs())
            .collect();
        // Burstiness shows as gap variance far above the flat stream's
        // (both normalized by their mean gap → squared CoV; ≈1 for
        // Poisson, ≫1 for the burst-phase MMPP).
        let cov2 = |ts: &[f64]| {
            let gaps: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let (flat_cov, burst_cov) = (cov2(&flat), cov2(&clustered));
        assert!(
            burst_cov > 3.0 * flat_cov,
            "mmpp CoV² {burst_cov} not clustered vs poisson {flat_cov}"
        );
    }

    #[test]
    fn mmpp_with_silent_calm_phase_still_advances() {
        let p = ArrivalProcess::Mmpp {
            calm_rate: 0.0,
            burst_rate: 1.0,
            calm_secs: 10.0,
            burst_secs: 10.0,
        };
        let apps: Vec<AppSpec> = StreamIter::new(pool(), &p, StopRule::Apps(100), 1).collect();
        assert_eq!(apps.len(), 100);
    }

    #[test]
    fn trace_gaps_cycle() {
        let p = ArrivalProcess::Trace {
            gaps: vec![1.0, 2.0, 3.0],
        };
        let apps: Vec<AppSpec> = StreamIter::new(pool(), &p, StopRule::Apps(7), 0).collect();
        let releases: Vec<f64> = apps.iter().map(|a| a.release().as_secs()).collect();
        assert_eq!(releases, vec![1.0, 3.0, 6.0, 7.0, 9.0, 12.0, 13.0]);
    }

    #[test]
    fn validation_rejects_degenerate_processes() {
        assert!(ArrivalProcess::Poisson { rate: 0.0 }.validate().is_err());
        assert!(ArrivalProcess::Poisson { rate: f64::NAN }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Mmpp {
            calm_rate: -1.0,
            burst_rate: 1.0,
            calm_secs: 1.0,
            burst_secs: 1.0
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Mmpp {
            calm_rate: 0.0,
            burst_rate: 0.0,
            calm_secs: 1.0,
            burst_secs: 1.0
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Trace { gaps: vec![] }.validate().is_err());
        assert!(ArrivalProcess::Trace {
            gaps: vec![0.0, 0.0]
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Trace {
            gaps: vec![1.0, -2.0]
        }
        .validate()
        .is_err());
        assert!(StopRule::Apps(0).validate().is_err());
        assert!(StopRule::Horizon(0.0).validate().is_err());
        assert!(StopRule::Horizon(f64::INFINITY).validate().is_err());
        // The valid forms pass.
        assert!(ArrivalProcess::Poisson { rate: 0.5 }.validate().is_ok());
        assert!(StopRule::Apps(10).validate().is_ok());
        assert!(StopRule::Horizon(1_000.0).validate().is_ok());
    }

    #[test]
    fn labels_distinguish_every_parameter() {
        // Dwell times flip: same rates, different burstiness — distinct
        // labels (two campaign cells must not collapse into one).
        let a = ArrivalProcess::Mmpp {
            calm_rate: 0.01,
            burst_rate: 2.0,
            calm_secs: 500.0,
            burst_secs: 50.0,
        };
        let b = ArrivalProcess::Mmpp {
            calm_rate: 0.01,
            burst_rate: 2.0,
            calm_secs: 50.0,
            burst_secs: 500.0,
        };
        assert_ne!(a.label(), b.label());
        // Different traces of equal length stay distinct too.
        let t1 = ArrivalProcess::Trace {
            gaps: vec![1.0, 2.0, 3.0],
        };
        let t2 = ArrivalProcess::Trace {
            gaps: vec![5.0, 1.0, 1.0],
        };
        assert_ne!(t1.label(), t2.label());
    }

    #[test]
    #[should_panic(expected = "invalid arrival process")]
    fn sampler_rejects_degenerate_processes_instead_of_hanging() {
        // Both rates zero: next_gap() would alternate phases forever.
        let p = ArrivalProcess::Mmpp {
            calm_rate: 0.0,
            burst_rate: 0.0,
            calm_secs: 10.0,
            burst_secs: 10.0,
        };
        let _ = p.sampler(0);
    }

    #[test]
    fn serde_roundtrip_every_process() {
        for p in [
            ArrivalProcess::Poisson { rate: 0.05 },
            ArrivalProcess::Mmpp {
                calm_rate: 0.01,
                burst_rate: 0.5,
                calm_secs: 300.0,
                burst_secs: 60.0,
            },
            ArrivalProcess::Trace {
                gaps: vec![5.0, 1.0],
            },
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: ArrivalProcess = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
        for s in [StopRule::Apps(100), StopRule::Horizon(5_000.0)] {
            let json = serde_json::to_string(&s).unwrap();
            let back: StopRule = serde_json::from_str(&json).unwrap();
            assert_eq!(s, back);
        }
    }
}
