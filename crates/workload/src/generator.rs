//! Random application-mix generator for the Fig. 6 study.
//!
//! §4.2: "two scenarios cover over 95 % of the cases: a few large or
//! very-large applications running alone on the whole system, or a mix of
//! small and large applications dividing the machine un-uniformly."
//! Fig. 6 evaluates (a) 10 large applications at an average
//! I/O-over-computation ratio of 20 %, (b) 50 small + 5 large at 20 %,
//! (c) 50 small + 5 large at 35 %; each point is the mean of 200 random
//! mixes.

use crate::categories::AppCategory;
use iosched_model::{AppSpec, Bytes, Platform, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of one random mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixConfig {
    /// Number of small applications.
    pub small: usize,
    /// Number of large applications.
    pub large: usize,
    /// Number of very large applications.
    pub very_large: usize,
    /// Average I/O-time-over-computation-time ratio (`time_io / w`);
    /// individual applications jitter within ±50 % of it.
    pub io_ratio: f64,
    /// Compute-per-instance range `w` (seconds).
    pub work_range: (f64, f64),
    /// Instance-count range (inclusive).
    pub instances: (usize, usize),
    /// Release jitter as a fraction of the instance span.
    pub release_jitter: f64,
}

impl MixConfig {
    /// Fig. 6(a): 10 large applications, 20 % I/O ratio.
    #[must_use]
    pub fn fig6a() -> Self {
        Self {
            small: 0,
            large: 10,
            very_large: 0,
            io_ratio: 0.20,
            ..Self::base()
        }
    }

    /// Fig. 6(b): 50 small and 5 large applications, 20 % I/O ratio.
    #[must_use]
    pub fn fig6b() -> Self {
        Self {
            small: 50,
            large: 5,
            very_large: 0,
            io_ratio: 0.20,
            ..Self::base()
        }
    }

    /// Fig. 6(c): 50 small and 5 large applications, 35 % I/O ratio.
    #[must_use]
    pub fn fig6c() -> Self {
        Self {
            small: 50,
            large: 5,
            very_large: 0,
            io_ratio: 0.35,
            ..Self::base()
        }
    }

    fn base() -> Self {
        Self {
            small: 0,
            large: 0,
            very_large: 0,
            io_ratio: 0.20,
            work_range: (100.0, 400.0),
            instances: (8, 12),
            release_jitter: 1.0,
        }
    }

    /// Total number of applications.
    #[must_use]
    pub fn count(&self) -> usize {
        self.small + self.large + self.very_large
    }

    /// Generate one mix (deterministic in `seed`).
    ///
    /// Node counts are sampled per category and, if the machine is
    /// oversubscribed, scaled down proportionally so `Σβ ≤ N` (the model
    /// requires dedicated processors).
    ///
    /// # Panics
    /// Panics on an empty mix.
    #[must_use]
    pub fn generate(&self, platform: &Platform, seed: u64) -> Vec<AppSpec> {
        assert!(
            self.count() > 0,
            "mix must contain at least one application"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cats = Vec::with_capacity(self.count());
        cats.extend(std::iter::repeat_n(AppCategory::Small, self.small));
        cats.extend(std::iter::repeat_n(AppCategory::Large, self.large));
        cats.extend(std::iter::repeat_n(AppCategory::VeryLarge, self.very_large));

        let mut nodes: Vec<u64> = cats.iter().map(|c| c.sample_nodes(&mut rng)).collect();
        let total: u64 = nodes.iter().sum();
        if total > platform.procs {
            let scale = platform.procs as f64 / total as f64;
            for n in &mut nodes {
                *n = ((*n as f64 * scale).floor() as u64).max(1);
            }
        }

        cats.iter()
            .zip(nodes)
            .enumerate()
            .map(|(id, (_, procs))| {
                let work = Time::secs(rng.gen_range(self.work_range.0..self.work_range.1));
                let ratio = self.io_ratio * rng.gen_range(0.5..1.5);
                let tio = work * ratio;
                let vol: Bytes = platform.app_max_bw(procs) * tio;
                let count = rng.gen_range(self.instances.0..=self.instances.1);
                let span = work + tio;
                let release = Time::secs(rng.gen_range(
                    0.0..=(span.as_secs() * self.release_jitter).max(f64::MIN_POSITIVE),
                ));
                AppSpec::periodic(id, release, procs, work, vol, count)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::app::validate_scenario;

    #[test]
    fn fig6_mixes_have_the_paper_composition() {
        assert_eq!(MixConfig::fig6a().count(), 10);
        assert_eq!(MixConfig::fig6b().count(), 55);
        assert!((MixConfig::fig6c().io_ratio - 0.35).abs() < 1e-12);
    }

    #[test]
    fn generated_mixes_are_valid_scenarios() {
        let p = Platform::intrepid();
        for seed in 0..5 {
            for cfg in [MixConfig::fig6a(), MixConfig::fig6b(), MixConfig::fig6c()] {
                let apps = cfg.generate(&p, seed);
                assert_eq!(apps.len(), cfg.count());
                validate_scenario(&p, &apps).unwrap();
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let p = Platform::intrepid();
        let a = MixConfig::fig6b().generate(&p, 42);
        let b = MixConfig::fig6b().generate(&p, 42);
        assert_eq!(a, b);
        let c = MixConfig::fig6b().generate(&p, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn io_ratio_is_respected_on_average() {
        let p = Platform::intrepid();
        let cfg = MixConfig::fig6a();
        let mut ratios = Vec::new();
        for seed in 0..20 {
            for app in cfg.generate(&p, seed) {
                let inst = app.instance(0);
                let tio = p.dedicated_io_time(app.procs(), inst.vol);
                ratios.push(tio / inst.work);
            }
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            (mean - 0.20).abs() < 0.03,
            "mean I/O ratio {mean} far from configured 0.20"
        );
    }

    #[test]
    fn oversubscribed_mix_is_scaled_to_fit() {
        // Vesta has 2,048 nodes; 50 small + 5 large sampled nodes vastly
        // exceed it — generation must still produce a valid scenario.
        let p = Platform::vesta();
        let apps = MixConfig::fig6b().generate(&p, 1);
        validate_scenario(&p, &apps).unwrap();
        let total: u64 = apps.iter().map(AppSpec::procs).sum();
        assert!(total <= p.procs);
    }
}
