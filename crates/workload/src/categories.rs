//! Application size categories of §4.1, calibrated on the Fig. 5 shape.
//!
//! The paper divides Intrepid's 2013 workload into:
//!
//! * **small** — fewer than 1,284 nodes,
//! * **large** — 1,285 to 4,584 nodes,
//! * **very large** — more than 4,584 nodes,
//!
//! and reports (Fig. 5) how much of the machine each class occupies per
//! day and what fraction of its runtime each class spends in I/O. The
//! figures themselves are images; the constants below are our calibration
//! of their shape (documented substitution, DESIGN.md §1): large jobs
//! dominate machine usage, small jobs dominate job *count*, and the I/O
//! time fraction grows with size class.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Size class of an application (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppCategory {
    /// `< 1,284` nodes.
    Small,
    /// `1,285 ..= 4,584` nodes.
    Large,
    /// `> 4,584` nodes.
    VeryLarge,
}

impl AppCategory {
    /// Upper node bound of the small class.
    pub const SMALL_MAX_NODES: u64 = 1_284;
    /// Upper node bound of the large class.
    pub const LARGE_MAX_NODES: u64 = 4_584;

    /// All categories, smallest first.
    pub const ALL: [AppCategory; 3] = [Self::Small, Self::Large, Self::VeryLarge];

    /// Classify a node count.
    #[must_use]
    pub fn of_nodes(nodes: u64) -> Self {
        if nodes <= Self::SMALL_MAX_NODES {
            Self::Small
        } else if nodes <= Self::LARGE_MAX_NODES {
            Self::Large
        } else {
            Self::VeryLarge
        }
    }

    /// Node range this category samples from (inclusive).
    #[must_use]
    pub fn node_range(&self) -> (u64, u64) {
        match self {
            Self::Small => (64, Self::SMALL_MAX_NODES),
            Self::Large => (Self::SMALL_MAX_NODES + 1, Self::LARGE_MAX_NODES),
            Self::VeryLarge => (Self::LARGE_MAX_NODES + 1, 16_384),
        }
    }

    /// Sample a node count uniformly from the category range.
    #[must_use]
    pub fn sample_nodes<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let (lo, hi) = self.node_range();
        rng.gen_range(lo..=hi)
    }

    /// Fraction of total system usage attributed to this category in the
    /// Fig. 5a shape (sums to 1).
    #[must_use]
    pub fn usage_share(&self) -> f64 {
        match self {
            Self::Small => 0.30,
            Self::Large => 0.55,
            Self::VeryLarge => 0.15,
        }
    }

    /// Range of the fraction of runtime spent doing I/O for this category
    /// (the Fig. 5b shape: bigger applications checkpoint more state).
    #[must_use]
    pub fn io_fraction_range(&self) -> (f64, f64) {
        match self {
            Self::Small => (0.05, 0.30),
            Self::Large => (0.10, 0.40),
            Self::VeryLarge => (0.15, 0.45),
        }
    }

    /// Sample an I/O time fraction for a job of this category.
    #[must_use]
    pub fn sample_io_fraction<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (lo, hi) = self.io_fraction_range();
        rng.gen_range(lo..hi)
    }

    /// Fraction of the *job count* attributed to this category (sums
    /// to 1). Derived from the usage shares divided by the mean node
    /// count of each class: most jobs are small even though large jobs
    /// dominate machine usage — the Fig. 5 relationship.
    #[must_use]
    pub fn job_share(&self) -> f64 {
        match self {
            Self::Small => 0.69,
            Self::Large => 0.29,
            Self::VeryLarge => 0.02,
        }
    }

    /// Sample a category according to the usage mixture (an application
    /// drawn this way represents a slice of *machine usage* — used by the
    /// congested-moment generator, where big applications dominate).
    #[must_use]
    pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::sample_with(rng, AppCategory::usage_share)
    }

    /// Sample a category according to the job-count mixture (used when
    /// synthesizing job logs, where small jobs dominate by count).
    #[must_use]
    pub fn sample_weighted_by_jobs<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::sample_with(rng, AppCategory::job_share)
    }

    fn sample_with<R: Rng + ?Sized>(rng: &mut R, weight: fn(&Self) -> f64) -> Self {
        let x: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for c in Self::ALL {
            acc += weight(&c);
            if x < acc {
                return c;
            }
        }
        Self::VeryLarge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classification_matches_paper_boundaries() {
        assert_eq!(AppCategory::of_nodes(100), AppCategory::Small);
        assert_eq!(AppCategory::of_nodes(1_284), AppCategory::Small);
        assert_eq!(AppCategory::of_nodes(1_285), AppCategory::Large);
        assert_eq!(AppCategory::of_nodes(4_584), AppCategory::Large);
        assert_eq!(AppCategory::of_nodes(4_585), AppCategory::VeryLarge);
    }

    #[test]
    fn sampled_nodes_stay_in_class() {
        let mut rng = StdRng::seed_from_u64(7);
        for c in AppCategory::ALL {
            for _ in 0..200 {
                let n = c.sample_nodes(&mut rng);
                assert_eq!(AppCategory::of_nodes(n), c, "{n} escaped {c:?}");
            }
        }
    }

    #[test]
    fn usage_shares_sum_to_one() {
        let sum: f64 = AppCategory::ALL.iter().map(AppCategory::usage_share).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let jobs: f64 = AppCategory::ALL.iter().map(AppCategory::job_share).sum();
        assert!((jobs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn job_mixture_is_dominated_by_small_jobs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut small = 0usize;
        let n = 10_000;
        for _ in 0..n {
            if AppCategory::sample_weighted_by_jobs(&mut rng) == AppCategory::Small {
                small += 1;
            }
        }
        let frac = small as f64 / n as f64;
        assert!((frac - 0.69).abs() < 0.02, "small job fraction {frac}");
    }

    #[test]
    fn io_fractions_in_range_and_monotone() {
        let mut rng = StdRng::seed_from_u64(3);
        for c in AppCategory::ALL {
            let (lo, hi) = c.io_fraction_range();
            assert!(lo < hi && lo > 0.0 && hi < 1.0);
            for _ in 0..100 {
                let f = c.sample_io_fraction(&mut rng);
                assert!((lo..hi).contains(&f));
            }
        }
        // Bigger classes do relatively more I/O (Fig. 5b shape).
        assert!(
            AppCategory::Small.io_fraction_range().1
                <= AppCategory::VeryLarge.io_fraction_range().1
        );
    }

    #[test]
    fn weighted_sampling_roughly_matches_shares() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        let n = 20_000;
        for _ in 0..n {
            match AppCategory::sample_weighted(&mut rng) {
                AppCategory::Small => counts[0] += 1,
                AppCategory::Large => counts[1] += 1,
                AppCategory::VeryLarge => counts[2] += 1,
            }
        }
        for (i, c) in AppCategory::ALL.iter().enumerate() {
            let frac = counts[i] as f64 / n as f64;
            assert!(
                (frac - c.usage_share()).abs() < 0.02,
                "{c:?}: {frac} vs {}",
                c.usage_share()
            );
        }
    }
}
