//! Protocol robustness: no line of input — random bytes, mutated valid
//! requests, structurally valid but semantically absurd submissions —
//! may ever panic the parser or kill a session. Malformed lines must
//! come back as actionable errors; the daemon answers and lives on.

use iosched_core::registry::PolicyFactory;
use iosched_model::{Platform, Time};
use iosched_serve::journal::{Journal, ServeSpec};
use iosched_serve::protocol::parse_request;
use iosched_serve::session::Session;
use iosched_sim::{SimConfig, Simulation};
use iosched_workload::AppSubmission;
use proptest::prelude::*;

const TEMPLATES: &[&str] = &[
    r#"{"cmd":"submit","procs":100,"work":8.0,"vol":20.0,"count":3}"#,
    r#"{"cmd":"submit","procs":64,"instances":[[10.0,5.0],[0.0,2.5]],"release":3600}"#,
    r#"{"cmd":"status"}"#,
    r#"{"cmd":"telemetry","follow":true}"#,
    r#"{"cmd":"metrics"}"#,
    r#"{"cmd":"checkpoint"}"#,
    r#"{"cmd":"drain"}"#,
    r#"{"cmd":"shutdown"}"#,
];

proptest! {
    /// Arbitrary byte soup: the parser returns a non-empty, printable
    /// error (or a valid request) — it never panics.
    #[test]
    fn random_bytes_never_panic_the_parser(bytes in prop::collection::vec(0u64..256, 0..120)) {
        let raw: Vec<u8> = bytes.iter().map(|b| *b as u8).collect();
        let line = String::from_utf8_lossy(&raw);
        if let Err(e) = parse_request(&line) {
            prop_assert!(!e.is_empty());
        }
    }

    /// Single-byte mutations of valid requests: every outcome is a
    /// clean parse or a clean error.
    #[test]
    fn mutated_valid_lines_never_panic_the_parser(
        template in 0usize..TEMPLATES.len(),
        pos in 0u64..200,
        replacement in 0u64..256,
    ) {
        let mut raw = TEMPLATES[template].as_bytes().to_vec();
        let pos = (pos as usize) % raw.len();
        raw[pos] = replacement as u8;
        let line = String::from_utf8_lossy(&raw);
        if let Err(e) = parse_request(&line) {
            prop_assert!(!e.is_empty());
        }
    }

    /// Structurally valid submits with hostile numerics parse or are
    /// rejected with the offending field named — and an accepted parse
    /// always yields a submission the engine can validate (no panics
    /// downstream either).
    #[test]
    fn hostile_submit_numerics_parse_or_name_the_field(
        procs in -3.0f64..1e7,
        work in -1.0f64..1e6,
        vol in -1.0f64..1e6,
        count in -2.0f64..40.0,
        scale in 0u64..7,
    ) {
        // Push values through extreme magnitudes, including NaN/inf.
        let warp = |x: f64| match scale {
            0 => x,
            1 => x * 1e300,
            2 => x * 1e-300,
            3 => x / 0.0,
            4 => f64::NAN,
            5 => -x,
            _ => x.fract(),
        };
        let line = format!(
            r#"{{"cmd":"submit","procs":{},"work":{},"vol":{},"count":{}}}"#,
            warp(procs), warp(work), warp(vol), warp(count),
        );
        // `format!` can print NaN/inf spellings that are not JSON; both
        // a parse error and a field rejection are fine, a panic is not.
        match parse_request(&line) {
            Ok(req) => {
                let iosched_serve::protocol::Request::Submit { submission, .. } = req else {
                    return Err(TestCaseError::fail("submit parsed as something else"));
                };
                let app = submission.into_app(0, Time::secs(1.0));
                let _ = app.validate();
            }
            Err(e) => prop_assert!(!e.is_empty(), "empty error for {line}"),
        }
    }
}

/// A fixed corpus of nasty lines fed through a *live session*: every
/// one must be answered (error or acknowledgement) with the session
/// still accepting good submissions afterwards — the in-process
/// statement of "malformed input never kills the daemon".
#[test]
fn nasty_lines_never_kill_a_live_session() {
    let platform = Platform::intrepid();
    let policy = PolicyFactory::parse("maxsyseff").unwrap();
    let config = SimConfig::default();
    let spec = ServeSpec {
        platform: platform.clone(),
        policy,
        accel: 0.0,
        config: config.clone(),
    };
    let dir = std::env::temp_dir().join(format!("iosched-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fuzz.jsonl");
    let _ = std::fs::remove_file(&path);

    let mut policy = policy.build_online(&platform).unwrap();
    let sim = Simulation::open(&platform, policy.as_mut(), &config).unwrap();
    let journal = Journal::create(&path, &spec).unwrap();
    let mut session = Session::new(sim, journal, &[]).unwrap();

    let nasty = [
        "",
        "\u{0}\u{1}\u{2}",
        "{",
        "}{",
        "null",
        "true",
        "[[[[[[[[",
        r#"{"cmd":"submit"}"#,
        r#"{"cmd":"submit","procs":1e308,"work":1,"vol":1}"#,
        r#"{"cmd":"submit","procs":100,"work":-0.0,"vol":1e999}"#,
        r#"{"cmd":"submit","procs":100,"work":1,"vol":1,"release":0}"#,
        r#"{"cmd":"submit","procs":99999999,"work":1,"vol":1}"#,
        r#"{"cmd":"submit","procs":100,"work":1,"vol":1,"instances":[[1,1]]}"#,
        r#"{"cmd":"shutdown","force":true}"#,
        r#"{"cmd":"systemctl","unit":"iosched"}"#,
        r#"{"cmd":"submit","procs":100,"work":1,"vol":1,"count":99999999999999999999}"#,
    ];
    for line in nasty {
        if let Ok(iosched_serve::protocol::Request::Submit {
            submission,
            release,
        }) = parse_request(line)
        {
            // Semantically absurd but well-formed: the session may
            // accept or reject, never die.
            let _ = session.submit(submission, release, Time::ZERO);
        }
    }
    // The session still works.
    let good =
        AppSubmission::parse_json(r#"{"procs":128,"work":60.0,"vol":512.0,"count":3}"#).unwrap();
    session
        .submit(good, Some(Time::secs(30.0)), Time::ZERO)
        .unwrap()
        .unwrap();
    let (outcome, accepted) = session.finish().unwrap();
    assert!(accepted >= 1);
    assert_eq!(outcome.report.per_app.len(), accepted);
}
