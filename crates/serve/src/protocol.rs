//! The serve wire protocol: line-delimited JSON, one request or
//! response per line.
//!
//! ## Requests
//!
//! ```text
//! {"cmd":"submit","procs":100,"work":8.0,"vol":20.0,"count":3}
//! {"cmd":"submit","procs":64,"instances":[[10.0,5.0]],"release":3600}
//! {"cmd":"status"}
//! {"cmd":"telemetry"}            // one-shot: latest interval
//! {"cmd":"telemetry","follow":true}   // subscribe to the live feed
//! {"cmd":"metrics"}              // observability snapshot (see `metrics`)
//! {"cmd":"checkpoint"}           // fsync the journal
//! {"cmd":"drain"}                // stop accepting, checkpoint, exit
//! {"cmd":"shutdown"}             // close admission, run to completion
//! ```
//!
//! A `submit` carries an [`AppSubmission`] payload inline (every field
//! except `cmd` and the optional `release` is the submission). The
//! optional `release` pins the virtual release instant explicitly —
//! the deterministic mode CI and the resume tests use; without it the
//! daemon stamps its virtual clock. Malformed lines are answered with
//! `{"err":…}` and never terminate the daemon — the fuzz suite pins
//! that.
//!
//! ## Responses
//!
//! Every response is a single JSON object line: `{"ok":…}` on success
//! (shape per command), `{"err":"…"}` on failure, `{"telemetry":{…}}`
//! for subscription feed lines, and a closing `{"final":{…}}` after
//! `shutdown` — the byte-identity surface the resume tests and the CI
//! smoke diff against `iosched serve --replay`. Floats ride the
//! lossless encoding of [`iosched_model::lossless`].

use iosched_model::lossless::float_to_value;
use iosched_model::Time;
use iosched_obs::MetricsSnapshot;
use iosched_sim::{SimOutcome, TelemetrySample};
use iosched_workload::AppSubmission;
use serde::{Serialize, Value};

/// One parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit an application for admission.
    Submit {
        /// What the application does.
        submission: AppSubmission,
        /// Explicit release instant (virtual seconds); `None` lets the
        /// daemon stamp its clock.
        release: Option<Time>,
    },
    /// Report daemon and engine state.
    Status,
    /// Latest telemetry interval; `follow` subscribes this client to
    /// the live feed.
    Telemetry {
        /// Subscribe instead of one-shot.
        follow: bool,
    },
    /// Snapshot the daemon's metrics registry (request latency
    /// histograms, journal timings, queue-depth gauges).
    Metrics,
    /// Force the journal to durable storage.
    Checkpoint,
    /// Stop accepting submissions, checkpoint, and exit (the session
    /// resumes later from the journal).
    Drain,
    /// Close admission, run the engine to completion, report the final
    /// outcome, and exit.
    Shutdown,
}

/// Parse one request line. Errors are actionable strings ready to ship
/// back as an `{"err":…}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = serde_json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = value
        .as_map()
        .ok_or("request must be a JSON object with a \"cmd\" field")?;
    let cmd = match serde::map_get(map, "cmd") {
        Value::Null => Err("request is missing \"cmd\"".to_string()),
        v => v
            .as_str()
            .map(str::to_string)
            .ok_or("\"cmd\" must be a string".to_string()),
    }?;
    let flag = |key: &str| -> Result<bool, String> {
        match serde::map_get(map, key) {
            Value::Null => Ok(false),
            v => v
                .as_bool()
                .ok_or_else(|| format!("\"{key}\" must be a boolean")),
        }
    };
    let bare = |req: Request| -> Result<Request, String> {
        if let Some((stray, _)) = map.iter().find(|(k, _)| k != "cmd") {
            return Err(format!(
                "\"{cmd}\" takes no arguments (got field '{stray}')"
            ));
        }
        Ok(req)
    };
    match cmd.as_str() {
        "submit" => {
            let release = match serde::map_get(map, "release") {
                Value::Null => None,
                v => {
                    let secs = v
                        .as_f64()
                        .filter(|s| s.is_finite() && *s > 0.0)
                        .ok_or("\"release\" must be a positive finite number of virtual seconds")?;
                    Some(Time::secs(secs))
                }
            };
            // Everything except the envelope fields is the submission
            // payload (AppSubmission rejects unknown fields, so the
            // envelope must be stripped, not forwarded).
            let payload: Vec<(String, Value)> = map
                .iter()
                .filter(|(k, _)| k != "cmd" && k != "release")
                .cloned()
                .collect();
            let submission = AppSubmission::from_value(&Value::Map(payload))?;
            Ok(Request::Submit {
                submission,
                release,
            })
        }
        "telemetry" => {
            if let Some((stray, _)) = map.iter().find(|(k, _)| k != "cmd" && k != "follow") {
                return Err(format!("\"telemetry\" takes only 'follow' (got '{stray}')"));
            }
            Ok(Request::Telemetry {
                follow: flag("follow")?,
            })
        }
        "status" => bare(Request::Status),
        "metrics" => bare(Request::Metrics),
        "checkpoint" => bare(Request::Checkpoint),
        "drain" => bare(Request::Drain),
        "shutdown" => bare(Request::Shutdown),
        other => Err(format!(
            "unknown command '{other}' (expected submit, status, telemetry, \
             metrics, checkpoint, drain or shutdown)"
        )),
    }
}

fn object(fields: Vec<(&str, Value)>) -> String {
    let map: Vec<(String, Value)> = fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    serde_json::to_string(&Value::Map(map)).expect("protocol values always serialize")
}

/// `{"err":"…"}`
#[must_use]
pub fn error_line(message: &str) -> String {
    object(vec![("err", Value::Str(message.to_string()))])
}

/// `{"ok":"submit","id":…,"release_secs":…}` — acknowledges an accepted
/// (and journaled) submission.
#[must_use]
pub fn submit_line(id: usize, release: Time) -> String {
    object(vec![
        ("ok", Value::Str("submit".into())),
        ("id", id.to_value()),
        ("release_secs", float_to_value(release.get())),
    ])
}

/// A snapshot of daemon + engine state for the `status` reply.
#[derive(Debug, Clone, Copy)]
pub struct StatusReport {
    /// Daemon virtual clock (seconds).
    pub clock_secs: f64,
    /// Engine clock (seconds) — trails the virtual clock by at most one
    /// inter-event gap.
    pub engine_secs: f64,
    /// Scheduling events processed so far.
    pub events: usize,
    /// Applications admitted into the engine.
    pub admitted: usize,
    /// Accepted applications still waiting for their release instant.
    pub queued: usize,
    /// Applications currently resident (admitted, not yet retired).
    pub live: usize,
    /// Applications retired (all instances complete).
    pub finished: usize,
    /// Arrivals in the journal (the checkpoint's length).
    pub journaled: usize,
    /// True once a drain was requested.
    pub draining: bool,
}

/// `{"ok":"status",…}`
#[must_use]
pub fn status_line(s: &StatusReport) -> String {
    object(vec![
        ("ok", Value::Str("status".into())),
        ("clock_secs", float_to_value(s.clock_secs)),
        ("engine_secs", float_to_value(s.engine_secs)),
        ("events", s.events.to_value()),
        ("admitted", s.admitted.to_value()),
        ("queued", s.queued.to_value()),
        ("live", s.live.to_value()),
        ("finished", s.finished.to_value()),
        ("journaled", s.journaled.to_value()),
        ("draining", s.draining.to_value()),
    ])
}

/// `{"telemetry":{…}}` — one engine allocation interval.
#[must_use]
pub fn telemetry_line(sample: &TelemetrySample) -> String {
    object(vec![(
        "telemetry",
        Value::Map(vec![
            ("start_secs".into(), float_to_value(sample.start.get())),
            ("end_secs".into(), float_to_value(sample.end.get())),
            ("offered_gibs".into(), float_to_value(sample.offered.get())),
            ("granted_gibs".into(), float_to_value(sample.granted.get())),
            (
                "delivered_gibs".into(),
                float_to_value(sample.delivered.get()),
            ),
            (
                "capacity_gibs".into(),
                float_to_value(sample.capacity.get()),
            ),
            ("backlog_gib".into(), float_to_value(sample.backlog.get())),
            ("pending".into(), sample.pending.to_value()),
        ]),
    )])
}

/// `{"ok":"metrics","metrics":{"counters":…,"gauges":…,"histograms":…}}`
/// — the full registry snapshot; histogram values carry the raw
/// log₂-bucket counts so clients derive whichever quantiles they want.
#[must_use]
pub fn metrics_line(snapshot: &MetricsSnapshot) -> String {
    object(vec![
        ("ok", Value::Str("metrics".into())),
        ("metrics", snapshot.to_value()),
    ])
}

/// `{"ok":"checkpoint","arrivals":…,"path":"…"}`
#[must_use]
pub fn checkpoint_line(arrivals: usize, path: &str) -> String {
    object(vec![
        ("ok", Value::Str("checkpoint".into())),
        ("arrivals", arrivals.to_value()),
        ("path", Value::Str(path.to_string())),
    ])
}

/// `{"ok":"drain","arrivals":…,"clock_secs":…}` — the daemon exits
/// after sending this; the journal is the resumable checkpoint.
#[must_use]
pub fn drain_line(arrivals: usize, clock_secs: f64) -> String {
    object(vec![
        ("ok", Value::Str("drain".into())),
        ("arrivals", arrivals.to_value()),
        ("clock_secs", float_to_value(clock_secs)),
    ])
}

/// `{"final":{…}}` — the run's outcome, the byte-identity surface.
/// A replay of the same journal (`iosched serve --replay`) must produce
/// this exact line.
#[must_use]
pub fn final_line(outcome: &SimOutcome, admitted: usize) -> String {
    let report = &outcome.report;
    object(vec![(
        "final",
        Value::Map(vec![
            ("admitted".into(), admitted.to_value()),
            ("finished".into(), report.per_app.len().to_value()),
            ("events".into(), outcome.events.to_value()),
            ("end_secs".into(), float_to_value(outcome.end_time.get())),
            (
                "sys_efficiency".into(),
                float_to_value(report.sys_efficiency),
            ),
            ("upper_limit".into(), float_to_value(report.upper_limit)),
            ("dilation".into(), float_to_value(report.dilation)),
        ]),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::InstancePattern;
    use serde::Deserialize;

    #[test]
    fn submit_requests_parse_with_and_without_release() {
        let req = parse_request(
            r#"{"cmd":"submit","procs":100,"work":8.0,"vol":20.0,"count":3,"release":3600}"#,
        )
        .unwrap();
        let Request::Submit {
            submission,
            release,
        } = req
        else {
            panic!("expected submit");
        };
        assert_eq!(submission.procs, 100);
        assert!(matches!(
            submission.pattern,
            InstancePattern::Periodic { count: 3, .. }
        ));
        assert!(release.unwrap().approx_eq(Time::secs(3600.0)));

        let req = parse_request(r#"{"cmd":"submit","procs":64,"instances":[[1.0,2.0]]}"#).unwrap();
        assert!(matches!(req, Request::Submit { release: None, .. }));
    }

    #[test]
    fn bare_commands_parse_and_reject_stray_fields() {
        assert_eq!(
            parse_request(r#"{"cmd":"status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(
            parse_request(r#"{"cmd":"telemetry","follow":true}"#).unwrap(),
            Request::Telemetry { follow: true }
        );
        assert_eq!(parse_request(r#"{"cmd":"drain"}"#).unwrap(), Request::Drain);
        let err = parse_request(r#"{"cmd":"drain","now":true}"#).unwrap_err();
        assert!(err.contains("'now'"), "{err}");
        assert_eq!(
            parse_request(r#"{"cmd":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        let err = parse_request(r#"{"cmd":"metrics","format":"text"}"#).unwrap_err();
        assert!(err.contains("'format'"), "{err}");
    }

    #[test]
    fn metrics_line_is_a_parseable_registry_snapshot() {
        let registry = iosched_obs::Registry::new();
        registry.counter("serve.requests").add(4);
        registry.histogram("serve.request.status.ns").record(1500);
        let line = metrics_line(&registry.snapshot());
        assert!(line.starts_with(r#"{"ok":"metrics","metrics":{"#), "{line}");
        let v = serde_json::parse(&line).unwrap();
        let snap =
            MetricsSnapshot::from_value(serde::map_get(v.as_map().unwrap(), "metrics")).unwrap();
        assert_eq!(snap.counter("serve.requests"), Some(4));
        assert_eq!(snap.histogram("serve.request.status.ns").unwrap().count, 1);
    }

    #[test]
    fn malformed_requests_get_actionable_errors() {
        for (bad, needle) in [
            ("", "invalid JSON"),
            ("nonsense", "invalid JSON"),
            ("[1,2]", "JSON object"),
            ("{}", "missing \"cmd\""),
            (r#"{"cmd":7}"#, "must be a string"),
            (r#"{"cmd":"reboot"}"#, "unknown command 'reboot'"),
            (r#"{"cmd":"submit"}"#, "missing 'procs'"),
            (
                r#"{"cmd":"submit","procs":4,"work":1,"vol":1,"release":-3}"#,
                "\"release\"",
            ),
            (
                r#"{"cmd":"submit","procs":4,"work":1,"vol":1,"release":"now"}"#,
                "\"release\"",
            ),
            (r#"{"cmd":"telemetry","follow":"yes"}"#, "boolean"),
        ] {
            let err = parse_request(bad).expect_err(bad);
            assert!(
                err.contains(needle),
                "{bad}: error '{err}' lacks '{needle}'"
            );
        }
    }

    #[test]
    fn response_lines_are_single_json_objects() {
        assert_eq!(error_line("boom"), r#"{"err":"boom"}"#);
        let line = submit_line(3, Time::secs(0.1 + 0.2));
        assert!(
            line.starts_with(r#"{"ok":"submit","id":3,"release_secs":"#),
            "{line}"
        );
        // The release survives losslessly through a parse round-trip.
        let v = serde_json::parse(&line).unwrap();
        let m = v.as_map().unwrap();
        let r =
            iosched_model::lossless::float_from_value(serde::map_get(m, "release_secs")).unwrap();
        assert_eq!(r.to_bits(), (0.1f64 + 0.2).to_bits());
    }
}
