//! The write-ahead arrival journal — the daemon's checkpoint.
//!
//! The engine's trajectory is a *pure function* of the accepted arrival
//! sequence once the platform, policy and config are fixed (see
//! `Simulation::offer`): replaying the same arrivals into a fresh engine
//! reproduces the run bit-for-bit. So the daemon's checkpoint is not a
//! serialization of in-flight engine state — it is the ordered journal
//! of accepted arrivals, written ahead of every acknowledgement, one
//! flushed line per arrival. That makes the checkpoint *always current*:
//! a SIGKILL at any instant loses at most the arrival whose acceptance
//! was never acknowledged, and restart needs no signal handler, no
//! atexit hook and no consistency repair — it re-offers the journal and
//! continues.
//!
//! ## File format (JSONL)
//!
//! ```text
//! {"serve":{"version":1,"platform":{…},"policy":"maxsyseff","accel":1000,"config":{…}}}
//! {"arrival":{"id":0,"release":3600,…}}
//! {"arrival":{"id":1,"release":3601.5,…}}
//! {"drain":{"virtual_secs":3700,"arrivals":2}}
//! ```
//!
//! The manifest line binds the journal to the exact engine recipe; a
//! resume refuses a journal recorded under a different one. `drain`
//! lines are informational markers (they advance the resumed virtual
//! clock past everything already served); arrivals after a drain line
//! are legal — they belong to a later pass of the same journal. The
//! scanner tolerates a torn final line (a crash mid-`write`) exactly
//! like the shard partials of the campaign layer: a line either ends in
//! `\n` and parses, or it — and everything after it — is dropped.

use iosched_core::registry::PolicyFactory;
use iosched_model::lossless::{float_from_value, float_to_value};
use iosched_model::{AppSpec, Platform};
use iosched_sim::SimConfig;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// The engine recipe a journal is bound to: everything that — together
/// with the arrival sequence — determines the trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// The simulated platform.
    pub platform: Platform,
    /// The (online) scheduling policy.
    pub policy: PolicyFactory,
    /// Virtual seconds per wall second (0 freezes the clock:
    /// admission-only mode, the run completes at shutdown).
    pub accel: f64,
    /// Engine configuration.
    pub config: SimConfig,
}

impl ServeSpec {
    /// Validate the recipe: buildable online policy, sane clock rate,
    /// engine-accepted config.
    pub fn validate(&self) -> Result<(), String> {
        self.platform.validate().map_err(|e| e.to_string())?;
        self.policy.build_online(&self.platform).map(drop)?;
        if !(self.accel.is_finite() && self.accel >= 0.0) {
            return Err(format!(
                "accelerate factor {} must be finite and non-negative \
                 (0 freezes the clock, 1 is real time)",
                self.accel
            ));
        }
        self.config.validate()?;
        if self.config.horizon.is_some() {
            return Err("a serve session cannot run under a horizon; \
                        drain or shut the daemon down instead"
                .into());
        }
        Ok(())
    }
}

impl Serialize for ServeSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("version".into(), 1usize.to_value()),
            ("platform".into(), self.platform.to_value()),
            ("policy".into(), self.policy.to_value()),
            ("accel".into(), float_to_value(self.accel)),
            ("config".into(), self.config.to_value()),
        ])
    }
}

impl Deserialize for ServeSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a serve manifest object"))?;
        let version =
            usize::from_value(serde::map_get(m, "version")).map_err(|e| e.at("version"))?;
        if version != 1 {
            return Err(serde::Error::custom(format!(
                "unsupported journal version {version} (this build reads version 1)"
            )));
        }
        Ok(Self {
            platform: Platform::from_value(serde::map_get(m, "platform"))
                .map_err(|e| e.at("platform"))?,
            policy: PolicyFactory::from_value(serde::map_get(m, "policy"))
                .map_err(|e| e.at("policy"))?,
            accel: float_from_value(serde::map_get(m, "accel")).map_err(|e| e.at("accel"))?,
            config: SimConfig::from_value(serde::map_get(m, "config"))
                .map_err(|e| e.at("config"))?,
        })
    }
}

/// What a journal scan recovered.
#[derive(Debug)]
pub struct JournalContents {
    /// The engine recipe from the manifest line.
    pub spec: ServeSpec,
    /// Every intact journaled arrival, in acceptance order.
    pub arrivals: Vec<AppSpec>,
    /// The largest drain marker's virtual clock, if any pass drained.
    pub drained_at_secs: Option<f64>,
}

/// Append-only journal writer. Every line is a single `write` followed
/// by `flush`, so a partial file is always a valid prefix.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    arrivals: usize,
}

impl Journal {
    /// Create a fresh journal (manifest line written immediately) or
    /// re-open an existing one for appending. `existing_arrivals` is the
    /// count recovered by [`Journal::load`] when resuming (0 for fresh).
    pub fn create(path: &Path, spec: &ServeSpec) -> Result<Self, String> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let manifest = serde::Value::Map(vec![("serve".into(), spec.to_value())]);
        let line = serde_json::to_string(&manifest).map_err(|e| e.to_string())? + "\n";
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            arrivals: 0,
        })
    }

    /// Re-open an existing journal for appending after a
    /// [`Journal::load`].
    pub fn reopen(path: &Path, recovered: &JournalContents) -> Result<Self, String> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            arrivals: recovered.arrivals.len(),
        })
    }

    /// Arrivals written (or recovered) so far.
    #[must_use]
    pub fn arrivals(&self) -> usize {
        self.arrivals
    }

    /// The journal file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one accepted arrival — written and flushed *before* the
    /// daemon acknowledges the submission.
    pub fn append(&mut self, app: &AppSpec) -> Result<(), String> {
        let record = serde::Value::Map(vec![("arrival".into(), app.to_value())]);
        self.write_line(&record)?;
        self.arrivals += 1;
        Ok(())
    }

    /// Append a drain marker recording the virtual clock at drain time,
    /// so a resumed pass starts its clock past everything served.
    pub fn mark_drain(&mut self, virtual_secs: f64) -> Result<(), String> {
        let record = serde::Value::Map(vec![(
            "drain".into(),
            serde::Value::Map(vec![
                ("virtual_secs".into(), float_to_value(virtual_secs)),
                ("arrivals".into(), self.arrivals.to_value()),
            ]),
        )]);
        self.write_line(&record)
    }

    /// Force file-system durability (the `checkpoint` command).
    pub fn sync(&mut self) -> Result<(), String> {
        self.file
            .sync_all()
            .map_err(|e| format!("{}: {e}", self.path.display()))
    }

    fn write_line(&mut self, record: &serde::Value) -> Result<(), String> {
        let line = serde_json::to_string(record).map_err(|e| e.to_string())? + "\n";
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("{}: {e}", self.path.display()))
    }

    /// Scan a journal: manifest, intact arrivals, drain markers. A
    /// final line that is torn (no `\n`) or unparseable is dropped along
    /// with everything after it; a malformed line *followed by intact
    /// lines* is corruption and errors out (flushed whole lines never
    /// tear in the middle of the file).
    pub fn load(path: &Path) -> Result<JournalContents, String> {
        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let mut lines: Vec<&str> = Vec::new();
        let mut rest = text.as_str();
        while let Some(pos) = rest.find('\n') {
            lines.push(&rest[..pos]);
            rest = &rest[pos + 1..];
        }
        // `rest` now holds a torn tail (no newline) — dropped.
        let mut parsed: Vec<serde::Value> = Vec::with_capacity(lines.len());
        for (k, line) in lines.iter().enumerate() {
            match serde_json::parse(line) {
                Ok(v) => parsed.push(v),
                Err(e) if k + 1 == lines.len() => {
                    // Torn tail: newline made it out but the payload is
                    // incomplete. Drop it.
                    let _ = e;
                    break;
                }
                Err(e) => {
                    return Err(format!(
                        "{}: line {} is corrupt ({e}) but intact lines follow; \
                         refusing to resume from a damaged journal",
                        path.display(),
                        k + 1
                    ))
                }
            }
        }
        let Some(first) = parsed.first() else {
            return Err(format!(
                "{}: journal holds no intact manifest line",
                path.display()
            ));
        };
        let spec_value = first
            .as_map()
            .map(|m| serde::map_get(m, "serve"))
            .filter(|v| !matches!(v, serde::Value::Null))
            .ok_or_else(|| format!("{}: first line is not a serve manifest", path.display()))?;
        let spec = ServeSpec::from_value(spec_value)
            .map_err(|e| format!("{}: bad manifest: {e}", path.display()))?;
        let mut arrivals = Vec::new();
        let mut drained_at_secs: Option<f64> = None;
        for (k, value) in parsed.iter().enumerate().skip(1) {
            let m = value.as_map().unwrap_or(&[]);
            if let Some(app) = match serde::map_get(m, "arrival") {
                serde::Value::Null => None,
                v => Some(v),
            } {
                let app = AppSpec::from_value(app)
                    .map_err(|e| format!("{}: line {}: bad arrival: {e}", path.display(), k + 1))?;
                arrivals.push(app);
            } else if let Some(drain) = match serde::map_get(m, "drain") {
                serde::Value::Null => None,
                v => Some(v),
            } {
                let dm = drain.as_map().ok_or_else(|| {
                    format!("{}: line {}: bad drain marker", path.display(), k + 1)
                })?;
                let at = float_from_value(serde::map_get(dm, "virtual_secs"))
                    .map_err(|e| format!("{}: line {}: {e}", path.display(), k + 1))?;
                drained_at_secs = Some(drained_at_secs.map_or(at, |prev| prev.max(at)));
            } else {
                return Err(format!(
                    "{}: line {} is neither an arrival nor a drain marker",
                    path.display(),
                    k + 1
                ));
            }
        }
        Ok(JournalContents {
            spec,
            arrivals,
            drained_at_secs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_model::{Bytes, Time};

    fn spec() -> ServeSpec {
        ServeSpec {
            platform: Platform::intrepid(),
            policy: PolicyFactory::parse("maxsyseff").unwrap(),
            accel: 1000.0,
            config: SimConfig::default(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iosched-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn arrival(id: usize, release: f64) -> AppSpec {
        AppSpec::periodic(
            id,
            Time::secs(release),
            2_048,
            Time::secs(100.0),
            Bytes::gib(512.0),
            3,
        )
    }

    #[test]
    fn journal_round_trips_spec_and_arrivals() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::create(&path, &spec()).unwrap();
        let apps = [arrival(0, 10.5), arrival(1, 0.1 + 0.2)];
        for app in &apps {
            journal.append(app).unwrap();
        }
        journal.mark_drain(123.456).unwrap();
        drop(journal);

        let contents = Journal::load(&path).unwrap();
        assert_eq!(contents.spec, spec());
        assert_eq!(contents.arrivals, apps);
        // Release times survive bit-exactly (0.1 + 0.2 is not 0.3).
        assert_eq!(
            contents.arrivals[1].release().get().to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        assert_eq!(contents.drained_at_secs, Some(123.456));

        // Reopen appends after the recovered lines.
        let mut journal = Journal::reopen(&path, &contents).unwrap();
        assert_eq!(journal.arrivals(), 2);
        journal.append(&arrival(2, 200.0)).unwrap();
        drop(journal);
        assert_eq!(Journal::load(&path).unwrap().arrivals.len(), 3);
    }

    #[test]
    fn torn_tail_is_dropped_mid_file_corruption_is_fatal() {
        let path = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::create(&path, &spec()).unwrap();
        journal.append(&arrival(0, 1.0)).unwrap();
        drop(journal);

        // Torn final line (no newline): dropped.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"arrival\":{\"id\":1,\"rel").unwrap();
        drop(f);
        let contents = Journal::load(&path).unwrap();
        assert_eq!(contents.arrivals.len(), 1);

        // Same garbage followed by an intact line: corruption.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"\n{\"drain\":{\"virtual_secs\":9,\"arrivals\":1}}\n")
            .unwrap();
        drop(f);
        let err = Journal::load(&path).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
    }

    #[test]
    fn create_refuses_to_overwrite_and_load_requires_a_manifest() {
        let path = tmp("exists.jsonl");
        let _ = std::fs::remove_file(&path);
        Journal::create(&path, &spec()).unwrap();
        assert!(Journal::create(&path, &spec()).is_err());

        let bare = tmp("bare.jsonl");
        std::fs::write(&bare, "{\"arrival\":{}}\n").unwrap();
        let err = Journal::load(&bare).unwrap_err();
        assert!(err.contains("manifest"), "{err}");
    }

    #[test]
    fn serve_spec_validation_names_the_problem() {
        let mut bad = spec();
        bad.policy = PolicyFactory::parse("periodic:cong").unwrap();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("offline"), "{err}");

        let mut bad = spec();
        bad.accel = -2.0;
        assert!(bad.validate().unwrap_err().contains("accelerate"));

        let mut bad = spec();
        bad.config.horizon = Some(Time::secs(100.0));
        assert!(bad.validate().unwrap_err().contains("horizon"));

        spec().validate().unwrap();
    }
}
