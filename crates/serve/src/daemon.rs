//! The daemon: sockets, threads and the drive loop around a
//! [`Session`].
//!
//! One thread per input (stdin, plus one per accepted Unix-socket
//! connection) feeds parsed-enough lines into an mpsc channel; the
//! single main thread owns the engine and processes messages strictly
//! in arrival order, interleaved with clock-bounded engine drives. No
//! engine state is ever shared across threads — the daemon is a
//! sequential state machine with concurrent *readers*.
//!
//! ```text
//!   stdin ───reader──┐
//!   socket conn 1 ───┼──mpsc──▶ main loop: advance(clock) → handle line
//!   socket conn 2 ───┘                 │
//!                                      └──▶ per-client writers (+ telemetry
//!                                           subscribers, final broadcast)
//! ```
//!
//! Between messages the loop drives the engine up to the virtual clock
//! and sleeps until the earlier of the next engine event (converted to
//! wall time through the acceleration factor) and a 200 ms heartbeat.
//! Because bounded driving is bit-identical to free running (pinned in
//! the engine suite), the pause pattern — and therefore wall-clock
//! jitter — can never influence simulated results; only the accepted
//! arrival sequence can, and that is exactly what the journal records.

use crate::clock::VirtualClock;
use crate::journal::{Journal, JournalContents, ServeSpec};
use crate::protocol::{
    self, checkpoint_line, drain_line, error_line, final_line, metrics_line, status_line,
    submit_line, telemetry_line, Request,
};
use crate::session::Session;
use iosched_model::Time;
use iosched_obs::Stopwatch;
use iosched_sim::Simulation;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;

/// Daemon I/O configuration (the engine recipe lives in [`ServeSpec`]).
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Arrival journal path — created fresh, or resumed from when the
    /// file already exists.
    pub journal: PathBuf,
    /// Optional Unix-domain socket to serve alongside stdin.
    pub socket: Option<PathBuf>,
}

type ClientId = usize;
const STDIN_CLIENT: ClientId = 0;

enum Inbound {
    Line(ClientId, String),
    Connected(ClientId, UnixStream),
    Eof(ClientId),
}

enum ClientWriter {
    Stdout,
    Socket(UnixStream),
}

impl ClientWriter {
    /// Write one protocol line, explicitly flushed (subscribers tail
    /// the feed live; a buffered line is an invisible line). Returns
    /// false when the client is gone.
    fn send(&mut self, line: &str) -> bool {
        match self {
            Self::Stdout => {
                let mut out = std::io::stdout().lock();
                writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
            }
            Self::Socket(stream) => writeln!(stream, "{line}")
                .and_then(|()| stream.flush())
                .is_ok(),
        }
    }
}

fn spawn_reader(
    id: ClientId,
    input: impl std::io::Read + Send + 'static,
    tx: &mpsc::Sender<Inbound>,
) {
    let tx = tx.clone();
    std::thread::spawn(move || {
        for line in BufReader::new(input).lines() {
            let Ok(line) = line else { break };
            if tx.send(Inbound::Line(id, line)).is_err() {
                return;
            }
        }
        let _ = tx.send(Inbound::Eof(id));
    });
}

/// Run the daemon until a `drain`/`shutdown` command (or stdin EOF in
/// pure-stdin mode, which drains). Resumes from `opts.journal` when the
/// file exists — the resumed trajectory is bit-identical to one that
/// was never interrupted.
pub fn run_daemon(spec: &ServeSpec, opts: &DaemonOptions) -> Result<(), String> {
    spec.validate()?;
    // Fresh session or resume: the journal decides.
    let recovered: Option<JournalContents> = if opts.journal.exists() {
        let contents = Journal::load(&opts.journal)?;
        if contents.spec != *spec {
            return Err(format!(
                "journal {} was recorded under a different recipe \
                 (platform/policy/accel/config); re-run with matching flags \
                 or pick a fresh journal path",
                opts.journal.display()
            ));
        }
        Some(contents)
    } else {
        None
    };
    let journal = match &recovered {
        Some(contents) => Journal::reopen(&opts.journal, contents)?,
        None => Journal::create(&opts.journal, spec)?,
    };
    // The resumed clock starts past everything the previous pass saw:
    // the drain marker's instant and every journaled release.
    let base = recovered.as_ref().map_or(Time::ZERO, |c| {
        let last_release = c
            .arrivals
            .iter()
            .map(|a| a.release())
            .fold(Time::ZERO, Time::max);
        Time::secs(c.drained_at_secs.unwrap_or(0.0)).max(last_release)
    });
    let clock = VirtualClock::new(base, spec.accel);

    let mut policy = spec.policy.build_online(&spec.platform)?;
    let sim = Simulation::open(&spec.platform, policy.as_mut(), &spec.config)
        .map_err(|e| e.to_string())?;
    let arrivals = recovered.map(|c| c.arrivals).unwrap_or_default();
    let session = Session::new(sim, journal, &arrivals)?;

    let (tx, rx) = mpsc::channel::<Inbound>();
    spawn_reader(STDIN_CLIENT, std::io::stdin(), &tx);
    let socket_mode = opts.socket.is_some();
    if let Some(path) = &opts.socket {
        // A stale socket file (previous daemon SIGKILLed) blocks bind.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let tx = tx.clone();
        std::thread::spawn(move || {
            for (k, conn) in listener.incoming().enumerate() {
                let Ok(conn) = conn else { break };
                if tx.send(Inbound::Connected(k + 1, conn)).is_err() {
                    return;
                }
            }
        });
    }
    let result = drive(session, &clock, &rx, &tx, socket_mode);
    if let Some(path) = &opts.socket {
        let _ = std::fs::remove_file(path);
    }
    result
}

/// The main loop. Owns the session; returns once the session ended (by
/// drain or shutdown) or on a fatal engine/journal error.
fn drive(
    mut session: Session<'_>,
    clock: &VirtualClock,
    rx: &mpsc::Receiver<Inbound>,
    tx: &mpsc::Sender<Inbound>,
    socket_mode: bool,
) -> Result<(), String> {
    let mut writers: HashMap<ClientId, ClientWriter> = HashMap::new();
    writers.insert(STDIN_CLIENT, ClientWriter::Stdout);
    let mut subscribers: Vec<ClientId> = Vec::new();
    let heartbeat = Duration::from_millis(200);

    loop {
        // Drive the engine up to the virtual clock, then fan freshly
        // closed telemetry intervals out to subscribers.
        let status = session.advance(clock.now())?;
        if !subscribers.is_empty() {
            for sample in session.fresh_samples() {
                let line = telemetry_line(&sample);
                subscribers.retain(|id| match writers.get_mut(id) {
                    Some(w) => w.send(&line),
                    None => false,
                });
            }
        }
        // Sleep until the next engine event is due (in wall terms) or
        // the heartbeat, whichever is sooner.
        let wait = match status {
            iosched_sim::RunStatus::Blocked(t) => clock
                .wall_until(t)
                .map_or(heartbeat, |w| heartbeat.min(Duration::from_secs_f64(w))),
            _ => heartbeat,
        };
        let inbound = match rx.recv_timeout(wait) {
            Ok(inbound) => inbound,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            // Unreachable while `tx` is alive in this frame, but a
            // drain is the only sane answer if it ever fires.
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let n = session.drain(clock.now())?;
                broadcast(&mut writers, &drain_line(n, clock.now().get()));
                return Ok(());
            }
        };
        match inbound {
            Inbound::Connected(id, stream) => {
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                writers.insert(id, ClientWriter::Socket(stream));
                spawn_reader(id, reader, tx);
            }
            Inbound::Eof(id) => {
                if id == STDIN_CLIENT && !socket_mode {
                    // Pure-stdin pipeline: end of input is a drain.
                    let n = session.drain(clock.now())?;
                    broadcast(&mut writers, &drain_line(n, clock.now().get()));
                    return Ok(());
                }
                writers.remove(&id);
                subscribers.retain(|s| *s != id);
            }
            Inbound::Line(id, line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let request = match protocol::parse_request(&line) {
                    Ok(request) => request,
                    Err(e) => {
                        session.metrics().parse_errors.inc();
                        respond(&mut writers, id, &error_line(&e));
                        continue;
                    }
                };
                // Per-request latency: one watch per parsed line, recorded
                // into the command's histogram after its response went out
                // (the handle is an Arc clone so the borrow of `session`
                // ends before the handlers take it mutably).
                session.metrics().requests.inc();
                let hist = session.metrics().request_hist(&request).clone();
                let watch = Stopwatch::start();
                match request {
                    Request::Submit {
                        submission,
                        release,
                    } => {
                        match session.submit(submission, release, clock.now()) {
                            Err(rejected) => respond(&mut writers, id, &error_line(&rejected)),
                            Ok(Err(fatal)) => {
                                broadcast(&mut writers, &error_line(&fatal));
                                return Err(fatal);
                            }
                            Ok(Ok((app_id, stamped))) => {
                                respond(&mut writers, id, &submit_line(app_id, stamped));
                            }
                        }
                        watch.record(&hist);
                    }
                    Request::Status => {
                        respond(&mut writers, id, &status_line(&session.status(clock.now())));
                        watch.record(&hist);
                    }
                    Request::Metrics => {
                        let snapshot = session.metrics_snapshot(clock.now());
                        respond(&mut writers, id, &metrics_line(&snapshot));
                        watch.record(&hist);
                    }
                    Request::Telemetry { follow } => {
                        if follow && !subscribers.contains(&id) {
                            subscribers.push(id);
                        }
                        let line = session.last_sample().map_or_else(
                            || error_line("no telemetry interval has closed yet"),
                            |s| telemetry_line(&s),
                        );
                        respond(&mut writers, id, &line);
                        watch.record(&hist);
                    }
                    Request::Checkpoint => {
                        let line = match session.checkpoint() {
                            Ok(n) => checkpoint_line(n, &session.journal_path()),
                            Err(e) => error_line(&e),
                        };
                        respond(&mut writers, id, &line);
                        watch.record(&hist);
                    }
                    Request::Drain => {
                        let n = session.drain(clock.now())?;
                        broadcast(&mut writers, &drain_line(n, clock.now().get()));
                        watch.record(&hist);
                        return Ok(());
                    }
                    Request::Shutdown => {
                        let accepted = session.accepted();
                        if accepted == 0 {
                            respond(
                                &mut writers,
                                id,
                                &error_line(
                                    "nothing was submitted; objectives over zero \
                                     applications are undefined (drain instead)",
                                ),
                            );
                            watch.record(&hist);
                            continue;
                        }
                        let (outcome, accepted) = session.finish()?;
                        broadcast(&mut writers, &final_line(&outcome, accepted));
                        return Ok(());
                    }
                }
            }
        }
    }
}

fn respond(writers: &mut HashMap<ClientId, ClientWriter>, id: ClientId, line: &str) {
    if let Some(w) = writers.get_mut(&id) {
        if !w.send(line) {
            writers.remove(&id);
        }
    }
}

fn broadcast(writers: &mut HashMap<ClientId, ClientWriter>, line: &str) {
    writers.retain(|_, w| w.send(line));
}

/// Batch-replay a journal: run `simulate_stream` over its arrivals and
/// return the `{"final":…}` line — byte-identical to what the recorded
/// session printed (or would have printed) at shutdown. The CI smoke
/// and the resume tests diff against this.
pub fn replay(journal: &Path) -> Result<String, String> {
    let contents = Journal::load(journal)?;
    contents.spec.validate()?;
    if contents.arrivals.is_empty() {
        return Err(format!(
            "journal {} holds no arrivals; nothing to replay",
            journal.display()
        ));
    }
    let accepted = contents.arrivals.len();
    let mut policy = contents.spec.policy.build_online(&contents.spec.platform)?;
    let outcome = iosched_sim::simulate_stream(
        &contents.spec.platform,
        contents.arrivals.into_iter(),
        policy.as_mut(),
        &contents.spec.config,
    )
    .map_err(|e| e.to_string())?;
    Ok(final_line(&outcome, accepted))
}

/// Client mode: pipe stdin lines to a daemon's socket and its response
/// lines to stdout, until stdin closes and the daemon stops talking.
/// (`printf '{"cmd":"status"}\n' | iosched serve --connect /path.sock`.)
pub fn connect(socket: &Path) -> Result<(), String> {
    let stream = UnixStream::connect(socket).map_err(|e| format!("{}: {e}", socket.display()))?;
    let reader = stream
        .try_clone()
        .map_err(|e| format!("{}: {e}", socket.display()))?;
    let pump = std::thread::spawn(move || {
        let mut out = std::io::stdout();
        for line in BufReader::new(reader).lines() {
            let Ok(line) = line else { break };
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                break;
            }
        }
    });
    let mut stream_w = stream;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if writeln!(stream_w, "{line}")
            .and_then(|()| stream_w.flush())
            .is_err()
        {
            break;
        }
    }
    let _ = stream_w.shutdown(std::net::Shutdown::Write);
    let _ = pump.join();
    Ok(())
}
