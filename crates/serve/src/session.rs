//! The serve session: an I/O-free state machine tying the open-admission
//! engine to the arrival journal.
//!
//! The daemon loop (`daemon.rs`) owns the sockets and threads; this
//! module owns everything that *decides* — release stamping, admission,
//! journaling order, telemetry fan-out bookkeeping, drain and shutdown
//! semantics — so the whole protocol surface is unit-testable in
//! process, without a daemon, a socket or a wall clock.
//!
//! ## The admission contract
//!
//! A submission is acknowledged only after (1) the engine accepted the
//! offer and (2) the arrival line reached the journal. Order matters:
//! an arrival the engine rejected must not pollute the journal (a
//! replay would refuse it), and an arrival the journal lost must not be
//! acknowledged (the client would believe in work a crash forgot). A
//! journal-write failure after a successful offer is the one
//! irrecoverable split — the session reports it as fatal rather than
//! limp along with a checkpoint that silently diverges from the engine.
//!
//! ## Release stamping
//!
//! An explicit `release` rides through untouched (the engine validates
//! it). Without one, the session stamps
//! `max(virtual_now, last_release, just_past_engine_clock)` — the
//! latest of "now" in wall terms, "after every arrival already
//! accepted" (the engine's sorted-release contract), and "strictly
//! after the engine clock" (the [`Simulation::offer`] equivalence
//! invariant that makes the trajectory replayable).

use crate::journal::Journal;
use crate::metrics::ServeMetrics;
use crate::protocol::StatusReport;
use iosched_model::{AppSpec, Time, EPS};
use iosched_obs::{MetricsSnapshot, Stopwatch};
use iosched_sim::{RunStatus, SimOutcome, Simulation, TelemetrySample, TraceEvent};
use iosched_workload::AppSubmission;

/// Live session state: the open engine plus the write-ahead journal.
pub struct Session<'a> {
    sim: Simulation<'a>,
    journal: Journal,
    last_release: Time,
    tel_seen: usize,
    draining: bool,
    metrics: ServeMetrics,
}

/// The first virtual instant strictly past `now` under the engine's
/// EPS-tolerant comparisons (`approx_gt`), i.e. the earliest release an
/// offer may carry once the clock reached `now`.
fn just_past(now: Time) -> Time {
    Time::secs(now.get() + 2.0 * EPS * now.get().abs().max(1.0))
}

impl<'a> Session<'a> {
    /// Open a session over a fresh or recovered journal, replaying
    /// `recovered` arrivals (in journal order) into the new engine.
    /// After replay the engine is at `t = 0` with every recovered
    /// arrival queued — byte-identical to the state an uninterrupted
    /// session had before its clock first moved past a release.
    pub fn new(
        sim: Simulation<'a>,
        journal: Journal,
        recovered: &[AppSpec],
    ) -> Result<Self, String> {
        let mut session = Self {
            sim,
            journal,
            last_release: Time::ZERO,
            tel_seen: 0,
            draining: false,
            metrics: ServeMetrics::new(),
        };
        for app in recovered {
            session
                .sim
                .offer(app.clone())
                .map_err(|e| format!("journal replay rejected arrival {}: {e}", app.id()))?;
            session.last_release = session.last_release.max(app.release());
        }
        Ok(session)
    }

    /// Accept one submission: stamp id and release, offer it to the
    /// engine, journal it, acknowledge. Returns `(id, release)`.
    ///
    /// The outer `Result` is a protocol-level rejection (answered to the
    /// client, daemon lives on); the inner write failure from the
    /// journal is returned as `Ok(Err(…))` — fatal, the checkpoint can
    /// no longer be trusted.
    pub fn submit(
        &mut self,
        submission: AppSubmission,
        release: Option<Time>,
        virtual_now: Time,
    ) -> Result<Result<(usize, Time), String>, String> {
        if self.draining {
            self.metrics.rejected.inc();
            return Err("daemon is draining; submissions are closed".into());
        }
        let release = release.unwrap_or_else(|| {
            virtual_now
                .max(self.last_release)
                .max(just_past(self.sim.now()))
        });
        let id = self.sim.admitted() + self.sim.queued();
        let app = submission.into_app(id, release);
        if let Err(e) = self.sim.offer(app.clone()) {
            self.metrics.rejected.inc();
            return Err(e.to_string());
        }
        let watch = Stopwatch::start();
        if let Err(e) = self.journal.append(&app) {
            return Ok(Err(format!(
                "arrival accepted but journal write failed ({e}); \
                 the checkpoint is no longer trustworthy"
            )));
        }
        watch.record(&self.metrics.journal_append);
        self.sim.trace_event(TraceEvent::JournalFlush {
            t: self.sim.now().as_secs(),
            arrivals: self.journal.arrivals() as u64,
            synced: false,
        });
        self.last_release = self.last_release.max(release);
        Ok(Ok((id, release)))
    }

    /// Drive the engine up to virtual instant `bound` (executes every
    /// event at or before it; never advances the clock *to* the bound
    /// itself, so driving in hops is bit-identical to running free).
    pub fn advance(&mut self, bound: Time) -> Result<RunStatus, String> {
        self.sim.run_until(bound).map_err(|e| e.to_string())
    }

    /// Telemetry intervals closed since the last call, oldest first —
    /// the live feed. Under a burst of more intervals than the
    /// telemetry ring holds, the oldest are dropped (the feed is a tap,
    /// not a ledger).
    pub fn fresh_samples(&mut self) -> Vec<TelemetrySample> {
        let total = self.sim.telemetry().samples();
        let delta = total - self.tel_seen;
        self.tel_seen = total;
        if delta == 0 {
            return Vec::new();
        }
        self.sim.telemetry().recent(delta)
    }

    /// The most recently closed telemetry interval, if any.
    #[must_use]
    pub fn last_sample(&self) -> Option<TelemetrySample> {
        self.sim.telemetry().last().copied()
    }

    /// Daemon + engine state snapshot.
    #[must_use]
    pub fn status(&self, virtual_now: Time) -> StatusReport {
        StatusReport {
            clock_secs: virtual_now.get(),
            engine_secs: self.sim.now().get(),
            events: self.sim.events(),
            admitted: self.sim.admitted(),
            queued: self.sim.queued(),
            live: self.sim.live(),
            finished: self.sim.finished_count(),
            journaled: self.journal.arrivals(),
            draining: self.draining,
        }
    }

    /// Force the journal to durable storage; returns the arrival count.
    pub fn checkpoint(&mut self) -> Result<usize, String> {
        self.synced_flush()?;
        Ok(self.journal.arrivals())
    }

    /// Stop accepting submissions and checkpoint. The daemon exits
    /// after this; a later session resumes from the journal.
    pub fn drain(&mut self, virtual_now: Time) -> Result<usize, String> {
        self.journal.mark_drain(virtual_now.get())?;
        self.synced_flush()?;
        self.draining = true;
        Ok(self.journal.arrivals())
    }

    /// Fsync the journal, timing the barrier and stamping a `synced`
    /// flush into the decision trace (when one is attached).
    fn synced_flush(&mut self) -> Result<(), String> {
        let watch = Stopwatch::start();
        self.journal.sync()?;
        watch.record(&self.metrics.journal_fsync);
        self.sim.trace_event(TraceEvent::JournalFlush {
            t: self.sim.now().as_secs(),
            arrivals: self.journal.arrivals() as u64,
            synced: true,
        });
        Ok(())
    }

    /// The session's metric handles (the daemon loop records request
    /// latencies through these).
    #[must_use]
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Refresh the queue-depth gauges from live engine state and
    /// snapshot the whole registry — the `metrics` command's payload.
    #[must_use]
    pub fn metrics_snapshot(&self, virtual_now: Time) -> MetricsSnapshot {
        self.metrics
            .observe_depths(&self.status(virtual_now), self.sim.pending_len());
        self.metrics.snapshot()
    }

    /// The journal file (for the `checkpoint` acknowledgement).
    #[must_use]
    pub fn journal_path(&self) -> String {
        self.journal.path().display().to_string()
    }

    /// Arrivals accepted over the session's whole life (journal length).
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.journal.arrivals()
    }

    /// Close admission and run the engine to completion — the
    /// `shutdown` command. Consumes the session; the journal remains on
    /// disk (a replay of it reproduces the returned outcome
    /// bit-for-bit).
    pub fn finish(mut self) -> Result<(SimOutcome, usize), String> {
        let accepted = self.journal.arrivals();
        self.sim.close_admission();
        let outcome = self.sim.run_to_completion().map_err(|e| e.to_string())?;
        Ok((outcome, accepted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::ServeSpec;
    use iosched_core::registry::PolicyFactory;
    use iosched_model::Platform;
    use iosched_sim::{simulate_stream, SimConfig};
    use std::path::PathBuf;

    fn spec() -> ServeSpec {
        ServeSpec {
            platform: Platform::intrepid(),
            policy: PolicyFactory::parse("maxsyseff").unwrap(),
            accel: 0.0,
            config: SimConfig::default(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iosched-session-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn submission(k: usize) -> AppSubmission {
        AppSubmission::parse_json(&format!(
            r#"{{"procs": {}, "work": {}, "vol": {}, "count": 3}}"#,
            1 << (6 + (k % 4)),
            50.0 + 17.0 * k as f64,
            256.0 + 64.0 * k as f64,
        ))
        .unwrap()
    }

    /// The tentpole equivalence: a session fed submissions over the
    /// protocol path (stamp → offer → journal), driven in arbitrary
    /// hops, finishes bit-identically to `simulate_stream` over the
    /// same arrival sequence — and so does a second session replaying
    /// the journal the first one wrote.
    #[test]
    fn session_and_journal_replay_match_simulate_stream_bit_for_bit() {
        let spec = spec();
        let path = tmp("equiv.jsonl");

        // Session 1: submit over the protocol path with explicit
        // releases, drive in hops, finish.
        let mut policy = spec.policy.build_online(&spec.platform).unwrap();
        let sim = Simulation::open(&spec.platform, policy.as_mut(), &spec.config).unwrap();
        let journal = Journal::create(&path, &spec).unwrap();
        let mut session = Session::new(sim, journal, &[]).unwrap();
        let mut apps = Vec::new();
        for k in 0..6 {
            let release = Time::secs(30.0 + 45.0 * k as f64);
            let (id, stamped) = session
                .submit(submission(k), Some(release), Time::ZERO)
                .unwrap()
                .unwrap();
            assert_eq!(id, k);
            apps.push(submission(k).into_app(id, stamped));
            // Drive a little between submissions, as a live daemon would.
            session.advance(Time::secs(20.0 + 40.0 * k as f64)).unwrap();
        }
        let (outcome, accepted) = session.finish().unwrap();
        assert_eq!(accepted, 6);

        // Reference: the closed-form stream over the same arrivals.
        let mut policy = spec.policy.build_online(&spec.platform).unwrap();
        let reference = simulate_stream(
            &spec.platform,
            apps.iter().cloned(),
            policy.as_mut(),
            &spec.config,
        )
        .unwrap();
        assert_outcomes_bit_identical(&outcome, &reference);

        // Session 2: resume from the journal session 1 wrote and finish
        // without any further submissions.
        let recovered = Journal::load(&path).unwrap();
        assert_eq!(recovered.arrivals, apps);
        let mut policy = recovered
            .spec
            .policy
            .build_online(&recovered.spec.platform)
            .unwrap();
        let sim = Simulation::open(
            &recovered.spec.platform,
            policy.as_mut(),
            &recovered.spec.config,
        )
        .unwrap();
        let journal = Journal::reopen(&path, &recovered).unwrap();
        let session = Session::new(sim, journal, &recovered.arrivals).unwrap();
        let (resumed, accepted) = session.finish().unwrap();
        assert_eq!(accepted, 6);
        assert_outcomes_bit_identical(&resumed, &reference);
    }

    fn assert_outcomes_bit_identical(a: &SimOutcome, b: &SimOutcome) {
        assert_eq!(a.events, b.events);
        assert_eq!(a.end_time.get().to_bits(), b.end_time.get().to_bits());
        assert_eq!(
            a.report.sys_efficiency.to_bits(),
            b.report.sys_efficiency.to_bits()
        );
        assert_eq!(a.report.dilation.to_bits(), b.report.dilation.to_bits());
        assert_eq!(a.report.per_app.len(), b.report.per_app.len());
        for (x, y) in a.report.per_app.iter().zip(&b.report.per_app) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish.get().to_bits(), y.finish.get().to_bits());
            assert_eq!(x.rho_tilde.to_bits(), y.rho_tilde.to_bits());
        }
    }

    #[test]
    fn auto_release_stamps_monotonically_and_past_the_engine_clock() {
        let spec = spec();
        let path = tmp("stamp.jsonl");
        let mut policy = spec.policy.build_online(&spec.platform).unwrap();
        let sim = Simulation::open(&spec.platform, policy.as_mut(), &spec.config).unwrap();
        let journal = Journal::create(&path, &spec).unwrap();
        let mut session = Session::new(sim, journal, &[]).unwrap();

        // Auto-stamped at t=0: strictly past the engine clock.
        let (_, r0) = session
            .submit(submission(0), None, Time::ZERO)
            .unwrap()
            .unwrap();
        assert!(r0 > Time::ZERO);
        // A later virtual clock dominates.
        let (_, r1) = session
            .submit(submission(1), None, Time::secs(100.0))
            .unwrap()
            .unwrap();
        assert!(r1.approx_eq(Time::secs(100.0)));
        // A stalled virtual clock cannot stamp before an earlier release.
        let (_, r2) = session
            .submit(submission(2), None, Time::secs(50.0))
            .unwrap()
            .unwrap();
        assert!(r2 >= r1);
        // Drive past the releases, then stamp again: still accepted.
        session.advance(Time::secs(150.0)).unwrap();
        let (_, r3) = session
            .submit(submission(3), None, Time::secs(150.0))
            .unwrap()
            .unwrap();
        assert!(r3 > session_now(&session));
        session.finish().unwrap();

        fn session_now(session: &Session<'_>) -> Time {
            Time::secs(session.status(Time::ZERO).engine_secs)
        }
    }

    #[test]
    fn rejected_submissions_do_not_reach_the_journal() {
        let spec = spec();
        let path = tmp("reject.jsonl");
        let mut policy = spec.policy.build_online(&spec.platform).unwrap();
        let sim = Simulation::open(&spec.platform, policy.as_mut(), &spec.config).unwrap();
        let journal = Journal::create(&path, &spec).unwrap();
        let mut session = Session::new(sim, journal, &[]).unwrap();

        // Infeasible processor demand: engine rejects, journal untouched.
        let monster =
            AppSubmission::parse_json(r#"{"procs": 999999999, "work": 1.0, "vol": 1.0}"#).unwrap();
        let err = session.submit(monster, None, Time::ZERO).unwrap_err();
        assert!(err.contains("processors"), "{err}");
        assert_eq!(session.accepted(), 0);

        // An explicit release behind the engine clock: rejected too.
        session
            .submit(submission(0), Some(Time::secs(10.0)), Time::ZERO)
            .unwrap()
            .unwrap();
        session.advance(Time::secs(50.0)).unwrap();
        let err = session
            .submit(submission(1), Some(Time::secs(5.0)), Time::ZERO)
            .unwrap_err();
        assert!(err.contains("clock"), "{err}");
        assert_eq!(session.accepted(), 1);

        // Draining refuses everything.
        session.drain(Time::secs(60.0)).unwrap();
        let err = session
            .submit(submission(2), None, Time::secs(60.0))
            .unwrap_err();
        assert!(err.contains("draining"), "{err}");
        assert!(session.status(Time::secs(60.0)).draining);
    }

    #[test]
    fn metrics_count_journal_writes_and_refresh_queue_depths() {
        let spec = spec();
        let path = tmp("metrics.jsonl");
        let mut policy = spec.policy.build_online(&spec.platform).unwrap();
        let sim = Simulation::open(&spec.platform, policy.as_mut(), &spec.config).unwrap();
        let journal = Journal::create(&path, &spec).unwrap();
        let mut session = Session::new(sim, journal, &[]).unwrap();

        for k in 0..3 {
            session
                .submit(submission(k), Some(Time::secs(10.0 + k as f64)), Time::ZERO)
                .unwrap()
                .unwrap();
        }
        session.checkpoint().unwrap();
        // A rejection (draining closes admission) counts but never
        // reaches the journal histograms.
        session.drain(Time::secs(1.0)).unwrap();
        let _ = session.submit(submission(3), None, Time::secs(1.0));

        let snap = session.metrics_snapshot(Time::secs(1.0));
        assert_eq!(
            snap.histogram("serve.journal.append.ns").unwrap().count,
            3,
            "one append sample per acknowledged arrival"
        );
        assert_eq!(
            snap.histogram("serve.journal.fsync.ns").unwrap().count,
            2,
            "checkpoint + drain each fsync once"
        );
        assert_eq!(snap.counter("serve.requests.rejected"), Some(1));
        assert_eq!(snap.gauge("serve.engine.journaled"), Some(3));
        assert_eq!(snap.gauge("serve.engine.queued"), Some(3));
    }

    /// A decision trace attached to the engine picks up the session's
    /// journal-flush events — unsynced per acknowledged submit, synced
    /// at checkpoint — interleaved with the engine's own decisions.
    #[test]
    fn journal_flushes_land_in_the_decision_trace() {
        let spec = spec();
        let path = tmp("trace.jsonl");
        let mut policy = spec.policy.build_online(&spec.platform).unwrap();
        let mut sim = Simulation::open(&spec.platform, policy.as_mut(), &spec.config).unwrap();
        sim.enable_decision_trace(4096);
        let journal = Journal::create(&path, &spec).unwrap();
        let mut session = Session::new(sim, journal, &[]).unwrap();
        for k in 0..2 {
            session
                .submit(submission(k), Some(Time::secs(10.0 + k as f64)), Time::ZERO)
                .unwrap()
                .unwrap();
        }
        session.checkpoint().unwrap();
        let (outcome, _) = session.finish().unwrap();
        let trace = outcome.decision_trace.expect("trace was attached");
        let flushes: Vec<_> = trace
            .records()
            .filter(|r| r.event.kind() == "journal_flush")
            .collect();
        assert_eq!(flushes.len(), 3, "2 submits + 1 checkpoint");
        let synced = flushes
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    iosched_sim::TraceEvent::JournalFlush { synced: true, .. }
                )
            })
            .count();
        assert_eq!(synced, 1);
        // The engine's own decisions are in there too.
        assert!(trace.records().any(|r| r.event.kind() == "admission"));
        assert!(trace.records().any(|r| r.event.kind() == "retirement"));
    }

    #[test]
    fn fresh_samples_stream_the_closed_intervals_exactly_once() {
        let spec = spec();
        let path = tmp("samples.jsonl");
        let mut policy = spec.policy.build_online(&spec.platform).unwrap();
        let sim = Simulation::open(&spec.platform, policy.as_mut(), &spec.config).unwrap();
        let journal = Journal::create(&path, &spec).unwrap();
        let mut session = Session::new(sim, journal, &[]).unwrap();
        assert!(session.fresh_samples().is_empty());

        for k in 0..3 {
            session
                .submit(submission(k), Some(Time::secs(10.0 + k as f64)), Time::ZERO)
                .unwrap()
                .unwrap();
        }
        session.advance(Time::secs(500.0)).unwrap();
        let first = session.fresh_samples();
        assert!(!first.is_empty());
        // Chronological, non-overlapping, and drained exactly once.
        for pair in first.windows(2) {
            assert!(pair[0].end <= pair[1].start || pair[0].end.approx_eq(pair[1].start));
        }
        assert!(session.fresh_samples().is_empty());
        session.advance(Time::secs(5000.0)).unwrap();
        let second = session.fresh_samples();
        if let (Some(last), Some(next)) = (first.last(), second.first()) {
            assert!(last.end.approx_le(next.start) || last.end.approx_eq(next.start));
        }
        session.finish().unwrap();
    }
}
