//! The daemon's virtual clock.
//!
//! A serve session maps wall time onto engine time through an
//! acceleration factor: `virtual_now = base + accel · wall_elapsed`.
//! Three regimes matter:
//!
//! * `accel = 1` — real time: one simulated second per wall second, the
//!   mode a daemon fronting live clients would run.
//! * `accel > 1` — accelerated: a day-long workload drains in seconds,
//!   the mode CI and demos use.
//! * `accel = 0` — frozen: the clock never moves, the engine only runs
//!   at shutdown (`run_to_completion`). This is the fully deterministic
//!   mode — no wall-clock reading ever influences the trajectory, so a
//!   frozen session with explicit submission releases is bit-identical
//!   across machines and runs.
//!
//! The clock only ever *reads* wall time; the engine itself remains a
//! pure function of the accepted arrival sequence. Wall time decides
//! *how far* the engine is driven between protocol messages — and by
//! the bounded-driving theorem pinned in the engine's tests
//! (`bounded_driving_matches_free_running`), *where* the drive pauses
//! never changes *what* it computes.

use iosched_model::Time;
use std::time::Instant;

/// Monotonic wall→virtual time mapping.
#[derive(Debug)]
pub struct VirtualClock {
    base: Time,
    accel: f64,
    started: Instant,
}

impl VirtualClock {
    /// Start the clock at virtual instant `base`, advancing at `accel`
    /// virtual seconds per wall second from now on.
    #[must_use]
    pub fn new(base: Time, accel: f64) -> Self {
        Self {
            base,
            accel,
            started: Instant::now(),
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Time {
        if self.accel == 0.0 {
            return self.base;
        }
        self.base + Time::secs(self.started.elapsed().as_secs_f64() * self.accel)
    }

    /// The acceleration factor.
    #[must_use]
    pub fn accel(&self) -> f64 {
        self.accel
    }

    /// Wall seconds until the clock reaches virtual instant `t` (0 if
    /// already past; `None` if it never will — frozen clock).
    #[must_use]
    pub fn wall_until(&self, t: Time) -> Option<f64> {
        if self.accel == 0.0 {
            return None;
        }
        Some(((t - self.now()).get() / self.accel).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_clock_never_moves() {
        let clock = VirtualClock::new(Time::secs(42.0), 0.0);
        assert_eq!(clock.now().get().to_bits(), 42.0f64.to_bits());
        assert_eq!(clock.wall_until(Time::secs(100.0)), None);
    }

    #[test]
    fn accelerated_clock_moves_forward_from_base() {
        let clock = VirtualClock::new(Time::secs(10.0), 1000.0);
        let a = clock.now();
        assert!(a.get() >= 10.0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a, "clock went backwards: {a} -> {b}");
        // A virtual instant 3600s ahead is at most 3.6 wall seconds away.
        let wall = clock.wall_until(b + Time::secs(3600.0)).unwrap();
        assert!(wall <= 3.6, "{wall}");
    }
}
