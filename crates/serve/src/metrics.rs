//! The daemon's observability surface: a [`Registry`] plus pre-resolved
//! handles for every metric the serve loop touches.
//!
//! Handles are resolved once at session start so the hot path (one
//! histogram record per request, one per journal write) never takes the
//! registry lock. Everything here is observation-only: recording wall
//! time can never influence the virtual-clock trajectory, which is a
//! pure function of the accepted arrival sequence.
//!
//! Catalog (all durations in nanoseconds, log₂-bucketed):
//!
//! | name | kind | what |
//! |------|------|------|
//! | `serve.requests` | counter | parsed protocol requests |
//! | `serve.requests.parse_errors` | counter | lines answered `{"err":…}` at parse |
//! | `serve.requests.rejected` | counter | well-formed submissions the engine refused |
//! | `serve.request.{submit,status,telemetry,metrics,other}.ns` | histogram | request handling latency |
//! | `serve.journal.append.ns` | histogram | write-ahead arrival append (pre-ack) |
//! | `serve.journal.fsync.ns` | histogram | journal durability barrier (`checkpoint`/`drain`) |
//! | `serve.engine.{live,queued,pending,journaled}` | gauge | queue depths at last `metrics` request |

use crate::protocol::{Request, StatusReport};
use iosched_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};

/// Registry plus resolved handles for the serve loop.
pub struct ServeMetrics {
    registry: Registry,
    /// Protocol requests parsed successfully.
    pub requests: Counter,
    /// Lines that failed to parse.
    pub parse_errors: Counter,
    /// Well-formed submissions the engine (or drain state) refused.
    pub rejected: Counter,
    /// Write-ahead append latency (every acknowledged arrival).
    pub journal_append: Histogram,
    /// Journal fsync latency (`checkpoint` and `drain`).
    pub journal_fsync: Histogram,
    req_submit: Histogram,
    req_status: Histogram,
    req_telemetry: Histogram,
    req_metrics: Histogram,
    req_other: Histogram,
    live: Gauge,
    queued: Gauge,
    pending: Gauge,
    journaled: Gauge,
}

impl ServeMetrics {
    /// Register the whole catalog against a fresh registry.
    #[must_use]
    pub fn new() -> Self {
        let registry = Registry::new();
        let hist = |name: &str| registry.histogram(name);
        Self {
            requests: registry.counter("serve.requests"),
            parse_errors: registry.counter("serve.requests.parse_errors"),
            rejected: registry.counter("serve.requests.rejected"),
            journal_append: hist("serve.journal.append.ns"),
            journal_fsync: hist("serve.journal.fsync.ns"),
            req_submit: hist("serve.request.submit.ns"),
            req_status: hist("serve.request.status.ns"),
            req_telemetry: hist("serve.request.telemetry.ns"),
            req_metrics: hist("serve.request.metrics.ns"),
            req_other: hist("serve.request.other.ns"),
            live: registry.gauge("serve.engine.live"),
            queued: registry.gauge("serve.engine.queued"),
            pending: registry.gauge("serve.engine.pending"),
            journaled: registry.gauge("serve.engine.journaled"),
            registry,
        }
    }

    /// The latency histogram a request's handling records into.
    /// `drain`/`shutdown` share the `other` bucket with `checkpoint` —
    /// they answer once and exit, so a dedicated series would never
    /// hold more than one sample.
    #[must_use]
    pub fn request_hist(&self, request: &Request) -> &Histogram {
        match request {
            Request::Submit { .. } => &self.req_submit,
            Request::Status => &self.req_status,
            Request::Telemetry { .. } => &self.req_telemetry,
            Request::Metrics => &self.req_metrics,
            Request::Checkpoint | Request::Drain | Request::Shutdown => &self.req_other,
        }
    }

    /// Refresh the queue-depth gauges from a status snapshot plus the
    /// engine's in-flight I/O count (gauges also track the high-water
    /// mark via `peak`, so refreshing on every `metrics` request is the
    /// sampling discipline).
    pub fn observe_depths(&self, status: &StatusReport, pending: usize) {
        self.live.set(status.live as u64);
        self.queued.set(status.queued as u64);
        self.pending.set(pending as u64);
        self.journaled.set(status.journaled as u64);
    }

    /// Point-in-time snapshot of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_registers_and_routes_requests() {
        let m = ServeMetrics::new();
        m.requests.inc();
        m.request_hist(&Request::Status).record(100);
        m.request_hist(&Request::Drain).record(7);
        m.observe_depths(
            &StatusReport {
                clock_secs: 0.0,
                engine_secs: 0.0,
                events: 0,
                admitted: 3,
                queued: 2,
                live: 1,
                finished: 0,
                journaled: 3,
                draining: false,
            },
            5,
        );
        let snap = m.snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(1));
        assert_eq!(snap.gauge("serve.engine.pending"), Some(5));
        assert_eq!(snap.gauge("serve.engine.journaled"), Some(3));
        assert_eq!(snap.histogram("serve.request.status.ns").unwrap().count, 1);
        assert_eq!(snap.histogram("serve.request.other.ns").unwrap().count, 1);
        assert_eq!(snap.histogram("serve.request.submit.ns").unwrap().count, 0);
    }
}
