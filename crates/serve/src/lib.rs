//! # iosched-serve
//!
//! The scheduler as a long-lived service: a daemon wrapping the
//! open-admission engine of `iosched-sim` behind a line-delimited JSON
//! protocol (stdin and/or a Unix-domain socket) — `submit`, `status`,
//! `telemetry`, `metrics`, `checkpoint`, `drain`, `shutdown`.
//!
//! The paper's scheduler is meant to run *online* inside a machine's
//! I/O middleware, deciding bandwidth shares as applications arrive
//! (§3.1's event-driven heuristics are explicitly designed for that
//! setting). Everything else in this repository drives the engine from
//! recorded or generated arrival sequences; this crate closes the loop
//! and lets external clients be the arrival process.
//!
//! Three properties define the subsystem, each pinned by tests:
//!
//! 1. **Reentrant admission** — submissions interleave with engine
//!    stepping through [`iosched_sim::Simulation::offer`]; the
//!    trajectory is a pure function of the accepted arrival sequence.
//! 2. **The journal is the checkpoint** — every accepted arrival is a
//!    flushed JSONL line *before* it is acknowledged; a SIGKILL at any
//!    instant loses nothing acknowledged, and a resumed session
//!    continues **bit-identically** to one never interrupted.
//! 3. **Wall time never leaks into results** — the virtual clock (real
//!    time, `--accelerate N`, or frozen at `N = 0`) only decides *how
//!    far* to drive between messages; bounded driving is bit-identical
//!    to free running.
//!
//! Modules, inside out: [`protocol`] (wire format), [`journal`]
//! (write-ahead arrival log + [`journal::ServeSpec`] manifest),
//! [`clock`] (wall→virtual mapping), [`metrics`] (the daemon's
//! observability catalog over `iosched-obs`), [`session`] (the I/O-free
//! state machine), [`daemon`] (threads, sockets, the drive loop, plus
//! the `--replay` verifier and `--connect` client).

pub mod clock;
pub mod daemon;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod session;

pub use clock::VirtualClock;
pub use daemon::{connect, replay, run_daemon, DaemonOptions};
pub use journal::{Journal, JournalContents, ServeSpec};
pub use metrics::ServeMetrics;
pub use protocol::{parse_request, Request, StatusReport};
pub use session::Session;
