//! Stand-ins for the production I/O stacks the paper measures against.
//!
//! §4.4 compares the heuristics *without* burst buffers to "the Intrepid
//! and Mira schedulers" *with* burst buffers; §5 does the same on Vesta.
//! The production stack has no cross-application coordination, so we model
//! it as [`crate::FairShare`] running on a platform with
//!
//! * the disk-locality interference penalty switched on (the Fig. 1
//!   effect: uncoordinated interleaved streams degrade the delivered
//!   aggregate bandwidth), and
//! * optionally the default burst buffer (absorb at 4×B, one minute of
//!   full-PFS capacity), which hides the penalty while it has headroom.

use crate::FairShare;
use iosched_model::{Interference, Platform};
use iosched_sim::{simulate, SimConfig, SimError, SimOutcome};

/// Configuration of a native-baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeConfig {
    /// Route I/O through the burst buffer (Intrepid/Mira/Vesta production
    /// behaviour in the paper's comparison).
    pub burst_buffers: bool,
}

impl Default for NativeConfig {
    fn default() -> Self {
        Self {
            burst_buffers: true,
        }
    }
}

/// Equip `base` with the native stack's properties: interference penalty
/// plus the default burst buffer.
#[must_use]
pub fn native_platform(base: Platform) -> Platform {
    base.with_interference(Interference::default_penalty())
        .with_default_burst_buffer()
}

/// Run the native baseline over `apps`.
///
/// The platform should come from [`native_platform`] (it must carry a
/// burst-buffer spec when `config.burst_buffers` is set).
pub fn run_native(
    platform: &Platform,
    apps: &[iosched_model::AppSpec],
    config: NativeConfig,
) -> Result<SimOutcome, SimError> {
    let sim_config = SimConfig {
        use_burst_buffer: config.burst_buffers,
        ..SimConfig::default()
    };
    simulate(platform, apps, &mut FairShare, &sim_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_core::heuristics::MaxSysEff;
    use iosched_model::{AppSpec, Bytes, Time};

    /// Sustained congestion: aggregate I/O demand ≈ 1.9× the PFS over a
    /// window long enough that the burst buffer's one-off absorption is a
    /// small fraction of the total volume (the regime of Tables 1–2).
    fn congested_apps(n: usize) -> Vec<AppSpec> {
        (0..n)
            .map(|i| {
                AppSpec::periodic(
                    i,
                    Time::secs(i as f64 * 3.0),
                    2_000,
                    Time::secs(30.0),
                    Bytes::gib(600.0),
                    12,
                )
            })
            .collect()
    }

    #[test]
    fn native_platform_carries_penalty_and_bb() {
        let p = native_platform(Platform::intrepid());
        assert!(p.interference.is_penalizing());
        assert!(p.burst_buffer.is_some());
        p.validate().unwrap();
    }

    #[test]
    fn burst_buffers_help_the_native_scheduler() {
        let p = native_platform(Platform::intrepid());
        let apps = congested_apps(6);
        let with = run_native(
            &p,
            &apps,
            NativeConfig {
                burst_buffers: true,
            },
        )
        .unwrap();
        let without = run_native(
            &p,
            &apps,
            NativeConfig {
                burst_buffers: false,
            },
        )
        .unwrap();
        assert!(
            with.report.sys_efficiency > without.report.sys_efficiency,
            "BB must improve the congested native run: {} vs {}",
            with.report.sys_efficiency,
            without.report.sys_efficiency
        );
    }

    #[test]
    fn headline_claim_heuristics_without_bb_beat_native_with_bb() {
        // The paper's striking result (§1, §4.4): the global scheduler
        // *without* burst buffers outperforms the native scheduler *with*
        // them on congested moments.
        let p = native_platform(Platform::intrepid());
        let apps = congested_apps(8);
        let native = run_native(&p, &apps, NativeConfig::default()).unwrap();
        let ours = simulate(&p, &apps, &mut MaxSysEff, &SimConfig::default()).unwrap();
        assert!(
            ours.report.sys_efficiency >= native.report.sys_efficiency - 0.02,
            "MaxSysEff w/o BB ({:.3}) should at least match native w/ BB ({:.3})",
            ours.report.sys_efficiency,
            native.report.sys_efficiency
        );
    }
}
