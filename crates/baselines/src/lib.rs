//! # iosched-baselines
//!
//! Baseline schedulers the paper compares against:
//!
//! * [`FairShare`] — uncoordinated concurrent access with max–min fair
//!   bandwidth sharing. Combined with the platform's disk-locality
//!   [`iosched_model::Interference`] penalty this models what Intrepid,
//!   Mira and Vesta deliver when every application simply hits the PFS
//!   (the congested executions of Figs. 1, 8–13, 15).
//! * [`Fcfs`] — strict first-come-first-served: the whole PFS goes to the
//!   application whose current request is oldest (the "simple
//!   first-come first-served strategies for each storage server" of §1).
//! * [`native`] — convenience constructors for the "Intrepid scheduler",
//!   "Mira scheduler" and "Vesta scheduler" baselines: FairShare +
//!   interference + burst buffers, exactly how the paper describes the
//!   production systems it measures against.
//!
//! The `FairShare` and `Fcfs` policy types themselves live in
//! [`iosched_core::baselines`] (re-exported here unchanged) so the
//! scenario-aware policy registry
//! ([`iosched_core::registry::PolicyFactory`]) can instantiate the whole
//! roster without a dependency cycle; this crate keeps the
//! platform-level native-scheduler modelling.

pub mod native;

pub use iosched_core::baselines::{FairShare, Fcfs};
pub use native::{native_platform, run_native, NativeConfig};
