//! Max–min fair bandwidth sharing — the "no global scheduler" baseline.
//!
//! Every application that wants I/O transfers concurrently; the PFS
//! bandwidth is split by progressive water-filling: applications whose
//! card limit `β·b` is below the equal share keep their limit, the
//! leftover is redistributed among the rest. This is the fluid idealization
//! of what a parallel file system does when nobody coordinates — and the
//! state in which the disk-locality interference penalty of Fig. 1 bites
//! hardest, because *all* K applications stream at once.

use iosched_core::policy::{Allocation, OnlinePolicy, SchedContext};
use iosched_model::Bw;

/// Uncoordinated concurrent access with max–min fairness.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairShare;

impl OnlinePolicy for FairShare {
    fn name(&self) -> String {
        "fairshare".into()
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        // Order is irrelevant for a policy that serves everyone; return
        // id order for determinism (used only if someone wraps us).
        (0..ctx.pending.len()).collect()
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> Allocation {
        let n = ctx.pending.len();
        if n == 0 {
            return Allocation::empty();
        }
        // Progressive filling: satisfy the most-constrained demands first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            ctx.pending[a]
                .max_bw
                .get()
                .total_cmp(&ctx.pending[b].max_bw.get())
                .then_with(|| ctx.pending[a].id.cmp(&ctx.pending[b].id))
        });
        let mut remaining = ctx.total_bw;
        let mut left = n;
        let mut grants = Vec::with_capacity(n);
        for &i in &order {
            let fair = remaining / left as f64;
            let bw = ctx.pending[i].max_bw.min(fair);
            if bw.get() > 0.0 {
                grants.push((ctx.pending[i].id, bw));
            }
            remaining = (remaining - bw).max(Bw::ZERO);
            left -= 1;
        }
        grants.sort_by_key(|(id, _)| *id);
        Allocation { grants }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_core::policy::test_support::{app, ctx};
    use iosched_model::AppId;

    #[test]
    fn equal_demands_split_equally() {
        let pending = [app(0, 10.0), app(1, 10.0), app(2, 10.0), app(3, 10.0)];
        let c = ctx(10.0, &pending);
        let alloc = FairShare.allocate(&c);
        alloc.validate(&c).unwrap();
        for i in 0..4 {
            assert!(
                alloc.granted(AppId(i)).approx_eq(Bw::gib_per_sec(2.5)),
                "app {i} got {}",
                alloc.granted(AppId(i))
            );
        }
    }

    #[test]
    fn small_demand_frees_bandwidth_for_big_ones() {
        // One app capped at 1 GiB/s, two at 10: water-filling gives
        // 1 + 4.5 + 4.5.
        let pending = [app(0, 1.0), app(1, 10.0), app(2, 10.0)];
        let c = ctx(10.0, &pending);
        let alloc = FairShare.allocate(&c);
        alloc.validate(&c).unwrap();
        assert!(alloc.granted(AppId(0)).approx_eq(Bw::gib_per_sec(1.0)));
        assert!(alloc.granted(AppId(1)).approx_eq(Bw::gib_per_sec(4.5)));
        assert!(alloc.granted(AppId(2)).approx_eq(Bw::gib_per_sec(4.5)));
    }

    #[test]
    fn undersubscribed_system_gives_everyone_their_cap() {
        let pending = [app(0, 2.0), app(1, 3.0)];
        let c = ctx(10.0, &pending);
        let alloc = FairShare.allocate(&c);
        assert!(alloc.granted(AppId(0)).approx_eq(Bw::gib_per_sec(2.0)));
        assert!(alloc.granted(AppId(1)).approx_eq(Bw::gib_per_sec(3.0)));
    }

    #[test]
    fn empty_pending_grants_nothing() {
        let pending: [iosched_core::policy::AppState; 0] = [];
        let c = ctx(10.0, &pending);
        assert!(FairShare.allocate(&c).grants.is_empty());
    }

    #[test]
    fn everyone_gets_something_under_congestion() {
        let pending: Vec<_> = (0..7).map(|i| app(i, 10.0)).collect();
        let c = ctx(10.0, &pending);
        let alloc = FairShare.allocate(&c);
        alloc.validate(&c).unwrap();
        for i in 0..7 {
            assert!(alloc.granted(AppId(i)).get() > 0.0, "app {i} starved");
        }
        assert!(alloc.total().approx_eq(c.total_bw));
    }
}
