//! Strict first-come-first-served: the oldest outstanding I/O request owns
//! the PFS (leftover card capacity cascades to the next-oldest, as in the
//! shared greedy grant loop). §1 cites this as the simplest policy used by
//! server-side HPC I/O schedulers.

use iosched_core::policy::{order_by_key_asc, OnlinePolicy, SchedContext};

/// Oldest-request-first baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl OnlinePolicy for Fcfs {
    fn name(&self) -> String {
        "fcfs".into()
    }

    fn order(&mut self, ctx: &SchedContext<'_>) -> Vec<usize> {
        order_by_key_asc(ctx, |a| a.io_requested_at.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched_core::policy::test_support::{app, ctx};
    use iosched_model::{AppId, Time};

    #[test]
    fn oldest_request_owns_the_disk() {
        let mut a0 = app(0, 10.0);
        a0.io_requested_at = Time::secs(20.0);
        let mut a1 = app(1, 10.0);
        a1.io_requested_at = Time::secs(5.0);
        let pending = [a0, a1];
        let c = ctx(10.0, &pending);
        let alloc = Fcfs.allocate(&c);
        assert!(alloc.granted(AppId(1)).approx_eq(c.total_bw));
        assert!(alloc.granted(AppId(0)).is_zero());
    }

    #[test]
    fn leftover_cascades_to_next_oldest() {
        let mut a0 = app(0, 4.0);
        a0.io_requested_at = Time::secs(1.0);
        let mut a1 = app(1, 4.0);
        a1.io_requested_at = Time::secs(2.0);
        let mut a2 = app(2, 4.0);
        a2.io_requested_at = Time::secs(3.0);
        let pending = [a0, a1, a2];
        let c = ctx(10.0, &pending);
        let alloc = Fcfs.allocate(&c);
        assert!(alloc
            .granted(AppId(0))
            .approx_eq(iosched_model::Bw::gib_per_sec(4.0)));
        assert!(alloc
            .granted(AppId(1))
            .approx_eq(iosched_model::Bw::gib_per_sec(4.0)));
        assert!(alloc
            .granted(AppId(2))
            .approx_eq(iosched_model::Bw::gib_per_sec(2.0)));
    }

    #[test]
    fn ties_break_by_id() {
        let pending = [app(1, 10.0), app(0, 10.0)];
        let c = ctx(10.0, &pending);
        let alloc = Fcfs.allocate(&c);
        assert!(alloc.granted(AppId(0)).approx_eq(c.total_bw));
    }
}
