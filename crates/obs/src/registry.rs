//! Lock-free metrics registry.
//!
//! Registration (name → handle) takes a `Mutex` once; the returned
//! [`Counter`]/[`Gauge`]/[`Histogram`] handles are `Arc`-backed and
//! every observation after that is a relaxed atomic operation — no
//! allocation, no lock, safe from the engine hot loop and the daemon
//! request path. [`Registry::snapshot`] freezes the catalog into a
//! [`MetricsSnapshot`] with a stable (sorted) name order, renderable as
//! text lines or a JSON value tree.
//!
//! Histograms are fixed log₂-bucketed: bucket 0 holds the value `0`,
//! bucket `b ∈ 1..63` holds `[2^(b-1), 2^b)`, bucket 63 holds
//! everything from `2^62` up. Exact `count`/`sum`/`min`/`max` ride
//! alongside, so means are exact and quantiles are bucket-resolution
//! (an upper bound, clamped to the observed max) — plenty for latency
//! distributions spanning nanoseconds to seconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Error, Serialize, Value};

/// Number of log₂ buckets in every histogram.
pub const HIST_BUCKETS: usize = 64;

/// Monotonic counter handle (clone freely; all clones share the cell).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (tests, scratch).
    #[must_use]
    pub fn detached() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle (also supports a monotonic-peak update).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry (tests, scratch).
    #[must_use]
    pub fn detached() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    /// Set the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is larger (peak tracking).
    pub fn peak(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared histogram storage: fixed buckets plus exact scalar moments.
#[derive(Debug)]
struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: 0 for 0, else `floor(log2 v) + 1`, capped.
#[must_use]
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (saturating for the last one).
#[must_use]
pub fn bucket_high(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Log₂-bucketed histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// A histogram not attached to any registry (tests, scratch).
    #[must_use]
    pub fn detached() -> Self {
        Self(Arc::new(HistCore::new()))
    }

    /// Record one observation (typically nanoseconds or bytes).
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Freeze the current contents.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        let count = c.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                c.min.load(Ordering::Relaxed)
            },
            max: c.max.load(Ordering::Relaxed),
            buckets: c
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// A frozen histogram: exact moments plus the non-empty buckets as
/// `(bucket index, count)` pairs. Serializable (shard footers embed
/// these) and mergeable (the campaign merge aggregates them).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Exact sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty log₂ buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Exact mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }

    /// Bucket-resolution quantile: the inclusive upper bound of the
    /// bucket holding the `q`-th observation, clamped to the observed
    /// extrema. `q` is in `[0, 1]`; returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(b, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_high(b as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another snapshot into this one (bucket-wise addition; the
    /// result is what one histogram observing both streams would hold).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for &(b, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&b, |&(i, _)| i) {
                Ok(k) => self.buckets[k].1 += n,
                Err(k) => self.buckets.insert(k, (b, n)),
            }
        }
    }
}

/// The registry: a named catalog of counters, gauges and histograms.
///
/// `counter`/`gauge`/`histogram` are get-or-register: the same name
/// always yields a handle to the same cell, so independent modules can
/// share a metric by naming convention alone. Names are expected to be
/// dotted paths (`serve.journal.fsync.ns`); the `.ns` suffix marks
/// nanosecond histograms by convention.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// Panics on a poisoned registration lock (a prior registration
    /// panicked — unrecoverable programmer error).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, c)) = g.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::detached();
        g.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// Panics on a poisoned registration lock.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, c)) = g.gauges.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Gauge::detached();
        g.gauges.push((name.to_string(), c.clone()));
        c
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// Panics on a poisoned registration lock.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, c)) = g.histograms.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Histogram::detached();
        g.histograms.push((name.to_string(), c.clone()));
        c
    }

    /// Freeze every metric into a snapshot, names sorted for stable
    /// output.
    ///
    /// # Panics
    /// Panics on a poisoned registration lock.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().expect("metrics registry poisoned");
        let mut counters: Vec<(String, u64)> = g
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, u64)> =
            g.gauges.iter().map(|(n, c)| (n.clone(), c.get())).collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> = g
            .histograms
            .iter()
            .map(|(n, c)| (n.clone(), c.snapshot()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A frozen view of a whole registry.
///
/// Serializes as `{"counters": {name: n}, "gauges": {name: n},
/// "histograms": {name: {count, sum, min, max, buckets}}}` — maps keyed
/// by metric name, insertion (= sorted) order preserved.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Look up a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// One human-readable line per metric (`counter name value`,
    /// `gauge name value`, `hist name count=… mean=… p50=… p99=… max=…`).
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (n, v) in &self.counters {
            let _ = writeln!(out, "counter {n} {v}");
        }
        for (n, v) in &self.gauges {
            let _ = writeln!(out, "gauge {n} {v}");
        }
        for (n, h) in &self.histograms {
            let _ = writeln!(
                out,
                "hist {n} count={} mean={:.1} min={} p50={} p99={} max={}",
                h.count,
                h.mean(),
                h.min,
                h.quantile(0.50),
                h.quantile(0.99),
                h.max
            );
        }
        out
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let pairs = |kv: &[(String, u64)]| {
            Value::Map(kv.iter().map(|(n, v)| (n.clone(), v.to_value())).collect())
        };
        Value::Map(vec![
            ("counters".to_string(), pairs(&self.counters)),
            ("gauges".to_string(), pairs(&self.gauges)),
            (
                "histograms".to_string(),
                Value::Map(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::custom("expected map"))?;
        let section = |key: &str| -> Result<&[(String, Value)], Error> {
            serde::map_get(m, key)
                .as_map()
                .ok_or_else(|| Error::custom(format!("expected map at '{key}'")))
        };
        let pairs = |kv: &[(String, Value)]| -> Result<Vec<(String, u64)>, Error> {
            kv.iter()
                .map(|(n, v)| Ok((n.clone(), u64::from_value(v)?)))
                .collect()
        };
        Ok(Self {
            counters: pairs(section("counters")?)?,
            gauges: pairs(section("gauges")?)?,
            histograms: section("histograms")?
                .iter()
                .map(|(n, v)| Ok((n.clone(), HistogramSnapshot::from_value(v)?)))
                .collect::<Result<_, Error>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for v in [0u64, 1, 2, 3, 4, 5, 1023, 1024, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_high(b), "{v} above bucket {b} bound");
        }
    }

    #[test]
    fn histogram_moments_are_exact() {
        let h = Histogram::detached();
        for v in [3u64, 5, 1000, 0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1008);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 252.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_clamp_to_observed_extrema() {
        let h = Histogram::detached();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(100_000);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 127); // bucket [64,127] holds 100
        assert_eq!(s.quantile(1.0), 100_000); // clamped to max
        assert!(s.quantile(0.99) <= 127);
    }

    #[test]
    fn merge_matches_single_histogram() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        let whole = Histogram::detached();
        for v in [1u64, 7, 9, 100] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 2, 5000] {
            b.record(v);
            whole.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn registry_get_or_register_shares_cells() {
        let r = Registry::new();
        r.counter("x").add(2);
        r.counter("x").inc();
        assert_eq!(r.counter("x").get(), 3);
        r.gauge("g").set(7);
        r.gauge("g").peak(5);
        assert_eq!(r.gauge("g").get(), 7);
        r.histogram("h").record(9);
        assert_eq!(r.histogram("h").count(), 1);
    }

    #[test]
    fn snapshot_sorts_and_roundtrips() {
        let r = Registry::new();
        r.counter("z.second").inc();
        r.counter("a.first").add(4);
        r.gauge("depth").set(11);
        r.histogram("lat.ns").record(250);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        assert_eq!(snap.counters[1].0, "z.second");
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("a.first"), Some(4));
        assert_eq!(back.gauge("depth"), Some(11));
        assert_eq!(back.histogram("lat.ns").unwrap().count, 1);
        let text = snap.render_text();
        assert!(text.contains("counter a.first 4"));
        assert!(text.contains("hist lat.ns count=1"));
    }
}
