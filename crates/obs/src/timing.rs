//! Span/section timing on top of the metrics registry.
//!
//! Replaces ad-hoc instrumentation (the engine's former rdtsc section
//! counters and `sim-debug` eprintln ticks): time a region with a
//! [`Stopwatch`], record the elapsed nanoseconds into a registered
//! histogram, and read the distribution back through
//! [`crate::Registry::snapshot`]. [`Sections`] packages the common case
//! of a fixed set of named regions (the engine's `step()` phases, the
//! daemon's request kinds) registered once up front.
//!
//! Timing is observation-only by construction — nothing here feeds back
//! into what it measures — so consumers may leave it attached in
//! bit-identity-pinned paths. Cost when attached is one `Instant` pair
//! plus a handful of relaxed atomics per region; consumers that cannot
//! afford even that gate the call sites behind a compile-time feature
//! (the engine uses `obs-timing`).

use std::time::Instant;

use crate::registry::{Histogram, Registry};

/// A started wall-clock span.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    #[must_use]
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX` (584 years).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Record the elapsed nanoseconds into `hist` and restart the span,
    /// returning what was recorded — the idiom for timing consecutive
    /// phases with one watch.
    pub fn lap(&mut self, hist: &Histogram) -> u64 {
        let ns = self.elapsed_ns();
        hist.record(ns);
        self.0 = Instant::now();
        ns
    }

    /// Record the elapsed nanoseconds into `hist` without restarting.
    pub fn record(&self, hist: &Histogram) -> u64 {
        let ns = self.elapsed_ns();
        hist.record(ns);
        ns
    }
}

/// A fixed set of named timing sections registered under a common
/// prefix: section `i` of `Sections::new(reg, "sim.step", &["peek",
/// "advance"])` records into the histogram `sim.step.peek.ns` etc.
#[derive(Debug)]
pub struct Sections {
    hists: Vec<Histogram>,
}

impl Sections {
    /// Register `prefix.<name>.ns` histograms for every section name.
    #[must_use]
    pub fn new(registry: &Registry, prefix: &str, names: &[&str]) -> Self {
        Self {
            hists: names
                .iter()
                .map(|n| registry.histogram(&format!("{prefix}.{n}.ns")))
                .collect(),
        }
    }

    /// Record `ns` into section `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range (programmer error — the section
    /// list is fixed at construction).
    pub fn record(&self, i: usize, ns: u64) {
        self.hists[i].record(ns);
    }

    /// Number of sections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hists.len()
    }

    /// True when no sections were registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_laps_record_into_histograms() {
        let h = Histogram::detached();
        let mut w = Stopwatch::start();
        let a = w.lap(&h);
        let b = w.record(&h);
        assert_eq!(h.count(), 2);
        assert!(a > 0 || b > 0 || cfg!(miri)); // monotonic clocks tick
    }

    #[test]
    fn sections_register_under_prefix() {
        let r = Registry::new();
        let s = Sections::new(&r, "sim.step", &["peek", "advance"]);
        assert_eq!(s.len(), 2);
        s.record(0, 10);
        s.record(1, 20);
        let snap = r.snapshot();
        assert_eq!(snap.histogram("sim.step.peek.ns").unwrap().count, 1);
        assert_eq!(snap.histogram("sim.step.advance.ns").unwrap().sum, 20);
    }
}
