//! The decision trace: a bounded, deterministic ring of structured
//! scheduling events.
//!
//! Each event answers "why did the scheduler do that": an application
//! was admitted, a grant set was installed, the §2.1 capacity screen
//! dropped to the validating cold path, an application retired, a
//! policy scheduled its own wakeup, the daemon flushed its arrival
//! journal. Events carry absolute sequence numbers, so even after the
//! ring wraps the exported tail says exactly which prefix was dropped.
//!
//! The trace is *observation-only*: attaching one never changes
//! simulation results (the engine's bit-identity pins run with it on
//! and off), and the events themselves are a pure function of the
//! simulated trajectory — two runs of the same scenario produce
//! byte-identical JSONL, which is what makes `iosched trace` replayable
//! alongside `serve --replay`.
//!
//! Every float is encoded with [`iosched_model::lossless`], so a parsed
//! line reproduces the written event bit-for-bit (NaN payloads, `-0.0`
//! and infinities included) — proptested in `tests/trace_roundtrip.rs`.

use iosched_model::lossless::{float_from_value, float_to_value};
use serde::{map_get, Deserialize, Error, Serialize, Value};

/// One structured scheduling decision. Times (`t`, `release`) are
/// simulation seconds. Integer fields (ids, counts) follow the
/// workspace serde data model: exact up to 2^53.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An application entered the system (closed-roster release or
    /// stream/daemon admission).
    Admission {
        /// Application id.
        id: u64,
        /// Admission instant.
        t: f64,
        /// The application's release time (≤ `t` up to tolerance).
        release: f64,
    },
    /// An allocation installed a grant set over a non-empty pending set.
    Grant {
        /// Allocation instant.
        t: f64,
        /// Pending (I/O-phase) applications the policy saw.
        pending: u64,
        /// How many of them received a positive grant.
        granted: u64,
        /// Total granted bandwidth (GiB/s).
        total_bw: f64,
        /// Capacity offered to the policy (GiB/s).
        capacity: f64,
    },
    /// The fused grant-merge screen suspected a §2.1 violation and
    /// dropped to the cold validating path (which either produced the
    /// canonical error or cleared the allocation within tolerance).
    CapacityScreen {
        /// Allocation instant.
        t: f64,
        /// Name of the policy whose allocation tripped the screen.
        policy: String,
    },
    /// An application finished its last instance and left the system.
    Retirement {
        /// Application id.
        id: u64,
        /// Finish instant.
        t: f64,
    },
    /// The next event was a policy-scheduled wakeup (timetable
    /// boundaries, control-loop sampling instants).
    PolicyWakeup {
        /// Wakeup instant.
        t: f64,
    },
    /// The serve daemon flushed its write-ahead arrival journal.
    JournalFlush {
        /// Engine clock at the flush.
        t: f64,
        /// Arrivals journaled so far.
        arrivals: u64,
        /// True for a durable `fsync` (checkpoint), false for the
        /// per-submit buffered flush.
        synced: bool,
    },
}

impl TraceEvent {
    /// The `kind` tag this event serializes under.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Admission { .. } => "admission",
            TraceEvent::Grant { .. } => "grant",
            TraceEvent::CapacityScreen { .. } => "capacity_screen",
            TraceEvent::Retirement { .. } => "retirement",
            TraceEvent::PolicyWakeup { .. } => "policy_wakeup",
            TraceEvent::JournalFlush { .. } => "journal_flush",
        }
    }
}

/// One exported trace line: the event plus its absolute sequence number
/// (0-based over the whole run, surviving ring wraparound).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Absolute 0-based event sequence number.
    pub seq: u64,
    /// The decision.
    pub event: TraceEvent,
}

impl Serialize for TraceRecord {
    fn to_value(&self) -> Value {
        let mut m = vec![
            ("seq".to_string(), self.seq.to_value()),
            ("kind".to_string(), Value::Str(self.event.kind().into())),
        ];
        match &self.event {
            TraceEvent::Admission { id, t, release } => {
                m.push(("id".into(), id.to_value()));
                m.push(("t".into(), float_to_value(*t)));
                m.push(("release".into(), float_to_value(*release)));
            }
            TraceEvent::Grant {
                t,
                pending,
                granted,
                total_bw,
                capacity,
            } => {
                m.push(("t".into(), float_to_value(*t)));
                m.push(("pending".into(), pending.to_value()));
                m.push(("granted".into(), granted.to_value()));
                m.push(("total_bw".into(), float_to_value(*total_bw)));
                m.push(("capacity".into(), float_to_value(*capacity)));
            }
            TraceEvent::CapacityScreen { t, policy } => {
                m.push(("t".into(), float_to_value(*t)));
                m.push(("policy".into(), Value::Str(policy.clone())));
            }
            TraceEvent::Retirement { id, t } => {
                m.push(("id".into(), id.to_value()));
                m.push(("t".into(), float_to_value(*t)));
            }
            TraceEvent::PolicyWakeup { t } => {
                m.push(("t".into(), float_to_value(*t)));
            }
            TraceEvent::JournalFlush {
                t,
                arrivals,
                synced,
            } => {
                m.push(("t".into(), float_to_value(*t)));
                m.push(("arrivals".into(), arrivals.to_value()));
                m.push(("synced".into(), synced.to_value()));
            }
        }
        Value::Map(m)
    }
}

impl Deserialize for TraceRecord {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v
            .as_map()
            .ok_or_else(|| Error::custom("expected trace record map"))?;
        let seq = u64::from_value(map_get(m, "seq")).map_err(|e| e.at("seq"))?;
        let kind = map_get(m, "kind")
            .as_str()
            .ok_or_else(|| Error::custom("missing 'kind' tag"))?;
        let t = || float_from_value(map_get(m, "t")).map_err(|e| e.at("t"));
        let event = match kind {
            "admission" => TraceEvent::Admission {
                id: u64::from_value(map_get(m, "id")).map_err(|e| e.at("id"))?,
                t: t()?,
                release: float_from_value(map_get(m, "release")).map_err(|e| e.at("release"))?,
            },
            "grant" => TraceEvent::Grant {
                t: t()?,
                pending: u64::from_value(map_get(m, "pending")).map_err(|e| e.at("pending"))?,
                granted: u64::from_value(map_get(m, "granted")).map_err(|e| e.at("granted"))?,
                total_bw: float_from_value(map_get(m, "total_bw")).map_err(|e| e.at("total_bw"))?,
                capacity: float_from_value(map_get(m, "capacity")).map_err(|e| e.at("capacity"))?,
            },
            "capacity_screen" => TraceEvent::CapacityScreen {
                t: t()?,
                policy: String::from_value(map_get(m, "policy")).map_err(|e| e.at("policy"))?,
            },
            "retirement" => TraceEvent::Retirement {
                id: u64::from_value(map_get(m, "id")).map_err(|e| e.at("id"))?,
                t: t()?,
            },
            "policy_wakeup" => TraceEvent::PolicyWakeup { t: t()? },
            "journal_flush" => TraceEvent::JournalFlush {
                t: t()?,
                arrivals: u64::from_value(map_get(m, "arrivals")).map_err(|e| e.at("arrivals"))?,
                synced: bool::from_value(map_get(m, "synced")).map_err(|e| e.at("synced"))?,
            },
            other => return Err(Error::custom(format!("unknown trace kind '{other}'"))),
        };
        Ok(TraceRecord { seq, event })
    }
}

/// A bounded ring of [`TraceRecord`]s: pushes are O(1), the last
/// `capacity` events are retained, and the absolute sequence numbering
/// plus [`DecisionTrace::dropped`] make truncation explicit.
///
/// The storage is a flat `Vec` with a wrapping overwrite cursor rather
/// than a `VecDeque`: a full ring replaces the oldest record with one
/// assignment instead of a pop/push pair. The push sits on the engine's
/// per-event path (the `bench_obs_overhead` bar holds it to a few
/// percent of a ~350 ns event), so the cheap shape matters.
#[derive(Debug, Clone)]
pub struct DecisionTrace {
    cap: usize,
    next_seq: u64,
    /// Index of the oldest retained record; 0 until the ring first
    /// wraps, because records land in push order until then.
    head: usize,
    ring: Vec<TraceRecord>,
}

impl DecisionTrace {
    /// A trace keeping the last `capacity` (≥ 1) events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            cap,
            next_seq: 0,
            head: 0,
            ring: Vec::with_capacity(cap.min(4096)),
        }
    }

    /// Append one event, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        let record = TraceRecord {
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        if self.ring.len() < self.cap {
            self.ring.push(record);
        } else {
            self.ring[self.head] = record;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
        }
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing was recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever pushed (= the next sequence number).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted by the ring bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.ring.len() as u64
    }

    /// The retained records, oldest first (unwrapping the ring: the
    /// records at and after the overwrite cursor predate those before
    /// it; until the first wrap the cursor is 0 and this is push order).
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        let (newer, older) = self.ring.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Export the retained records as JSONL (one record per line,
    /// oldest first, trailing newline when non-empty).
    ///
    /// # Panics
    /// Never — trace records always serialize.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.records() {
            out.push_str(&serde_json::to_string(rec).expect("trace records serialize"));
            out.push('\n');
        }
        out
    }

    /// Parse one line written by [`DecisionTrace::to_jsonl`].
    pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
        serde_json::from_str(line).map_err(|e| format!("bad trace line: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Admission {
                id: 0,
                t: 0.0,
                release: -0.0,
            },
            TraceEvent::Grant {
                t: 1.5,
                pending: 3,
                granted: 2,
                total_bw: 160.0,
                capacity: 160.0,
            },
            TraceEvent::CapacityScreen {
                t: 1.5,
                policy: "fairshare".into(),
            },
            TraceEvent::Retirement { id: 0, t: 9.25 },
            TraceEvent::PolicyWakeup { t: 32.0 },
            TraceEvent::JournalFlush {
                t: 32.0,
                arrivals: 7,
                synced: true,
            },
        ]
    }

    #[test]
    fn every_kind_roundtrips_through_jsonl() {
        let mut trace = DecisionTrace::new(16);
        for ev in sample_events() {
            trace.push(ev);
        }
        let jsonl = trace.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6);
        for (line, rec) in lines.iter().zip(trace.records()) {
            let back = DecisionTrace::parse_line(line).unwrap();
            assert_eq!(&back, rec);
        }
    }

    #[test]
    fn ring_bound_keeps_the_tail_and_counts_drops() {
        let mut trace = DecisionTrace::new(2);
        for i in 0..5 {
            trace.push(TraceEvent::PolicyWakeup { t: f64::from(i) });
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.total(), 5);
        assert_eq!(trace.dropped(), 3);
        let seqs: Vec<u64> = trace.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn hostile_floats_survive_bitwise() {
        let ev = TraceEvent::Grant {
            t: f64::from_bits(0x7ff8_0000_dead_beef),
            pending: 1,
            granted: 0,
            total_bw: f64::NEG_INFINITY,
            capacity: -0.0,
        };
        let mut trace = DecisionTrace::new(1);
        trace.push(ev);
        let line = trace.to_jsonl();
        let back = DecisionTrace::parse_line(line.trim()).unwrap();
        match back.event {
            TraceEvent::Grant {
                t,
                total_bw,
                capacity,
                ..
            } => {
                assert_eq!(t.to_bits(), 0x7ff8_0000_dead_beef);
                assert_eq!(total_bw, f64::NEG_INFINITY);
                assert_eq!(capacity.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(DecisionTrace::parse_line(r#"{"seq":0,"kind":"nope"}"#).is_err());
        assert!(DecisionTrace::parse_line("not json").is_err());
    }
}
