//! Provenance-stamped bench report export.
//!
//! The checked-in `BENCH_*.json` artifacts used to be hand-rolled JSON
//! with no record of which binary or PR produced them — which is how
//! `BENCH_PR6.json` ended up holding PR 7's numbers. [`BenchReport`] is
//! the one envelope every `bench_*` binary now emits: a `bench_id`
//! naming the producing binary, the `pr` the numbers belong to, the
//! command that regenerates them, the bench-specific `results` payload,
//! and a [`MetricsSnapshot`] of whatever the run's registry observed.

use serde::{map_get, Deserialize, Error, Serialize, Value};

use crate::registry::{MetricsSnapshot, Registry};

/// A provenance-stamped bench artifact (`BENCH_*.json` schema).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Name of the producing bench binary (e.g. `bench_obs_overhead`).
    pub bench_id: String,
    /// The PR whose changes these numbers measure.
    pub pr: u32,
    /// Command line that regenerates the artifact.
    pub command: String,
    /// Bench-specific results payload (free-form JSON).
    pub results: Value,
    /// Snapshot of the run's metrics registry.
    pub metrics: MetricsSnapshot,
}

impl BenchReport {
    /// An empty report for `bench_id` / `pr`.
    #[must_use]
    pub fn new(bench_id: &str, pr: u32, command: &str) -> Self {
        Self {
            bench_id: bench_id.to_string(),
            pr,
            command: command.to_string(),
            results: Value::Null,
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Attach the bench-specific results payload.
    #[must_use]
    pub fn with_results(mut self, results: Value) -> Self {
        self.results = results;
        self
    }

    /// Snapshot `registry` into the report.
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.metrics = registry.snapshot();
        self
    }

    /// Pretty-printed JSON, the on-disk `BENCH_*.json` form.
    ///
    /// # Panics
    /// Never — reports always serialize.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench reports serialize")
    }
}

impl Serialize for BenchReport {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("bench_id".to_string(), self.bench_id.to_value()),
            ("pr".to_string(), self.pr.to_value()),
            ("command".to_string(), self.command.to_value()),
            ("results".to_string(), self.results.clone()),
            ("metrics".to_string(), self.metrics.to_value()),
        ])
    }
}

impl Deserialize for BenchReport {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::custom("expected map"))?;
        Ok(Self {
            bench_id: String::from_value(map_get(m, "bench_id")).map_err(|e| e.at("bench_id"))?,
            pr: u32::from_value(map_get(m, "pr")).map_err(|e| e.at("pr"))?,
            command: String::from_value(map_get(m, "command")).map_err(|e| e.at("command"))?,
            results: map_get(m, "results").clone(),
            metrics: MetricsSnapshot::from_value(map_get(m, "metrics"))
                .map_err(|e| e.at("metrics"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_with_registry_snapshot() {
        let r = Registry::new();
        r.counter("events").add(42);
        r.histogram("iter.ns").record(1000);
        let report = BenchReport::new("bench_demo", 9, "cargo run --bin bench_demo")
            .with_results(Value::Map(vec![("ratio".to_string(), Value::Num(1.01))]))
            .with_registry(&r);
        let json = report.to_json_pretty();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.pr, 9);
        assert_eq!(back.metrics.counter("events"), Some(42));
    }
}
