//! Workspace-wide observability layer.
//!
//! Three facilities, one crate, shared by every layer of the stack
//! (engine, serve daemon, campaign shards, bench binaries):
//!
//! * [`registry`] — a lock-free metrics registry: monotonic
//!   [`Counter`]s, [`Gauge`]s and fixed log-bucketed [`Histogram`]s.
//!   Registration takes a `Mutex` once; every subsequent observation is
//!   a relaxed atomic op on a pre-registered handle, so the engine hot
//!   loop and the daemon request path can record without allocating or
//!   blocking. [`Registry::snapshot`] freezes the whole catalog into a
//!   serializable [`MetricsSnapshot`] (text or JSON rendering).
//!
//! * [`timing`] — span/section timing on top of the registry: a
//!   [`Stopwatch`] records elapsed nanoseconds into a histogram, and
//!   [`Sections`] names a fixed set of code regions (the engine's
//!   `step()` phases, the daemon's request kinds). Consumers gate the
//!   instrumentation behind their own compile-time feature (the engine
//!   uses `obs-timing`) so the hot path carries no cost when off.
//!
//! * [`trace`] — a bounded, deterministic *decision trace*: a ring of
//!   structured scheduling events ([`TraceEvent`]: admission, grant
//!   set, capacity-screen fallback, retirement, policy wakeup, journal
//!   flush) with absolute sequence numbers, exportable as JSONL and
//!   parseable back bit-for-bit (floats use the
//!   [`iosched_model::lossless`] encoding). Observation-only by
//!   contract: attaching a trace never changes simulation results.
//!
//! [`export`] rounds it out with [`BenchReport`], the provenance-stamped
//! (`bench_id`, `pr`) JSON envelope the `bench_*` binaries emit so the
//! checked-in `BENCH_*.json` artifacts say which code produced them.

pub mod export;
pub mod registry;
pub mod timing;
pub mod trace;

pub use export::BenchReport;
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use timing::{Sections, Stopwatch};
pub use trace::{DecisionTrace, TraceEvent, TraceRecord};
