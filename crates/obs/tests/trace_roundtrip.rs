//! Property test: every decision-trace event survives the JSONL
//! export/parse roundtrip bit-for-bit, including hostile floats (NaN
//! payloads, infinities, `-0.0`) — the [`iosched_model::lossless`]
//! encoding contract lifted to whole trace records.

use iosched_obs::{DecisionTrace, TraceEvent};
use proptest::prelude::*;

/// Arbitrary `f64` *bit patterns* — uniform over all 2^64, so NaN
/// payloads, both infinities, subnormals and `-0.0` all occur.
fn any_bits_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn any_event() -> impl Strategy<Value = TraceEvent> {
    (
        0u64..6,
        // Integer fields ride the workspace serde data model, which is
        // exact up to 2^53 (ids and counts never approach it).
        0u64..(1 << 53),
        any_bits_f64(),
        any_bits_f64(),
        any_bits_f64(),
        any::<bool>(),
    )
        .prop_map(|(kind, n, a, b, c, flag)| match kind {
            0 => TraceEvent::Admission {
                id: n,
                t: a,
                release: b,
            },
            1 => TraceEvent::Grant {
                t: a,
                pending: n,
                granted: n / 2,
                total_bw: b,
                capacity: c,
            },
            2 => TraceEvent::CapacityScreen {
                t: a,
                policy: format!("policy-{}", n % 100),
            },
            3 => TraceEvent::Retirement { id: n, t: a },
            4 => TraceEvent::PolicyWakeup { t: a },
            _ => TraceEvent::JournalFlush {
                t: a,
                arrivals: n,
                synced: flag,
            },
        })
}

/// Bitwise equality over events (plain `==` is false for NaN fields).
fn bits_eq(x: &TraceEvent, y: &TraceEvent) -> bool {
    let f = |v: f64| v.to_bits();
    match (x, y) {
        (
            TraceEvent::Admission {
                id: i1,
                t: t1,
                release: r1,
            },
            TraceEvent::Admission {
                id: i2,
                t: t2,
                release: r2,
            },
        ) => i1 == i2 && f(*t1) == f(*t2) && f(*r1) == f(*r2),
        (
            TraceEvent::Grant {
                t: t1,
                pending: p1,
                granted: g1,
                total_bw: b1,
                capacity: c1,
            },
            TraceEvent::Grant {
                t: t2,
                pending: p2,
                granted: g2,
                total_bw: b2,
                capacity: c2,
            },
        ) => p1 == p2 && g1 == g2 && f(*t1) == f(*t2) && f(*b1) == f(*b2) && f(*c1) == f(*c2),
        (
            TraceEvent::CapacityScreen { t: t1, policy: p1 },
            TraceEvent::CapacityScreen { t: t2, policy: p2 },
        ) => p1 == p2 && f(*t1) == f(*t2),
        (TraceEvent::Retirement { id: i1, t: t1 }, TraceEvent::Retirement { id: i2, t: t2 }) => {
            i1 == i2 && f(*t1) == f(*t2)
        }
        (TraceEvent::PolicyWakeup { t: t1 }, TraceEvent::PolicyWakeup { t: t2 }) => {
            f(*t1) == f(*t2)
        }
        (
            TraceEvent::JournalFlush {
                t: t1,
                arrivals: a1,
                synced: s1,
            },
            TraceEvent::JournalFlush {
                t: t2,
                arrivals: a2,
                synced: s2,
            },
        ) => a1 == a2 && s1 == s2 && f(*t1) == f(*t2),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn jsonl_roundtrip_is_bitwise_lossless(
        events in prop::collection::vec(any_event(), 1..24)
    ) {
        let mut trace = DecisionTrace::new(events.len());
        for ev in &events {
            trace.push(ev.clone());
        }
        let jsonl = trace.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        prop_assert_eq!(lines.len(), events.len());
        for (line, original) in lines.iter().zip(trace.records()) {
            let back = DecisionTrace::parse_line(line)
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(back.seq, original.seq);
            prop_assert!(
                bits_eq(&back.event, &original.event),
                "event lost bits: {:?} vs {:?}", back.event, original.event
            );
        }
    }
}
