//! Kill-and-resume: SIGKILL a shard process mid-campaign, resume the
//! directory, and the merged result is byte-identical to an
//! uninterrupted single-process run — with the killed incarnation's
//! finished blocks never re-simulated (checked through the per-pass
//! counters the partial files carry).

use iosched_bench::campaign::{CampaignSpec, PlatformSpec};
use iosched_bench::shard::{partial_path, scan_dir, shard_blocks};
use iosched_bench::PolicySpec;
use iosched_workload::stream::{ArrivalProcess, StopRule};
use iosched_workload::WorkloadSpec;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_iosched");

/// An open-stream campaign sized so each seed block takes a couple of
/// seconds (simulation cost grows superlinearly in the stream length,
/// debug build) — long enough to reliably land a SIGKILL between the
/// first and last block of a shard, short enough for CI.
fn campaign() -> CampaignSpec {
    let stream = |rate: f64| WorkloadSpec::Stream {
        arrivals: ArrivalProcess::Poisson { rate },
        template: Box::new(WorkloadSpec::Congestion { seed: 0 }),
        stop: StopRule::Apps(1300),
        seed: 0,
    };
    CampaignSpec {
        name: "resume-it".into(),
        platforms: vec![PlatformSpec::Preset("vesta".into())],
        workloads: vec![stream(0.0011), stream(0.0014)],
        policies: vec![
            PolicySpec::FairShare,
            PolicySpec::parse("mindilation").expect("mindilation parses"),
        ],
        seeds: vec![0, 1, 2],
        config: None,
        threads: Some(1),
    }
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(EXE)
        .args(args)
        .output()
        .expect("iosched binary runs")
}

fn assert_ok(out: &std::process::Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Complete (newline-terminated) `{"block":...}` lines in a partial.
fn block_lines(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    let mut n = 0;
    let mut rest = text.as_str();
    while let Some(end) = rest.find('\n') {
        if rest[..end].starts_with("{\"block\"") {
            n += 1;
        }
        rest = &rest[end + 1..];
    }
    n
}

#[test]
fn sigkill_resume_matches_uninterrupted_run_without_resimulation() {
    let base = std::env::temp_dir().join(format!("iosched-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("temp dir");
    let spec = campaign();
    let spec_path = base.join("campaign.json");
    std::fs::write(&spec_path, spec.to_json().expect("spec serializes")).expect("write spec");
    let spec_arg = spec_path.to_str().expect("utf-8 temp path");
    let partials: PathBuf = base.join("partials");
    let partials_arg = partials.to_str().expect("utf-8 temp path");
    let baseline_path = base.join("base.json");
    let resumed_path = base.join("resumed.json");

    // Uninterrupted single-process reference.
    let out = run(&[
        "campaign",
        spec_arg,
        "--json",
        baseline_path.to_str().unwrap(),
    ]);
    assert_ok(&out, "baseline campaign");

    // Launch shard 0 of 2 and SIGKILL it after its first finished block
    // hits the partial file (but well before its last: three assigned
    // blocks, each a multi-hundred-arrival stream simulation).
    let shard_file = partial_path(&partials, 0, 2);
    let mut child = Command::new(EXE)
        .args([
            "shard",
            spec_arg,
            "--index",
            "0",
            "--of",
            "2",
            "--out",
            partials_arg,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("shard child spawns");
    let deadline = Instant::now() + Duration::from_secs(240);
    while block_lines(&shard_file) < 1 {
        assert!(
            Instant::now() < deadline,
            "shard child wrote no block within the deadline"
        );
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("shard child exited before the kill: {status}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL lands"); // Child::kill is SIGKILL on Unix
    child.wait().expect("reap child");

    let killed_bytes = std::fs::read(&shard_file).expect("partial exists");
    let survivors = block_lines(&shard_file);
    let assigned = shard_blocks(spec.block_count(), 0, 2);
    assert!(
        survivors < assigned.len(),
        "child finished all {} blocks before the kill; grow the stream",
        assigned.len()
    );

    // Resume through the sharded driver: spawns both shards against the
    // same directory, merges, and must match the baseline byte-for-byte.
    let out = run(&[
        "campaign",
        spec_arg,
        "--shards",
        "2",
        "--out",
        partials_arg,
        "--json",
        resumed_path.to_str().unwrap(),
    ]);
    assert_ok(&out, "resumed sharded campaign");
    let baseline = std::fs::read(&baseline_path).expect("baseline json");
    let resumed = std::fs::read(&resumed_path).expect("resumed json");
    assert_eq!(
        baseline, resumed,
        "resumed sharded result is not byte-identical to the baseline"
    );

    // No finished block was re-simulated: the killed incarnation's
    // blocks survive at pass 0 and the resume (pass 1) computed exactly
    // the remainder of the shard's stride; the scan sees no duplicate
    // block indices anywhere in the directory.
    let scan = scan_dir(&partials).expect("partials scan clean");
    assert_eq!(scan.duplicates, 0, "a finished block was recomputed");
    assert_eq!(scan.blocks.len(), spec.block_count());
    let shard0_pass0 = scan
        .blocks
        .values()
        .filter(|r| assigned.contains(&r.block) && r.pass == 0)
        .count();
    let shard0_pass1 = scan
        .blocks
        .values()
        .filter(|r| assigned.contains(&r.block) && r.pass == 1)
        .count();
    assert_eq!(shard0_pass0, survivors);
    assert_eq!(shard0_pass1, assigned.len() - survivors);

    // The killed file's complete lines are preserved verbatim: its
    // newline-terminated prefix is a prefix of the resumed file (a torn
    // trailing fragment, if any, is truncated before appending).
    let keep = killed_bytes
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |i| i + 1);
    let resumed_file = std::fs::read(&shard_file).expect("resumed partial");
    assert!(
        resumed_file.starts_with(&killed_bytes[..keep]),
        "resume rewrote completed lines of the killed partial"
    );

    std::fs::remove_dir_all(&base).expect("cleanup");
}
