//! Kill-and-resume for the serve daemon: SIGKILL a live `iosched serve`
//! mid-submission-stream, resume from its journal, feed the remaining
//! submissions, and the `{"final":…}` line is **byte-identical** to an
//! uninterrupted session over the same roster — and to `iosched serve
//! --replay` over the finished journal. This is the checkpoint
//! guarantee of the subsystem: the write-ahead arrival journal IS the
//! checkpoint, valid at every instant, no signal handler involved.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_iosched");

/// The submission roster: explicit releases (so no wall clock leaks
/// into the trajectory) under the frozen-clock default (`--accelerate`
/// omitted = 0).
fn roster() -> Vec<String> {
    (0..8)
        .map(|k| {
            format!(
                r#"{{"cmd":"submit","procs":{},"work":{},"vol":{},"count":{},"release":{}}}"#,
                128 << (k % 3),
                40.0 + 7.5 * k as f64,
                256.0 + 128.0 * k as f64,
                2 + k % 3,
                300 * (k + 1),
            )
        })
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iosched-serve-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn spawn_daemon(journal: &Path) -> Child {
    Command::new(EXE)
        .args([
            "serve",
            "--platform",
            "intrepid",
            "--policy",
            "maxsyseff",
            "--journal",
        ])
        .arg(journal)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns")
}

/// Run a daemon session to completion: submit `lines`, send `shutdown`,
/// return the last stdout line (the `{"final":…}` report).
fn session_final(journal: &Path, lines: &[String]) -> String {
    let mut child = spawn_daemon(journal);
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        for line in lines {
            writeln!(stdin, "{line}").expect("write submission");
        }
        writeln!(stdin, r#"{{"cmd":"shutdown"}}"#).expect("write shutdown");
    }
    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "daemon failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let last = stdout
        .lines()
        .last()
        .expect("at least one line")
        .to_string();
    assert!(last.starts_with(r#"{"final":"#), "no final line: {stdout}");
    last
}

/// Newline-terminated `{"arrival":…}` lines currently in the journal.
fn journal_arrivals(path: &Path) -> usize {
    std::fs::read_to_string(path).map_or(0, |text| {
        text.lines()
            .filter(|l| l.starts_with(r#"{"arrival":"#) && text.contains('\n'))
            .count()
    })
}

#[test]
fn sigkilled_daemon_resumes_bit_identically() {
    let roster = roster();

    // Baseline: one uninterrupted session over the full roster.
    let baseline_journal = tmp("baseline.jsonl");
    let baseline = session_final(&baseline_journal, &roster);

    // Interrupted run: submit the first 5, then SIGKILL the daemon the
    // moment the 5th arrival is journaled — no drain, no warning, no
    // graceful anything.
    let journal = tmp("killed.jsonl");
    let mut child = spawn_daemon(&journal);
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        for line in &roster[..5] {
            writeln!(stdin, "{line}").expect("write submission");
        }
        stdin.flush().expect("flush submissions");
        let deadline = Instant::now() + Duration::from_secs(30);
        while journal_arrivals(&journal) < 5 {
            assert!(
                Instant::now() < deadline,
                "daemon never journaled 5 arrivals (got {})",
                journal_arrivals(&journal)
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        child.kill().expect("SIGKILL");
    }
    let _ = child.wait();

    // The journal decides what survived (the kill races acknowledgement,
    // so "how many" is whatever made it to disk — that is the point).
    let survived = journal_arrivals(&journal);
    assert!(
        (5..=5).contains(&survived),
        "expected exactly the 5 flushed arrivals, found {survived}"
    );

    // Resume from the journal and submit the rest of the roster.
    let resumed = session_final(&journal, &roster[survived..]);
    assert_eq!(
        resumed, baseline,
        "resumed final line differs from the uninterrupted baseline"
    );

    // And the batch replay of the finished journal agrees byte-for-byte.
    let replay = Command::new(EXE)
        .args(["serve", "--replay", "--journal"])
        .arg(&journal)
        .output()
        .expect("replay runs");
    assert!(replay.status.success());
    let replay_line = String::from_utf8(replay.stdout).expect("utf8");
    assert_eq!(replay_line.trim_end(), baseline);
}

/// A drained (graceful) session resumes just as bit-identically as a
/// SIGKILLed one, and the drain acknowledgement reports the checkpoint.
#[test]
fn drained_daemon_resumes_bit_identically() {
    let roster = roster();
    let baseline = session_final(&tmp("drain-baseline.jsonl"), &roster);

    let journal = tmp("drained.jsonl");
    let mut child = spawn_daemon(&journal);
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        for line in &roster[..3] {
            writeln!(stdin, "{line}").expect("write submission");
        }
        writeln!(stdin, r#"{{"cmd":"drain"}}"#).expect("write drain");
    }
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let drain_ack = stdout.lines().last().expect("drain ack");
    assert!(
        drain_ack.starts_with(r#"{"ok":"drain","arrivals":3"#),
        "unexpected drain ack: {drain_ack}"
    );

    let resumed = session_final(&journal, &roster[3..]);
    assert_eq!(resumed, baseline);
}

/// Malformed protocol lines anywhere in the stream are answered with
/// errors and change nothing: the final line still matches the
/// baseline (daemon-level twin of the in-process fuzz suite).
#[test]
fn malformed_lines_leave_the_trajectory_untouched() {
    let roster = roster();
    let baseline = session_final(&tmp("noise-baseline.jsonl"), &roster);

    let mut noisy: Vec<String> = Vec::new();
    for (k, line) in roster.iter().enumerate() {
        noisy.push(format!("garbage #{k}"));
        noisy.push(r#"{"cmd":"submit","procs":0,"work":1,"vol":1}"#.into());
        noisy.push(line.clone());
        noisy.push(r#"{"cmd":"status"}"#.into());
    }
    let final_line = session_final(&tmp("noise.jsonl"), &noisy);
    assert_eq!(final_line, baseline);
}
