//! `iosched` binary: thin argument parsing over [`iosched_cli`].

use iosched_bench::campaign::{CampaignSpec, ScenarioSpec};
use iosched_cli::{
    cmd_campaign_result, cmd_campaign_sharded, cmd_generate, cmd_merge, cmd_periodic,
    cmd_platforms, cmd_policies, cmd_shard, cmd_simulate, cmd_stream, cmd_telemetry,
    cmd_trace_journal, cmd_trace_scenario, GenerateKind, ScenarioFile, USAGE,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Pull the value following a `--flag` out of `args`.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// First positional operand after the subcommand, skipping `--flag
/// value` pairs (so flags may come before the file, e.g.
/// `iosched campaign --shards 4 campaign.json`).
fn positional(args: &[String], value_flags: &[&str]) -> Option<String> {
    let mut i = 1;
    while i < args.len() {
        let arg = &args[i];
        if value_flags.contains(&arg.as_str()) {
            i += 2;
        } else if arg.starts_with('-') {
            i += 1;
        } else {
            return Some(arg.clone());
        }
    }
    None
}

/// Parse a required integer flag.
fn int_flag(args: &[String], flag: &str) -> Result<Option<usize>, String> {
    flag_value(args, flag)
        .map(|s| s.parse().map_err(|_| format!("bad {flag} value '{s}'")))
        .transpose()
}

fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("platforms") => Ok(cmd_platforms()),
        Some("policies") => Ok(cmd_policies()),
        Some("generate") => {
            let kind =
                GenerateKind::parse(&flag_value(args, "--kind").ok_or("generate needs --kind")?)?;
            let platform = flag_value(args, "--platform").ok_or("generate needs --platform")?;
            let seed: u64 = flag_value(args, "--seed")
                .map(|s| s.parse().map_err(|_| format!("bad seed '{s}'")))
                .transpose()?
                .unwrap_or(0);
            let file = cmd_generate(kind, &platform, seed)?;
            let json = file.to_json()?;
            match flag_value(args, "-o").or_else(|| flag_value(args, "--output")) {
                Some(path) => {
                    std::fs::write(&path, &json).map_err(|e| format!("{path}: {e}"))?;
                    Ok(format!(
                        "wrote {} applications on {} to {path}\n",
                        file.apps.len(),
                        file.platform.name
                    ))
                }
                None => Ok(json),
            }
        }
        Some("simulate") => {
            let path = args.get(1).ok_or("simulate needs a scenario file")?;
            if path.starts_with("--") {
                return Err("simulate needs a scenario file as its first argument".into());
            }
            let scenario = load(path)?;
            let policy = flag_value(args, "--policy").ok_or("simulate needs --policy")?;
            cmd_simulate(&scenario, &policy, has_flag(args, "--burst-buffer"))
        }
        Some("telemetry") => {
            let path = args.get(1).ok_or("telemetry needs a scenario file")?;
            if path.starts_with("--") {
                return Err("telemetry needs a scenario file as its first argument".into());
            }
            let scenario = load(path)?;
            let policy = flag_value(args, "--policy").ok_or("telemetry needs --policy")?;
            let load_spec = flag_value(args, "--external-load")
                .map(|s| parse_external_load(&s))
                .transpose()?;
            let (report, json) = cmd_telemetry(&scenario, &policy, load_spec)?;
            match flag_value(args, "-o").or_else(|| flag_value(args, "--output")) {
                Some(out_path) => {
                    std::fs::write(&out_path, json + "\n")
                        .map_err(|e| format!("{out_path}: {e}"))?;
                    Ok(format!("{report}\nwrote telemetry summary to {out_path}\n"))
                }
                None => Ok(report),
            }
        }
        Some("stream") => {
            let path = args.get(1).ok_or("stream needs a scenario spec file")?;
            if path.starts_with("--") {
                return Err("stream needs a scenario spec file as its first argument".into());
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let spec: ScenarioSpec = serde_json::from_str(&text).map_err(|e| e.to_string())?;
            let (report, json) = cmd_stream(&spec)?;
            match flag_value(args, "-o").or_else(|| flag_value(args, "--output")) {
                Some(out_path) => {
                    std::fs::write(&out_path, json + "\n")
                        .map_err(|e| format!("{out_path}: {e}"))?;
                    Ok(format!("{report}\nwrote stream record to {out_path}\n"))
                }
                None => Ok(report),
            }
        }
        Some("periodic") => {
            let path = args.get(1).ok_or("periodic needs a scenario file")?;
            if path.starts_with("--") {
                return Err("periodic needs a scenario file as its first argument".into());
            }
            let scenario = load(path)?;
            let objective = flag_value(args, "--objective").unwrap_or_else(|| "dilation".into());
            let epsilon: f64 = flag_value(args, "--epsilon")
                .map(|s| s.parse().map_err(|_| format!("bad epsilon '{s}'")))
                .transpose()?
                .unwrap_or(0.05);
            cmd_periodic(&scenario, &objective, epsilon)
        }
        Some("campaign") => {
            let path = positional(args, &["--threads", "--shards", "--out", "--json"])
                .ok_or("campaign needs a campaign spec file")?;
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let mut spec = CampaignSpec::from_json(&text)?;
            if let Some(n) = int_flag(args, "--threads")? {
                spec.threads = Some(n);
            }
            let (result, out) = match int_flag(args, "--shards")? {
                Some(shards) => {
                    let dir = flag_value(args, "--out").map_or_else(
                        || PathBuf::from(format!("{}.partials", spec.name)),
                        PathBuf::from,
                    );
                    let exe = std::env::current_exe()
                        .map_err(|e| format!("cannot locate own executable: {e}"))?;
                    cmd_campaign_sharded(&exe, &path, &spec, shards, &dir)?
                }
                None => cmd_campaign_result(&spec)?,
            };
            match flag_value(args, "--json") {
                Some(json_path) => {
                    let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
                    std::fs::write(&json_path, json + "\n")
                        .map_err(|e| format!("{json_path}: {e}"))?;
                    Ok(format!("{out}\nwrote campaign result to {json_path}\n"))
                }
                None => Ok(out),
            }
        }
        Some("shard") => {
            let path = positional(args, &["--index", "--of", "--out", "--threads"])
                .ok_or("shard needs a campaign spec file")?;
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            let mut spec = CampaignSpec::from_json(&text)?;
            if let Some(n) = int_flag(args, "--threads")? {
                spec.threads = Some(n);
            }
            let index = int_flag(args, "--index")?.ok_or("shard needs --index")?;
            let of = int_flag(args, "--of")?.ok_or("shard needs --of")?;
            let dir = flag_value(args, "--out").map_or_else(
                || PathBuf::from(format!("{}.partials", spec.name)),
                PathBuf::from,
            );
            cmd_shard(&spec, index, of, &dir)
        }
        Some("merge") => {
            let dir =
                positional(args, &["-o", "--output"]).ok_or("merge needs a partials directory")?;
            let (result, out) = cmd_merge(std::path::Path::new(&dir))?;
            match flag_value(args, "-o").or_else(|| flag_value(args, "--output")) {
                Some(json_path) => {
                    let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
                    std::fs::write(&json_path, json + "\n")
                        .map_err(|e| format!("{json_path}: {e}"))?;
                    Ok(format!(
                        "{out}\nwrote merged campaign result to {json_path}\n"
                    ))
                }
                None => Ok(out),
            }
        }
        Some("trace") => {
            let capacity = int_flag(args, "--capacity")?.unwrap_or(65_536);
            if capacity == 0 {
                return Err("--capacity must be at least 1".into());
            }
            let (jsonl, summary) = match flag_value(args, "--journal") {
                Some(journal) => cmd_trace_journal(std::path::Path::new(&journal), capacity)?,
                None => {
                    let path = positional(args, &["--policy", "--capacity", "-o", "--output"])
                        .ok_or("trace needs a scenario file or --journal FILE")?;
                    let scenario = load(&path)?;
                    let policy = flag_value(args, "--policy")
                        .ok_or("trace needs --policy (or --journal)")?;
                    cmd_trace_scenario(&scenario, &policy, capacity)?
                }
            };
            match flag_value(args, "-o").or_else(|| flag_value(args, "--output")) {
                Some(out_path) => {
                    std::fs::write(&out_path, &jsonl).map_err(|e| format!("{out_path}: {e}"))?;
                    Ok(format!(
                        "{summary}wrote {} trace line(s) to {out_path}\n",
                        jsonl.lines().count()
                    ))
                }
                None => {
                    // JSONL on stdout, summary on stderr: the stream
                    // stays machine-parseable when piped.
                    eprint!("{summary}");
                    Ok(jsonl)
                }
            }
        }
        Some("serve") => cmd_serve(args),
        Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command '{other}'")),
    }
}

/// `iosched serve`: the scheduler daemon (and its `--replay` verifier
/// and `--connect` client). The daemon writes all protocol output
/// itself (flushed per line); this function returns text only for the
/// replay and error paths.
fn cmd_serve(args: &[String]) -> Result<String, String> {
    // Client mode: pipe stdin to a running daemon's socket.
    if let Some(socket) = flag_value(args, "--connect") {
        iosched_serve::connect(std::path::Path::new(&socket))?;
        return Ok(String::new());
    }
    let journal = flag_value(args, "--journal").ok_or("serve needs --journal FILE")?;
    // Batch mode: replay a journal through `simulate_stream` and print
    // the `{\"final\":…}` line a live session would have produced.
    if has_flag(args, "--replay") {
        return iosched_serve::replay(std::path::Path::new(&journal)).map(|line| line + "\n");
    }
    let platform = flag_value(args, "--platform").ok_or("serve needs --platform")?;
    let policy = flag_value(args, "--policy").ok_or("serve needs --policy")?;
    let accel: f64 = flag_value(args, "--accelerate")
        .map(|s| {
            s.parse()
                .map_err(|_| format!("bad --accelerate value '{s}'"))
        })
        .transpose()?
        .unwrap_or(0.0);
    let config = iosched_sim::SimConfig {
        // The live feed (`telemetry --follow`) is a serve feature;
        // turning the series on never changes simulated results.
        telemetry: true,
        ..iosched_sim::SimConfig::default()
    };
    let spec = iosched_serve::ServeSpec {
        platform: iosched_cli::platform_by_name(&platform)?,
        policy: iosched_core::registry::PolicyFactory::parse(&policy)?,
        accel,
        config,
    };
    let opts = iosched_serve::DaemonOptions {
        journal: PathBuf::from(journal),
        socket: flag_value(args, "--socket").map(PathBuf::from),
    };
    iosched_serve::run_daemon(&spec, &opts)?;
    Ok(String::new())
}

fn load(path: &str) -> Result<ScenarioFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    ScenarioFile::from_json(&text)
}

/// Parse a `--external-load PERIOD,BUSY,FRACTION` triple (seconds,
/// seconds, fraction of B) into the §7 square wave.
fn parse_external_load(s: &str) -> Result<iosched_sim::ExternalLoad, String> {
    let parts: Vec<&str> = s.split(',').collect();
    let [period, busy, fraction] = parts.as_slice() else {
        return Err(format!(
            "bad external load '{s}' (expected PERIOD,BUSY,FRACTION, e.g. 240,90,0.7)"
        ));
    };
    let num = |v: &str| -> Result<f64, String> {
        v.trim()
            .parse::<f64>()
            .map_err(|_| format!("bad external load component '{v}'"))
    };
    let load = iosched_sim::ExternalLoad {
        period: iosched_model::Time::secs(num(period)?),
        busy: iosched_model::Time::secs(num(busy)?),
        fraction: num(fraction)?,
    };
    load.validate().map_err(|e| e.to_string())?;
    Ok(load)
}
