//! # iosched-cli
//!
//! Command-line front end for the workspace: generate scenario files, run
//! any scheduler over them in the fluid simulator, and build periodic
//! schedules — the workflow a system administrator would use to evaluate
//! the paper's heuristics on their own machine description.
//!
//! ```text
//! iosched platforms
//! iosched policies
//! iosched generate --kind congested --platform intrepid --seed 7 -o scenario.json
//! iosched generate --kind mix-b     --platform intrepid --seed 3 -o mix.json
//! iosched simulate scenario.json --policy priority-maxsyseff [--burst-buffer]
//! iosched simulate scenario.json --policy periodic:cong
//! iosched simulate scenario.json --policy all
//! iosched periodic scenario.json --objective dilation --epsilon 0.05
//! iosched campaign campaign.json [--threads N]
//! ```
//!
//! Scenario files are plain JSON (`serde`) holding the platform and the
//! application list, so they can be authored by hand or produced by any
//! external tool. Campaign files describe a whole cartesian sweep —
//! `platforms × workloads × policies × seeds` — that expands lazily and
//! streams through the parallel [`iosched_bench::ScenarioRunner`] into
//! per-cell aggregates (see the README's "Campaign files" section):
//!
//! ```json
//! {
//!   "name": "quick",
//!   "platforms": ["intrepid"],
//!   "workloads": [{"Congestion": {"seed": 0}}],
//!   "policies": ["maxsyseff", "mindilation", "fairshare"],
//!   "seeds": [0, 1, 2, 3],
//!   "config": null,
//!   "threads": null
//! }
//! ```

use iosched_bench::campaign::{
    run_campaign_observed, CampaignResult, CampaignSpec, CellSummary, ScenarioSpec,
};
use iosched_bench::report::Table;
use iosched_bench::runner::ScenarioRunner;
use iosched_bench::scenario::PolicySpec;
use iosched_bench::shard;
use iosched_core::periodic::{
    InsertionHeuristic, PeriodSearch, PeriodicAppSpec, PeriodicObjective,
};
use iosched_core::policy::OnlinePolicy;
use iosched_model::{app::validate_scenario, AppSpec, Platform};
use iosched_sim::{simulate, SimConfig};
use iosched_workload::congestion::congested_moment;
use iosched_workload::MixConfig;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A scenario file: one platform plus its applications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioFile {
    /// The machine description.
    pub platform: Platform,
    /// The §2.1 applications.
    pub apps: Vec<AppSpec>,
}

impl ScenarioFile {
    /// Validate platform, applications and processor budget.
    pub fn validate(&self) -> Result<(), String> {
        validate_scenario(&self.platform, &self.apps).map_err(|e| e.to_string())
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Parse from JSON and validate.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let file: Self = serde_json::from_str(s).map_err(|e| e.to_string())?;
        file.validate()?;
        Ok(file)
    }
}

/// Resolve a platform preset by name. (The name table lives in
/// [`iosched_bench::campaign::platform_preset`] so the CLI, campaign
/// files and experiments agree on one vocabulary.)
pub fn platform_by_name(name: &str) -> Result<Platform, String> {
    iosched_bench::campaign::platform_preset(name)
}

/// Resolve a policy by the names used throughout the reports and
/// instantiate it *for a scenario* — the registry's two-stage build.
/// `all` is handled by the caller. Online policies ignore the scenario;
/// offline `periodic:*` policies run their §3.2 schedule search over it.
/// (Name resolution lives in
/// [`iosched_core::registry::PolicyFactory`] — re-exported as
/// [`iosched_bench::scenario::PolicySpec`] — so the CLI, the batch layer
/// and the experiment runners agree on one vocabulary.)
pub fn policy_for_scenario(
    name: &str,
    scenario: &ScenarioFile,
) -> Result<Box<dyn OnlinePolicy>, String> {
    PolicySpec::parse(name)?.build(&scenario.platform, &scenario.apps)
}

/// Scenario kinds `generate` can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerateKind {
    /// A seeded congested moment (Tables 1–2 style).
    Congested,
    /// Fig. 6(a): 10 large applications at 20 % I/O.
    MixA,
    /// Fig. 6(b): 50 small + 5 large at 20 % I/O.
    MixB,
    /// Fig. 6(c): 50 small + 5 large at 35 % I/O.
    MixC,
}

impl GenerateKind {
    /// Parse a `--kind` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "congested" => Ok(Self::Congested),
            "mix-a" => Ok(Self::MixA),
            "mix-b" => Ok(Self::MixB),
            "mix-c" => Ok(Self::MixC),
            other => Err(format!(
                "unknown kind '{other}' (expected congested, mix-a, mix-b or mix-c)"
            )),
        }
    }
}

/// `iosched platforms`: list the presets.
#[must_use]
pub fn cmd_platforms() -> String {
    let mut out = String::from("platform   nodes      b (GiB/s)  B (GiB/s)  saturation\n");
    for p in [Platform::intrepid(), Platform::mira(), Platform::vesta()] {
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:<10.3} {:<10.1} {} nodes",
            p.name,
            p.procs,
            p.proc_bw.as_gib_per_sec(),
            p.total_bw.as_gib_per_sec(),
            p.saturation_procs(),
        );
    }
    out
}

/// `iosched generate`: build a scenario.
pub fn cmd_generate(kind: GenerateKind, platform: &str, seed: u64) -> Result<ScenarioFile, String> {
    let platform = platform_by_name(platform)?;
    let apps = match kind {
        GenerateKind::Congested => congested_moment(&platform, seed),
        GenerateKind::MixA => MixConfig::fig6a().generate(&platform, seed),
        GenerateKind::MixB => MixConfig::fig6b().generate(&platform, seed),
        GenerateKind::MixC => MixConfig::fig6c().generate(&platform, seed),
    };
    let file = ScenarioFile { platform, apps };
    file.validate()?;
    Ok(file)
}

/// `iosched simulate`: run one policy (or every standard one) over a
/// scenario; returns the rendered report.
pub fn cmd_simulate(
    scenario: &ScenarioFile,
    policy_name: &str,
    burst_buffer: bool,
) -> Result<String, String> {
    scenario.validate()?;
    let config = SimConfig {
        use_burst_buffer: burst_buffer,
        ..SimConfig::default()
    };
    let names: Vec<String> = if policy_name == "all" {
        PolicySpec::full_roster()
            .iter()
            .map(PolicySpec::name)
            .collect()
    } else {
        vec![policy_name.to_string()]
    };
    let mut out = format!(
        "{} applications on {} (B = {:.1} GiB/s{})\n\n",
        scenario.apps.len(),
        scenario.platform.name,
        scenario.platform.total_bw.as_gib_per_sec(),
        if burst_buffer {
            ", burst buffer on"
        } else {
            ""
        },
    );
    let _ = writeln!(
        out,
        "{:<30} {:>14} {:>10} {:>12}",
        "policy", "SysEfficiency", "Dilation", "makespan"
    );
    for name in names {
        let mut policy = policy_for_scenario(&name, scenario)?;
        let result = simulate(&scenario.platform, &scenario.apps, policy.as_mut(), &config)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "{:<30} {:>13.2}% {:>10.2} {:>11.0}s",
            name,
            result.report.sys_efficiency * 100.0,
            result.report.dilation,
            result.report.makespan().as_secs(),
        );
    }
    let mut first = policy_for_scenario("roundrobin", scenario)?;
    let upper = simulate(&scenario.platform, &scenario.apps, first.as_mut(), &config)
        .map_err(|e| e.to_string())?
        .report
        .upper_limit;
    let _ = writeln!(out, "{:<30} {:>13.2}%", "upper limit", upper * 100.0);
    Ok(out)
}

/// One-line description of a roster member for `iosched policies`.
fn describe_policy(spec: &PolicySpec) -> String {
    use iosched_core::heuristics::BasePolicy;
    match spec {
        PolicySpec::Kind(kind) => {
            let base = match kind.base {
                BasePolicy::RoundRobin => "FCFS + fairness heuristic (§3.1)",
                BasePolicy::MinDilation => "Dilation-oriented heuristic (§3.1)",
                BasePolicy::MaxSysEff => "SysEfficiency-oriented heuristic (§3.1)",
                BasePolicy::MinMax(_) => "threshold trade-off heuristic (§3.1)",
            };
            if kind.priority {
                format!("{base}, disk-locality Priority wrapper; Fig. 6, Tables 1-2")
            } else {
                format!("{base}; Fig. 6, Tables 1-2")
            }
        }
        PolicySpec::FairShare => {
            "uncoordinated max-min sharing (native-scheduler baseline; Figs. 8-13)".into()
        }
        PolicySpec::Fcfs => "strict first-come-first-served baseline (§1)".into(),
        PolicySpec::Periodic(p) => {
            let (heuristic, used_by) = match p.heuristic {
                iosched_core::periodic::InsertionHeuristic::Congestion => {
                    ("Insert-In-Schedule-Cong", "Fig. 4, eps ablation")
                }
                iosched_core::periodic::InsertionHeuristic::Throughput => {
                    ("Insert-In-Schedule-Throu", "§7 outlook sweeps")
                }
            };
            format!("periodic schedule, {heuristic} + (1+eps) period search (§3.2); {used_by}")
        }
        PolicySpec::Control(c) => format!(
            "adaptive PI feedback loop on the engine's congestion telemetry \
             (setpoint {} delivered utilization); storm campaigns",
            c.setpoint
        ),
    }
}

/// `iosched policies`: the complete registry roster — every serde name
/// the CLI, scenario files and campaign JSON accept, online and offline.
#[must_use]
pub fn cmd_policies() -> String {
    let mut table = Table::new(["policy", "stage", "description"]);
    for spec in PolicySpec::complete_roster() {
        table.row([
            spec.serde_name(),
            if spec.is_offline() {
                "offline".into()
            } else {
                "online".into()
            },
            describe_policy(&spec),
        ]);
    }
    let mut out = table.render();
    out.push_str(
        "\nGrammar: minmax-<gamma in [0,1]>, priority-<heuristic>,\n\
         periodic:<cong|throu>[:<dilation|syseff>][:eps=E][:tmax=F]\n\
         (offline policies build their schedule per scenario: the workload\n\
         must be periodic, i.e. w(k,i) = w(k) for every instance), and\n\
         control:pi[:kp=K][:ki=I][:set=S][:win=W] — the closed feedback\n\
         loop on the engine's congestion telemetry (set in (0,1], win > 0).\n",
    );
    out
}

/// `iosched telemetry`: run one policy with the telemetry series
/// enabled, render the per-run congestion record, and return it together
/// with its JSON export.
pub fn cmd_telemetry(
    scenario: &ScenarioFile,
    policy_name: &str,
    external_load: Option<iosched_sim::ExternalLoad>,
) -> Result<(String, String), String> {
    scenario.validate()?;
    let config = SimConfig {
        telemetry: true,
        external_load,
        ..SimConfig::default()
    };
    let mut policy = policy_for_scenario(policy_name, scenario)?;
    let result = simulate(&scenario.platform, &scenario.apps, policy.as_mut(), &config)
        .map_err(|e| e.to_string())?;
    let telemetry = result
        .telemetry
        .ok_or("engine produced no telemetry summary")?;
    let mut out = format!(
        "{} on {} ({} events over {:.0}s simulated)\n\n",
        policy_name,
        scenario.platform.name,
        result.events,
        result.end_time.as_secs(),
    );
    let _ = writeln!(
        out,
        "SysEfficiency {:.2}%   Dilation {:.2}\n",
        result.report.sys_efficiency * 100.0,
        result.report.dilation,
    );
    let _ = writeln!(
        out,
        "telemetry ({} intervals over {:.0}s of activity):",
        telemetry.samples, telemetry.busy_secs
    );
    let _ = writeln!(
        out,
        "  utilization  mean {:.3} (time-weighted {:.3})  p95 {:.3}  p99 {:.3}  max {:.3}",
        telemetry.utilization.mean,
        telemetry.mean_utilization,
        telemetry.utilization.p95,
        telemetry.utilization.p99,
        telemetry.utilization.max,
    );
    let _ = writeln!(
        out,
        "  contention   mean {:.3} (time-weighted {:.3})  p95 {:.3}  p99 {:.3}  max {:.3}",
        telemetry.contention.mean,
        telemetry.mean_contention,
        telemetry.contention.p95,
        telemetry.contention.p99,
        telemetry.contention.max,
    );
    let _ = writeln!(
        out,
        "  peak backlog {:.1} GiB   peak pending {}",
        telemetry.peak_backlog_gib, telemetry.peak_pending,
    );
    let json = serde_json::to_string_pretty(&telemetry).map_err(|e| e.to_string())?;
    Ok((out, json))
}

/// `iosched stream`: run one open-system scenario (a
/// [`iosched_workload::WorkloadSpec::Stream`] workload, or any workload
/// under a `warmup`/`horizon` window) and render + JSON-export the
/// windowed steady-state record. Online and `control:*` policies drive
/// the lazy stream directly (peak memory tracks concurrency); offline
/// `periodic:*` policies materialize the roster first — they need the
/// whole stream to plan.
pub fn cmd_stream(spec: &ScenarioSpec) -> Result<(String, String), String> {
    let platform = spec.platform.build()?;
    let config = spec.config.clone().unwrap_or_default();
    if !spec.workload.is_open() && config.horizon.is_none() && config.warmup.get() <= 0.0 {
        return Err(
            "stream needs an open workload (a \"Stream\" spec) or a warmup/horizon \
             window in the config; use `iosched simulate` for plain closed rosters"
                .into(),
        );
    }
    let result = if spec.policy.is_offline() || !spec.workload.is_open() {
        // Offline policies plan over the whole roster; closed workloads
        // come materialized anyway.
        let apps = spec.workload.materialize(&platform)?;
        let mut policy = spec.policy.build(&platform, &apps)?;
        if spec.workload.is_open() {
            iosched_sim::simulate_open(&platform, &apps, policy.as_mut(), &config)
        } else {
            simulate(&platform, &apps, policy.as_mut(), &config)
        }
    } else {
        let mut policy = spec.policy.build(&platform, &[])?;
        iosched_sim::simulate_stream(
            &platform,
            spec.workload.app_source(&platform)?,
            policy.as_mut(),
            &config,
        )
    }
    .map_err(|e| e.to_string())?;
    let steady = result
        .steady
        .clone()
        .ok_or("engine produced no steady-state summary")?;
    let mut out = format!(
        "{} under {} on {} ({} events over {:.0}s simulated)\n\n",
        spec.workload.label(),
        spec.policy.name(),
        platform.name,
        result.events,
        result.end_time.as_secs(),
    );
    let _ = writeln!(
        out,
        "applications: {} admitted, {} completed in the window, {} left in the system",
        steady.admitted, steady.completed, steady.left_in_system,
    );
    let _ = writeln!(
        out,
        "steady state over [{:.0}s, {:.0}s] ({:.0}s observed):",
        steady.warmup_secs,
        result.end_time.as_secs(),
        steady.window_secs,
    );
    let _ = writeln!(
        out,
        "  stretch      mean {:.2}  max {:.2}",
        steady.mean_stretch, steady.max_stretch,
    );
    let _ = writeln!(
        out,
        "  I/O queue    mean {:.2} applications",
        steady.mean_queue,
    );
    let _ = writeln!(
        out,
        "  utilization  mean {:.3} of the PFS",
        steady.mean_utilization,
    );
    let _ = writeln!(
        out,
        "  throughput   {:.1} completions/hour",
        steady.throughput_per_hour,
    );
    if let Some(telemetry) = &result.telemetry {
        let _ = writeln!(
            out,
            "telemetry: contention mean {:.2} p99 {:.2}, peak backlog {:.1} GiB, peak pending {}",
            telemetry.mean_contention,
            telemetry.contention.p99,
            telemetry.peak_backlog_gib,
            telemetry.peak_pending,
        );
    }
    let json = serde_json::to_string_pretty(&StreamRecord {
        workload: spec.workload.label(),
        policy: spec.policy.name(),
        events: result.events,
        end_secs: result.end_time.as_secs(),
        steady,
        telemetry: result.telemetry,
    })
    .map_err(|e| e.to_string())?;
    Ok((out, json))
}

/// JSON export of one `iosched stream` run: the windowed record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Workload label (seed-free).
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Scheduling events processed.
    pub events: usize,
    /// Final simulated second.
    pub end_secs: f64,
    /// The warmup-trimmed steady-state window.
    pub steady: iosched_sim::SteadySummary,
    /// Per-run congestion record (present iff the config set
    /// `telemetry`).
    pub telemetry: Option<iosched_sim::TelemetrySummary>,
}

/// `iosched periodic`: run the §3.2 period search over a scenario of
/// periodic applications.
pub fn cmd_periodic(
    scenario: &ScenarioFile,
    objective: &str,
    epsilon: f64,
) -> Result<String, String> {
    scenario.validate()?;
    let (objective, heuristic) = match objective {
        "dilation" => (PeriodicObjective::Dilation, InsertionHeuristic::Congestion),
        "syseff" | "sysefficiency" => (
            PeriodicObjective::SysEfficiency,
            InsertionHeuristic::Throughput,
        ),
        other => return Err(format!("unknown objective '{other}' (dilation | syseff)")),
    };
    if epsilon <= 0.0 {
        return Err("epsilon must be positive".into());
    }
    let apps: Result<Vec<PeriodicAppSpec>, _> = scenario
        .apps
        .iter()
        .map(PeriodicAppSpec::from_app)
        .collect();
    let apps = apps.map_err(|e| e.to_string())?;
    let search = PeriodSearch::new(objective).with_epsilon(epsilon);
    let result = search
        .run(&scenario.platform, &apps, heuristic)
        .ok_or("empty application set")?;
    result
        .schedule
        .validate(&scenario.platform)
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "best period T = {:.2}s  ({} candidates, {})\n\
         SysEfficiency {:.2}%   Dilation {}\n\nper application:\n",
        result.schedule.period.as_secs(),
        result.candidates_tried,
        heuristic.name(),
        result.report.sys_efficiency * 100.0,
        if result.report.dilation.is_finite() {
            format!("{:.2}", result.report.dilation)
        } else {
            "inf".into()
        },
    );
    for o in &result.report.per_app {
        let _ = writeln!(
            out,
            "  {:<8} n_per = {:<4} rho_tilde = {:.3}  dilation = {:.2}",
            o.app.to_string(),
            o.n_per,
            o.rho_tilde,
            o.dilation(),
        );
    }
    Ok(out)
}

/// One-line per-cell progress row, streamed to stderr as cells finish
/// (stdout keeps the stable aligned table for scripts and tests).
fn cell_progress_line(done: usize, total: usize, cell: &CellSummary) -> String {
    format!(
        "[cell {done}/{total}] {}/{}/{}: eff {:.2}%  dil {:.2}  ({} runs)",
        cell.platform,
        cell.workload,
        cell.policy,
        cell.sys_efficiency.mean * 100.0,
        if cell.dilation.mean.is_finite() {
            cell.dilation.mean
        } else {
            f64::INFINITY
        },
        cell.runs,
    )
}

/// `iosched campaign`: run a declarative cartesian sweep
/// (`platforms × workloads × policies × seeds`) from a
/// [`CampaignSpec`] file through the streaming campaign runner and
/// render the per-cell aggregates.
pub fn cmd_campaign(spec: &CampaignSpec) -> Result<String, String> {
    cmd_campaign_result(spec).map(|(_, out)| out)
}

/// [`cmd_campaign`], also returning the structured [`CampaignResult`]
/// (the `--json` export — full f64 precision, the artifact sharded and
/// single-process runs are diffed on). Per-cell rows stream to stderr
/// the moment each cell's last seed block folds in, so long sweeps show
/// progress instead of buffering the whole result silently.
pub fn cmd_campaign_result(spec: &CampaignSpec) -> Result<(CampaignResult, String), String> {
    spec.validate()?;
    let runner = match spec.threads {
        Some(n) => ScenarioRunner::with_threads(n),
        None => ScenarioRunner::new(),
    };
    let total_cells = spec.cell_count();
    let mut done = 0usize;
    let result = run_campaign_observed(spec, &runner, |cell| {
        done += 1;
        progress_line(&cell_progress_line(done, total_cells, cell));
    })?;
    let out = render_campaign(spec, &result, &format!("{} threads", runner.threads()));
    Ok((result, out))
}

/// Emit one progress row, explicitly flushed. `eprintln!` happens to be
/// unbuffered on today's std, but progress visibility under redirection
/// (campaign logs tailed from a file, CI pipes) is a contract here, not
/// an accident of the standard library's buffering policy.
fn progress_line(line: &str) {
    use std::io::Write as _;
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}").and_then(|()| err.flush());
}

/// Render a campaign result as the standard header + aligned tables.
/// `context` fills the trailing parenthetical of the header line
/// (`"8 threads"`, `"4 shards"`, `"merged from 4 partial file(s)"`).
fn render_campaign(spec: &CampaignSpec, result: &CampaignResult, context: &str) -> String {
    let mut out = format!(
        "campaign '{}': {} platform(s) x {} workload(s) x {} policies x {} seed(s) \
         = {} runs in {} cells ({context})\n\n",
        spec.name,
        spec.platforms.len(),
        spec.workloads.len(),
        spec.policies.len(),
        spec.runs_per_cell(),
        result.total_runs,
        result.cells.len(),
    );
    let streamed = spec
        .workloads
        .iter()
        .any(iosched_workload::WorkloadSpec::is_open);
    let mut table = Table::new([
        "platform", "workload", "policy", "runs", "SysEff%", "±std", "Dilation", "makespan",
        "upper%",
    ]);
    for cell in &result.cells {
        table.row([
            cell.platform.clone(),
            cell.workload.clone(),
            cell.policy.clone(),
            cell.runs.to_string(),
            format!("{:.2}", cell.sys_efficiency.mean * 100.0),
            format!("{:.2}", cell.sys_efficiency.std * 100.0),
            if cell.dilation.mean.is_finite() {
                format!("{:.2}", cell.dilation.mean)
            } else {
                "inf".into()
            },
            format!("{:.0}s", cell.makespan_secs.mean),
            format!("{:.2}", cell.upper_limit.mean * 100.0),
        ]);
    }
    out.push_str(&table.render());
    // Saturation view for open-system sweeps: the steady-state queue
    // and stretch per cell (the per-λ curves), plus each policy's
    // dilation pooled across the whole workload axis (cell summaries
    // merged via `Summary::merge`).
    if streamed {
        let mut steady = Table::new(["workload", "policy", "queue", "stretch", "util"]);
        for cell in &result.cells {
            let fmt = |s: &Option<iosched_model::stats::Summary>| {
                s.as_ref().map_or("-".into(), |s| format!("{:.2}", s.mean))
            };
            steady.row([
                cell.workload.clone(),
                cell.policy.clone(),
                fmt(&cell.queue),
                fmt(&cell.stretch),
                fmt(&cell.utilization),
            ]);
        }
        out.push_str("\nsteady state (warmup-trimmed means per cell):\n");
        out.push_str(&steady.render());
        out.push_str("\npooled dilation across the workload axis:\n");
        for policy in &spec.policies {
            if let Some(pooled) = result.pooled_dilation(&policy.serde_name()) {
                let _ = writeln!(
                    out,
                    "  {:<24} mean {:.2}  p95 {:.2}  max {:.2}  ({} runs)",
                    policy.serde_name(),
                    pooled.mean,
                    pooled.p95,
                    pooled.max,
                    pooled.n,
                );
            }
        }
    }
    out
}

/// `iosched shard`: run one shard of a campaign, appending finished
/// seed blocks to the partial directory (resuming past work there) and
/// streaming per-block progress to stderr. This is the worker half of
/// `iosched campaign --shards N`, but it is a first-class command: the
/// shards of one campaign can run on different machines, as long as
/// their partial files land in one directory before `iosched merge`.
pub fn cmd_shard(
    spec: &CampaignSpec,
    index: usize,
    of: usize,
    dir: &std::path::Path,
) -> Result<String, String> {
    let runner = match spec.threads {
        Some(n) => ScenarioRunner::with_threads(n),
        None => ScenarioRunner::new(),
    };
    let report = shard::run_shard(spec, index, of, dir, &runner, |block, done, todo| {
        progress_line(&format!(
            "[shard {index}/{of}] block {block} done ({done}/{todo})"
        ));
    })?;
    Ok(format!(
        "shard {}/{} pass {}: {} block(s) assigned, {} skipped (already finished), \
         {} computed -> {}\n",
        report.index,
        report.of,
        report.pass,
        report.assigned,
        report.skipped,
        report.computed,
        report.path.display(),
    ))
}

/// `iosched campaign --shards N`: the multi-process driver. Launches
/// `shards` copies of this executable (`iosched shard <spec> --index i
/// --of N --out DIR`) as independent OS processes — no IPC beyond the
/// partial files — waits for them, then merges the partials into a
/// result bit-identical to the single-process run. Because every shard
/// resumes from the directory, re-running the same command after a
/// crash (or SIGKILL) recomputes only unfinished blocks.
pub fn cmd_campaign_sharded(
    exe: &std::path::Path,
    spec_path: &str,
    spec: &CampaignSpec,
    shards: usize,
    dir: &std::path::Path,
) -> Result<(CampaignResult, String), String> {
    if shards == 0 {
        return Err("shard count must be at least 1".into());
    }
    spec.validate()?;
    let mut children = Vec::with_capacity(shards);
    for index in 0..shards {
        let mut cmd = std::process::Command::new(exe);
        cmd.arg("shard")
            .arg(spec_path)
            .arg("--index")
            .arg(index.to_string())
            .arg("--of")
            .arg(shards.to_string())
            .arg("--out")
            .arg(dir);
        if let Some(threads) = spec.threads {
            cmd.arg("--threads").arg(threads.to_string());
        }
        // Children inherit stderr (their per-block progress streams
        // through); their stdout summaries would garble ours.
        cmd.stdout(std::process::Stdio::null());
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawning shard {index}: {e}"))?;
        children.push((index, child));
    }
    let mut failures = Vec::new();
    for (index, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("shard {index} exited with {status}")),
            Err(e) => failures.push(format!("waiting for shard {index}: {e}")),
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} (see stderr above; rerun the same command to resume from {})",
            failures.join("; "),
            dir.display()
        ));
    }
    let merged = shard::merge_dir(dir)?;
    if shard::spec_hash(spec) != shard::spec_hash(&merged.spec) {
        return Err(format!(
            "{}: merged partials belong to a different campaign",
            dir.display()
        ));
    }
    let out = render_campaign(spec, &merged.result, &format!("{shards} shards"));
    Ok((merged.result, out))
}

/// `iosched merge`: reduce a directory of shard partials into the
/// campaign result (bit-identical to the single-process run — see
/// `iosched_bench::shard`) and render it with per-shard provenance.
pub fn cmd_merge(dir: &std::path::Path) -> Result<(CampaignResult, String), String> {
    let merged = shard::merge_dir(dir)?;
    let mut out = render_campaign(
        &merged.spec,
        &merged.result,
        &format!("merged from {} partial file(s)", merged.files),
    );
    if !merged.footers.is_empty() {
        out.push_str("\nshard provenance (clean-exit footers):\n");
        for f in &merged.footers {
            let _ = writeln!(
                out,
                "  shard {} pass {}: {} block(s), wall {:.1}s{}{}",
                f.index,
                f.pass,
                f.blocks_done,
                f.wall_ms as f64 / 1000.0,
                f.cpu_ms.map_or_else(String::new, |ms| format!(
                    ", cpu {:.1}s",
                    ms as f64 / 1000.0
                )),
                f.peak_rss_kib.map_or_else(String::new, |kib| format!(
                    ", peak rss {:.1} MiB",
                    kib as f64 / 1024.0
                )),
            );
        }
    }
    if let Some(bt) = &merged.block_time_ns {
        let ms = |ns: u64| ns as f64 / 1e6;
        let _ = writeln!(
            out,
            "  block time over {} block(s): mean {:.1} ms, p50 {:.1} ms, \
             p99 {:.1} ms, max {:.1} ms",
            bt.count,
            bt.mean() / 1e6,
            ms(bt.quantile(0.5)),
            ms(bt.quantile(0.99)),
            ms(bt.max),
        );
    }
    Ok((merged.result, out))
}

/// `iosched trace`: run a simulation with a bounded decision trace
/// attached and export it as JSONL — one structured scheduling decision
/// (admission, grant set, capacity-screen fallback, retirement, policy
/// wakeup, journal flush) per line, oldest first.
///
/// Two sources share the machinery: a scenario file plus a policy name
/// (the `simulate` shape), or a serve journal (the arrivals of a live —
/// possibly drained-and-resumed — daemon session, replayed through
/// `simulate_stream` exactly like `iosched serve --replay`). The trace
/// is observation-only: the outcome with it attached is bit-identical
/// to one without, a contract pinned by the workspace obs-identity
/// tests.
///
/// Returns `(jsonl, summary)`. Every line is re-parsed and re-serialized
/// before being returned — the export is self-verifying.
pub fn cmd_trace_scenario(
    scenario: &ScenarioFile,
    policy_name: &str,
    capacity: usize,
) -> Result<(String, String), String> {
    scenario.validate()?;
    let mut policy = policy_for_scenario(policy_name, scenario)?;
    let config = SimConfig::default();
    let mut sim =
        iosched_sim::Simulation::new(&scenario.platform, &scenario.apps, policy.as_mut(), &config)
            .map_err(|e| e.to_string())?;
    sim.enable_decision_trace(capacity);
    let outcome = sim.run_to_completion().map_err(|e| e.to_string())?;
    render_trace(
        &outcome,
        &format!(
            "{} applications on {} under {policy_name}",
            scenario.apps.len(),
            scenario.platform.name
        ),
    )
}

/// `iosched trace --journal`: trace the replay of a serve journal (see
/// [`cmd_trace_scenario`] for the export contract).
pub fn cmd_trace_journal(
    journal: &std::path::Path,
    capacity: usize,
) -> Result<(String, String), String> {
    let contents = iosched_serve::Journal::load(journal)?;
    contents.spec.validate()?;
    if contents.arrivals.is_empty() {
        return Err(format!(
            "journal {} holds no arrivals; nothing to trace",
            journal.display()
        ));
    }
    let arrivals = contents.arrivals.len();
    let mut policy = contents.spec.policy.build_online(&contents.spec.platform)?;
    let mut sim = iosched_sim::Simulation::from_stream(
        &contents.spec.platform,
        contents.arrivals.into_iter(),
        policy.as_mut(),
        &contents.spec.config,
    )
    .map_err(|e| e.to_string())?;
    sim.enable_decision_trace(capacity);
    let outcome = sim.run_to_completion().map_err(|e| e.to_string())?;
    render_trace(
        &outcome,
        &format!("journal {} ({arrivals} arrivals)", journal.display()),
    )
}

/// Export a finished run's decision trace, re-parsing every emitted
/// line (parse + re-serialize must reproduce the line byte-for-byte —
/// the lossless float encoding makes that a meaningful check).
fn render_trace(outcome: &iosched_sim::SimOutcome, what: &str) -> Result<(String, String), String> {
    let trace = outcome
        .decision_trace
        .as_ref()
        .ok_or("engine returned no decision trace")?;
    let jsonl = trace.to_jsonl();
    for line in jsonl.lines() {
        let record = iosched_sim::DecisionTrace::parse_line(line)?;
        let back = serde_json::to_string(&record).map_err(|e| e.to_string())?;
        if back != line {
            return Err(format!(
                "trace line failed the roundtrip check:\n  emitted: {line}\n  reparsed: {back}"
            ));
        }
    }
    let summary = format!(
        "traced {what}: {} engine events, kept {} of {} trace records ({} dropped by the ring)\n",
        outcome.events,
        trace.len(),
        trace.total(),
        trace.dropped(),
    );
    Ok((jsonl, summary))
}

/// The usage string printed on `--help` or argument errors.
pub const USAGE: &str = "\
iosched — global HPC I/O scheduling (IPDPS'15 reproduction)

USAGE:
  iosched platforms
  iosched policies
  iosched generate --kind <congested|mix-a|mix-b|mix-c>
                   --platform <intrepid|mira|vesta> [--seed N] [-o FILE]
  iosched simulate <scenario.json> --policy <name|all> [--burst-buffer]
  iosched telemetry <scenario.json> --policy <name>
                    [--external-load PERIOD,BUSY,FRACTION] [-o FILE]
  iosched stream <stream-scenario.json> [-o FILE]
  iosched periodic <scenario.json> [--objective <dilation|syseff>] [--epsilon E]
  iosched campaign <campaign.json> [--threads N] [--json FILE]
                   [--shards N [--out DIR]]
  iosched shard <campaign.json> --index I --of N [--out DIR] [--threads N]
  iosched merge <partials-dir> [-o FILE]
  iosched serve --platform <name> --policy <name> --journal FILE
                [--socket PATH] [--accelerate N]
  iosched serve --replay --journal FILE
  iosched serve --connect SOCKET
  iosched trace <scenario.json> --policy <name> [--capacity N] [-o FILE]
  iosched trace --journal FILE [--capacity N] [-o FILE]

CAMPAIGN FILES (see README 'Campaign files' for the full format):
  {\"name\": \"quick\", \"platforms\": [\"intrepid\"],
   \"workloads\": [{\"Congestion\": {\"seed\": 0}}],
   \"policies\": [\"maxsyseff\", \"fairshare\", \"periodic:cong\"],
   \"seeds\": [0, 1, 2], \"config\": null, \"threads\": null}
  The platforms x workloads x policies x seeds product expands lazily,
  runs in parallel, and streams into deterministic per-cell aggregates.
  examples/campaign_fig6.json reproduces the paper's Fig. 6 sweep;
  examples/campaign_fig4.json replays the Fig. 4 periodic schedule.

SHARDED CAMPAIGNS (see README 'Sharded campaigns'):
  --shards N launches N OS processes, each appending finished seed
  blocks to DIR (default <name>.partials) as mergeable JSONL partials,
  then merges them — bit-identical to the single-process run, and
  resumable: rerunning after a crash/SIGKILL recomputes only the
  unfinished blocks. `iosched shard` runs one worker by hand (the
  shards of one campaign may run on different machines); `iosched
  merge` reduces any partial directory. --json exports the result at
  full f64 precision for byte-exact diffs.

POLICIES (`iosched policies` lists the whole roster):
  online:  roundrobin, mindilation, maxsyseff, minmax-<gamma>, fairshare,
           fcfs, and priority-<name> variants (e.g. priority-maxsyseff);
  offline: periodic:<cong|throu>[:<dilation|syseff>][:eps=E][:tmax=F] —
           a §3.2 periodic schedule searched per scenario and replayed
           as a timetable;
  control: control:pi[:kp=K][:ki=I][:set=S][:win=W] — adaptive PI
           feedback loop on the engine's congestion telemetry
           (examples/campaign_control.json sweeps it under storms).

TELEMETRY:
  `iosched telemetry` runs one policy with the per-event congestion
  series enabled and prints/exports the per-run record (utilization and
  contention means + p95/p99 tails, peak backlog, peak pending).
  --external-load 240,90,0.7 squeezes 70% of the PFS away for the first
  90s of every 240s cycle (the storm used by campaign_control.json).

SCHEDULER AS A SERVICE (see README 'Scheduler as a service'):
  `iosched serve` runs the engine as a long-lived daemon speaking a
  line-delimited JSON protocol on stdin and/or a Unix socket: submit,
  status, telemetry [follow], checkpoint, drain, shutdown. Every
  accepted arrival is journaled (flushed, write-ahead) before it is
  acknowledged; `drain` checkpoints and exits, and re-running with the
  same --journal resumes bit-identically to a run that was never
  interrupted. --accelerate N maps N virtual seconds onto each wall
  second (0 = frozen clock: fully deterministic, engine runs at
  shutdown). `--replay` re-simulates a journal and prints the same
  {\"final\":…} line the live session printed; `--connect` pipes stdin
  to a daemon's socket (client mode).

DECISION TRACES (see README 'Observability'):
  `iosched trace` re-runs a scenario (or replays a serve journal) with
  the engine's bounded decision trace attached and streams it as JSONL
  on stdout (or to -o FILE): one structured record per scheduling
  decision — admission, grant set, capacity-screen fallback,
  retirement, policy wakeup, journal flush — each tagged with a global
  sequence number. The ring keeps the last N records (--capacity,
  default 65536; older records are counted, then dropped). The trace
  is observation-only: outcomes are bit-identical with it on or off.

OPEN-SYSTEM STREAMS:
  `iosched stream` runs one scenario-spec file whose workload is a
  dynamic arrival stream (see README 'Open-system streams'):
  {\"label\": \"demo\", \"platform\": \"intrepid\",
   \"workload\": {\"Stream\": {\"arrivals\": {\"Poisson\": {\"rate\": 0.001}},
                            \"template\": {\"Congestion\": {\"seed\": 0}},
                            \"stop\": {\"Apps\": 500}, \"seed\": 0}},
   \"policy\": \"fairshare\", \"config\": {\"warmup\": 2000.0}}
  Online/control policies drive the stream lazily (peak memory tracks
  concurrency, not stream length); the warmup-trimmed steady-state
  record (stretch, queue, utilization, throughput) prints and exports
  as JSON with -o. examples/campaign_stream.json sweeps arrival rates
  x policies into per-cell saturation curves via `iosched campaign`.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ScenarioFile {
        cmd_generate(GenerateKind::Congested, "vesta", 3).unwrap()
    }

    #[test]
    fn platform_lookup() {
        assert!(platform_by_name("intrepid").is_ok());
        assert!(platform_by_name("mira").is_ok());
        assert!(platform_by_name("vesta").is_ok());
        assert!(platform_by_name("summit").is_err());
    }

    #[test]
    fn policy_lookup_covers_the_roster() {
        let s = scenario();
        for name in [
            "roundrobin",
            "mindilation",
            "maxsyseff",
            "minmax-0.5",
            "priority-minmax-0.25",
            "priority-maxsyseff",
            "fairshare",
            "fcfs",
        ] {
            let p = policy_for_scenario(name, &s).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!p.name().is_empty());
        }
        // The offline branch builds a schedule for the scenario, so give
        // it one that both insertion heuristics can pack fully.
        let platform = platform_by_name("vesta").unwrap();
        let mild = ScenarioFile {
            apps: vec![
                iosched_model::AppSpec::periodic(
                    0,
                    iosched_model::Time::ZERO,
                    256,
                    iosched_model::Time::secs(60.0),
                    iosched_model::Bytes::gib(100.0),
                    3,
                ),
                iosched_model::AppSpec::periodic(
                    1,
                    iosched_model::Time::ZERO,
                    512,
                    iosched_model::Time::secs(45.0),
                    iosched_model::Bytes::gib(150.0),
                    3,
                ),
            ],
            platform,
        };
        for name in ["periodic:cong", "periodic:throu"] {
            let p = policy_for_scenario(name, &mild).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p.name(), name);
        }
        assert!(policy_for_scenario("lottery", &s).is_err());
        assert!(policy_for_scenario("minmax-1.5", &s).is_err());
        assert!(policy_for_scenario("priority-fairshare", &s).is_err());
        // A starving schedule surfaces as a labeled error, not a hang:
        // two pure-I/O hogs each need the whole PFS for the entire
        // single candidate period (tmax = 1), so the second one cannot
        // be placed at any bandwidth-ladder rung.
        let starving = ScenarioFile {
            platform: iosched_model::Platform::new(
                "t",
                1_000,
                iosched_model::Bw::gib_per_sec(0.01),
                iosched_model::Bw::gib_per_sec(0.5),
            ),
            apps: vec![
                iosched_model::AppSpec::periodic(
                    0,
                    iosched_model::Time::ZERO,
                    50,
                    iosched_model::Time::secs(1_000.0),
                    iosched_model::Bytes::gib(0.1),
                    1,
                ),
                iosched_model::AppSpec::periodic(
                    1,
                    iosched_model::Time::ZERO,
                    50,
                    iosched_model::Time::secs(0.0),
                    iosched_model::Bytes::gib(500.0),
                    1,
                ),
                iosched_model::AppSpec::periodic(
                    2,
                    iosched_model::Time::ZERO,
                    50,
                    iosched_model::Time::secs(0.0),
                    iosched_model::Bytes::gib(500.0),
                    1,
                ),
            ],
        };
        let Err(err) = policy_for_scenario("periodic:throu:tmax=1", &starving) else {
            panic!("the second hog cannot be scheduled");
        };
        assert!(err.contains("periodic:throu"), "{err}");
        assert!(err.contains("starves"), "{err}");
    }

    #[test]
    fn policies_listing_spans_online_offline_and_control() {
        let out = cmd_policies();
        for needle in [
            "roundrobin",
            "priority-minmax-0.50",
            "fairshare",
            "fcfs",
            "periodic:cong",
            "periodic:throu",
            "control:pi",
            "feedback loop",
            "offline",
            "online",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn telemetry_command_reports_and_exports_the_congestion_record() {
        let s = scenario();
        let storm = iosched_sim::ExternalLoad {
            period: iosched_model::Time::secs(240.0),
            busy: iosched_model::Time::secs(90.0),
            fraction: 0.7,
        };
        let (report, json) = cmd_telemetry(&s, "control:pi", Some(storm)).unwrap();
        for needle in [
            "utilization",
            "contention",
            "p95",
            "peak backlog",
            "control:pi",
        ] {
            assert!(report.contains(needle), "missing {needle} in:\n{report}");
        }
        // The JSON export is a deserializable TelemetrySummary.
        let parsed: iosched_sim::TelemetrySummary = serde_json::from_str(&json).unwrap();
        assert!(parsed.samples > 0);
        assert!(parsed.mean_contention > 0.0, "congested moments contend");
        // Unknown policies and invalid scenarios error cleanly.
        assert!(cmd_telemetry(&s, "lottery", None).is_err());
    }

    fn stream_spec_json(policy: &str) -> String {
        format!(
            r#"{{
                "label": "unit-stream",
                "platform": "intrepid",
                "workload": {{"Stream": {{
                    "arrivals": {{"Poisson": {{"rate": 0.001}}}},
                    "template": {{"Congestion": {{"seed": 0}}}},
                    "stop": {{"Apps": 80}},
                    "seed": 1
                }}}},
                "policy": "{policy}",
                "config": {{"warmup": 2000.0, "telemetry": true}}
            }}"#
        )
    }

    #[test]
    fn stream_command_reports_and_exports_the_windowed_record() {
        let spec: iosched_bench::campaign::ScenarioSpec =
            serde_json::from_str(&stream_spec_json("fairshare")).unwrap();
        let (report, json) = cmd_stream(&spec).unwrap();
        for needle in [
            "stream(poisson@0.001/s->congestionx80)",
            "fairshare",
            "80 admitted",
            "steady state",
            "stretch",
            "I/O queue",
            "throughput",
            "telemetry",
        ] {
            assert!(report.contains(needle), "missing {needle} in:\n{report}");
        }
        // The JSON export is a deserializable StreamRecord.
        let record: StreamRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(record.policy, "fairshare");
        assert_eq!(record.steady.admitted, 80);
        assert!(record.steady.mean_stretch >= 1.0);
        assert!(record.telemetry.is_some());
    }

    #[test]
    fn stream_command_materializes_for_offline_policies() {
        // periodic:* needs the whole roster to plan; the stretched-tmax
        // form packs the 80-app stream roster.
        let spec: iosched_bench::campaign::ScenarioSpec =
            serde_json::from_str(&stream_spec_json("periodic:cong:tmax=32")).unwrap();
        let (report, _) = cmd_stream(&spec).unwrap();
        assert!(report.contains("periodic:cong:tmax=32"), "{report}");
        assert!(report.contains("steady state"));
    }

    #[test]
    fn stream_command_rejects_unwindowed_closed_scenarios() {
        let closed = r#"{
            "label": "closed",
            "platform": "vesta",
            "workload": {"Congestion": {"seed": 0}},
            "policy": "fairshare",
            "config": null
        }"#;
        let spec: iosched_bench::campaign::ScenarioSpec = serde_json::from_str(closed).unwrap();
        let err = cmd_stream(&spec).unwrap_err();
        assert!(err.contains("iosched simulate"), "{err}");
        // …but a windowed closed scenario is fine (horizon semantics).
        let windowed = closed.replace("null", r#"{"warmup": 100.0}"#);
        let spec: iosched_bench::campaign::ScenarioSpec = serde_json::from_str(&windowed).unwrap();
        let (report, _) = cmd_stream(&spec).unwrap();
        assert!(report.contains("steady state"), "{report}");
    }

    #[test]
    fn campaign_prints_saturation_view_for_stream_sweeps() {
        let spec = CampaignSpec {
            workloads: vec![iosched_bench::experiments::load_sweep::stream_workload(
                0.0008,
            )],
            policies: vec![
                PolicySpec::parse("fairshare").unwrap(),
                PolicySpec::parse("mindilation").unwrap(),
            ],
            seeds: vec![0],
            threads: Some(2),
            ..iosched_bench::experiments::load_sweep::campaign(1)
        };
        let out = cmd_campaign(&spec).unwrap();
        for needle in ["steady state", "queue", "pooled dilation", "stream("] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn generate_kinds_parse() {
        assert_eq!(
            GenerateKind::parse("congested").unwrap(),
            GenerateKind::Congested
        );
        assert_eq!(GenerateKind::parse("mix-b").unwrap(), GenerateKind::MixB);
        assert!(GenerateKind::parse("chaos").is_err());
    }

    #[test]
    fn scenario_json_roundtrip() {
        let s = scenario();
        let json = s.to_json().unwrap();
        let back = ScenarioFile::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn from_json_rejects_invalid_scenarios() {
        let mut s = scenario();
        // Blow the processor budget.
        let app = iosched_model::AppSpec::periodic(
            s.apps.len(),
            iosched_model::Time::ZERO,
            s.platform.procs, // the whole machine again
            iosched_model::Time::secs(1.0),
            iosched_model::Bytes::gib(1.0),
            1,
        );
        s.apps.push(app);
        let json = serde_json::to_string(&s).unwrap();
        assert!(ScenarioFile::from_json(&json).is_err());
    }

    #[test]
    fn simulate_single_policy_renders_a_report() {
        let s = scenario();
        let out = cmd_simulate(&s, "maxsyseff", false).unwrap();
        assert!(out.contains("maxsyseff"));
        assert!(out.contains("upper limit"));
    }

    #[test]
    fn simulate_all_runs_the_full_roster() {
        let s = scenario();
        let out = cmd_simulate(&s, "all", false).unwrap();
        for name in ["roundrobin", "priority-maxsyseff", "fairshare", "fcfs"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn simulate_runs_an_offline_periodic_policy() {
        // Congested-moment scenarios are periodic, so the offline branch
        // of the roster works through plain `iosched simulate` too.
        let s = scenario();
        let out = cmd_simulate(&s, "periodic:cong", false).unwrap();
        assert!(out.contains("periodic:cong"), "{out}");
        assert!(out.contains("upper limit"));
    }

    #[test]
    fn simulate_with_burst_buffer_requires_spec() {
        let mut s = scenario();
        s.platform.burst_buffer = None;
        assert!(cmd_simulate(&s, "fairshare", true).is_err());
        s.platform = s.platform.with_default_burst_buffer();
        assert!(cmd_simulate(&s, "fairshare", true).is_ok());
    }

    #[test]
    fn periodic_command_reports_a_valid_schedule() {
        let s = scenario();
        let out = cmd_periodic(&s, "dilation", 0.1).unwrap();
        assert!(out.contains("best period"));
        assert!(out.contains("n_per"));
        assert!(cmd_periodic(&s, "bogus", 0.1).is_err());
        assert!(cmd_periodic(&s, "dilation", -1.0).is_err());
    }

    #[test]
    fn platforms_listing_mentions_all_three() {
        let out = cmd_platforms();
        assert!(out.contains("intrepid") && out.contains("mira") && out.contains("vesta"));
    }

    fn campaign_spec() -> CampaignSpec {
        CampaignSpec::from_json(
            r#"{
                "name": "cli-test",
                "platforms": ["vesta"],
                "workloads": [{"Congestion": {"seed": 0}}],
                "policies": ["maxsyseff", "mindilation", "fairshare"],
                "seeds": [1, 2, 3],
                "config": null,
                "threads": 2
            }"#,
        )
        .expect("test campaign parses")
    }

    #[test]
    fn campaign_spec_json_roundtrip() {
        let spec = campaign_spec();
        let json = spec.to_json().unwrap();
        assert_eq!(CampaignSpec::from_json(&json).unwrap(), spec);
    }

    #[test]
    fn campaign_reports_every_cell() {
        let out = cmd_campaign(&campaign_spec()).unwrap();
        for needle in [
            "maxsyseff",
            "mindilation",
            "fairshare",
            "upper%",
            "congestion",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
        assert!(out.contains("3 policies x 3 seed(s) = 9 runs in 3 cells"));
    }

    #[test]
    fn campaign_aggregates_match_sequential_simulation() {
        let spec = campaign_spec();
        let out = cmd_campaign(&spec).unwrap();
        // Recompute maxsyseff's mean SysEfficiency sequentially: the
        // congestion workload at campaign seeds 1..3 on vesta.
        let platform = platform_by_name("vesta").unwrap();
        let mut effs = Vec::new();
        for seed in [1, 2, 3] {
            let apps = congested_moment(&platform, seed);
            let result = simulate(
                &platform,
                &apps,
                PolicySpec::parse("maxsyseff")
                    .unwrap()
                    .build(&platform, &apps)
                    .unwrap()
                    .as_mut(),
                &SimConfig::default(),
            )
            .unwrap();
            effs.push(result.report.sys_efficiency);
        }
        let expected = format!("{:.2}", iosched_model::stats::mean(&effs) * 100.0);
        assert!(
            out.contains(&expected),
            "expected mean '{expected}' in:\n{out}"
        );
    }

    #[test]
    fn campaign_rejects_bad_specs() {
        let mut spec = campaign_spec();
        spec.policies.clear();
        assert!(cmd_campaign(&spec).is_err());
        let mut spec = campaign_spec();
        spec.threads = Some(0);
        assert!(cmd_campaign(&spec).is_err(), "zero threads must not panic");
        // Bad policy names and platforms are rejected at parse time.
        assert!(CampaignSpec::from_json(
            r#"{"name": "x", "platforms": ["vesta"],
                "workloads": [{"Congestion": {"seed": 0}}],
                "policies": ["lottery"], "seeds": [], "config": null, "threads": null}"#
        )
        .is_err());
        assert!(CampaignSpec::from_json(
            r#"{"name": "x", "platforms": ["summit"],
                "workloads": [{"Congestion": {"seed": 0}}],
                "policies": ["fcfs"], "seeds": [], "config": null, "threads": null}"#
        )
        .is_err());
        // Empty mixes are rejected by workload validation.
        assert!(CampaignSpec::from_json(
            r#"{"name": "x", "platforms": ["vesta"],
                "workloads": [{"Mix": {"config": {
                    "small": 0, "large": 0, "very_large": 0, "io_ratio": 0.2,
                    "work_range": [100.0, 400.0], "instances": [8, 12],
                    "release_jitter": 1.0}, "seed": 0}}],
                "policies": ["fcfs"], "seeds": [], "config": null, "threads": null}"#
        )
        .is_err());
    }

    #[test]
    fn campaign_runs_a_fig6_shaped_mini_sweep() {
        // The examples/campaign_fig6.json shape, shrunk for test speed:
        // mixes x policies x seeds with every policy spelled as a string.
        let spec = CampaignSpec {
            seeds: vec![0, 1],
            ..iosched_bench::experiments::fig06::campaign(2)
        };
        let out = cmd_campaign(&spec).unwrap();
        assert!(
            out.contains("24 cells") || out.contains("in 24 cells"),
            "{out}"
        );
        for needle in ["roundrobin", "priority-minmax-0.50", "mix("] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }
}
