//! Offline stand-in for `serde_derive`: derive macros for the vendored
//! `serde` stub, written directly against `proc_macro` (no syn/quote —
//! neither is reachable from this offline workspace).
//!
//! Supported item shapes (everything this workspace derives on):
//!
//! * structs with named fields → `Value::Map` keyed by field name,
//! * tuple structs — one field (newtype, incl. `#[serde(transparent)]`)
//!   serializes as the inner value; several fields as a `Value::Seq`,
//! * unit structs → `Value::Null`,
//! * enums, externally tagged like real serde: unit variants as the
//!   variant-name string, newtype variants as `{"Name": value}`, tuple
//!   variants as `{"Name": [..]}`, struct variants as `{"Name": {..}}`.
//!
//! Generic types are intentionally unsupported (the workspace has none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(&gen_serialize(&item))
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(&gen_deserialize(&item))
}

fn emit(code: &str) -> TokenStream {
    code.parse().expect("serde_derive generated invalid Rust")
}

// --- A tiny item model. -------------------------------------------------

enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields: just the count.
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    body: Body,
}

// --- Parsing. -----------------------------------------------------------

/// True when the attribute group tokens are `serde` `(` … `transparent` … `)`.
fn attr_is_transparent(tokens: &[TokenTree]) -> bool {
    match tokens {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent")),
        _ => false,
    }
}

/// Skip attributes (`#[...]`), reporting whether `#[serde(transparent)]`
/// was among them.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut transparent = false;
    while *pos + 1 < tokens.len() {
        let (TokenTree::Punct(p), TokenTree::Group(g)) = (&tokens[*pos], &tokens[*pos + 1]) else {
            break;
        };
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        transparent |= attr_is_transparent(&inner);
        *pos += 2;
    }
    transparent
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens[*pos], TokenTree::Ident(i) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let transparent = skip_attrs(&tokens, &mut pos);
    skip_vis(&tokens, &mut pos);
    let kind = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub does not support generic types ({name})");
    }
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_struct_fields(tokens.get(pos))),
        "enum" => {
            let TokenTree::Group(g) = &tokens[pos] else {
                panic!("serde_derive: malformed enum {name}");
            };
            Body::Enum(parse_variants(g.stream()))
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item {
        name,
        transparent,
        body,
    }
}

fn parse_struct_fields(tok: Option<&TokenTree>) -> Fields {
    match tok {
        None => Fields::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(other) => panic!("serde_derive: unexpected struct body {other}"),
    }
}

/// Field names of a `{ ... }` field list.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        let TokenTree::Ident(field) = &tokens[pos] else {
            panic!("serde_derive: expected field name, found {}", tokens[pos]);
        };
        fields.push(field.to_string());
        pos += 1;
        assert!(
            matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive: expected ':' after field {}",
            fields.last().unwrap()
        );
        pos += 1;
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Number of fields in a `( ... )` field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not introduce a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!("serde_derive: expected variant name, found {}", tokens[pos]);
        };
        let name = name.to_string();
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional discriminant and the trailing comma.
        while pos < tokens.len() {
            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
    }
    variants
}

// --- Codegen. -----------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Map(m)");
            s
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\"\
                             .to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            fields.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => format!("Ok({name})"),
        Body::Struct(Fields::Named(fields)) => {
            let mut s = format!(
                "let m = v.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected map for {name}\"))?;\n"
            );
            s.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::map_get(m, \"{f}\"))\
                     .map_err(|e| e.at(\"{name}.{f}\"))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Body::Struct(Fields::Tuple(1)) => format!(
            "Ok({name}(::serde::Deserialize::from_value(v).map_err(|e| e.at(\"{name}\"))?))"
        ),
        Body::Struct(Fields::Tuple(n)) => {
            let mut s = format!(
                "let s = v.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if s.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\")); }}\n"
            );
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            s.push_str(&format!("Ok({name}({}))", elems.join(", ")));
            s
        }
        Body::Enum(variants) => {
            let mut s = String::from("if let Some(tag) = v.as_str() {\nmatch tag {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    let vn = &v.name;
                    s.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                }
            }
            s.push_str("_ => {}\n}\n}\n");
            s.push_str(
                "if let Some(m) = v.as_map() {\nif m.len() == 1 {\n\
                 let (tag, inner) = &m[0];\nmatch tag.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        // Also accept `{"Name": null}`.
                        s.push_str(&format!(
                            "\"{vn}\" if matches!(inner, ::serde::Value::Null) => \
                             return Ok({name}::{vn}),\n"
                        ));
                    }
                    Fields::Tuple(1) => s.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(inner)\
                         .map_err(|e| e.at(\"{name}::{vn}\"))?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                            .collect();
                        s.push_str(&format!(
                            "\"{vn}\" => {{\nlet s = inner.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                             if s.len() != {n} {{ return Err(::serde::Error::custom(\
                             \"wrong arity for {name}::{vn}\")); }}\n\
                             return Ok({name}::{vn}({}));\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::map_get(mm, \"{f}\"))\
                                     .map_err(|e| e.at(\"{name}::{vn}.{f}\"))?"
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "\"{vn}\" => {{\nlet mm = inner.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected map for {name}::{vn}\"))?;\n\
                             return Ok({name}::{vn} {{ {} }});\n}}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            s.push_str("_ => {}\n}\n}\n}\n");
            s.push_str(&format!(
                "Err(::serde::Error::custom(\"unrecognized variant for {name}\"))"
            ));
            s
        }
    };
    // `transparent` newtypes already deserialize from the inner value.
    let _ = item.transparent;
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
