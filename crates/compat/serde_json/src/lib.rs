//! Offline stand-in for `serde_json`: a JSON printer/parser over the
//! vendored `serde` stub's [`Value`] tree. Numbers round-trip exactly
//! (integers up to 2^53 print without a fractional part; floats print in
//! Rust's shortest-roundtrip form). Non-finite floats print as `null`,
//! mirroring real serde_json's lossy behaviour under `arbitrary_precision`
//! disabled.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize pretty JSON into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::custom(e.to_string()))
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserialize from a reader.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::custom(e.to_string()))?;
    from_str(&buf)
}

// --- Printing. ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_str(out, s),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, item) = &entries[i];
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::float_cmp
)]
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parsing. -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' but found '{}' at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' but found '{}' at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Decode a surrogate pair when present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_basic_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": null, "c": "x\ny", "d": true}"#).unwrap();
        let s = to_string(&v).unwrap();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = parse(r#"{"nested": {"list": [{"k": 1}, {}]}}"#).unwrap();
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            1e-12,
            123_456_789.123_456_79,
            f64::MIN_POSITIVE,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} reparsed as {back}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
