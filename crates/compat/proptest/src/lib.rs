//! Offline stand-in for the `proptest` crate.
//!
//! Supports the API subset this workspace's property tests use: range and
//! tuple strategies, `prop_map`/`prop_flat_map`, `Just`, `any::<bool>()`,
//! `prop::collection::vec`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible
//! runs), and failing cases are reported but **not shrunk**.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for one proptest argument.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Build a dependent strategy from generated values.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    #[allow(clippy::cast_possible_truncation)]
                    let u = rng.unit_f64() as $t;
                    self.start + (self.end - self.start) * u
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    #[allow(clippy::cast_possible_truncation)]
                    let u = rng.unit_f64() as $t;
                    lo + (hi - lo) * u
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                #[allow(clippy::cast_lossless, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                #[allow(clippy::cast_lossless, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// A vector of strategies generates element-wise (fixed length).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy for [`any`].
    #[derive(Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()`: the canonical strategy for `T`.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite, sign-balanced, spanning many magnitudes.
            let mag = rng.unit_f64() * 600.0 - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
            sign * 10f64.powf(mag / 100.0)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing vectors with strategy-generated elements.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            #[allow(clippy::cast_possible_truncation)]
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-proptest configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Override the case count.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Fail with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }

        /// Alias kept for API parity with real proptest.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::fail(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the `proptest!` macro passes the
        /// test function name, so every test has its own fixed stream).
        #[must_use]
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            #[allow(clippy::cast_precision_loss)]
            let x = (self.next_u64() >> 11) as f64;
            x * (1.0 / 9_007_199_254_740_992.0)
        }
    }
}

pub mod prelude {
    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a proptest body (early-returns a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {:?} != {:?}", l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    };
}

/// Define property tests over strategy-generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    (@body ($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at deterministic case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @body ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, f in -1.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.5..1.5).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..5, any::<bool>()), 1..8),
            w in (1usize..4).prop_flat_map(|n| {
                (0..n).map(|_| 0i32..10).collect::<Vec<_>>()
            }),
            j in Just(7u8),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(!w.is_empty() && w.len() < 4);
            prop_assert_eq!(j, 7u8);
            for (a, _) in &v {
                prop_assert!(*a < 5, "element {} escaped its range", a);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Config headers parse and bound the case count.
        #[test]
        fn config_header_is_honored(x in 0f32..1.0) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn prop_assert_produces_a_test_case_error() {
        let run = |x: u8| -> Result<(), TestCaseError> {
            prop_assert!(x > 200, "x was {}", x);
            Ok(())
        };
        assert!(run(250).is_ok());
        let err = run(3).unwrap_err();
        assert_eq!(err.to_string(), "x was 3");
    }
}
