//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Implements exactly what this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer and
//! float ranges. The generator is SplitMix64 — deterministic, fast, and
//! statistically fine for workload synthesis (not cryptographic).
//!
//! Note: streams differ from real `rand`'s ChaCha-based `StdRng`, so
//! seeded workloads are reproducible *within* this workspace only.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface (blanket-implemented for every
/// [`RngCore`], mirroring real rand).
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform f64 in `[0, 1)` from 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let x = (rng.next_u64() >> 11) as f64;
    x * (1.0 / 9_007_199_254_740_992.0)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                #[allow(clippy::cast_possible_truncation)]
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                #[allow(clippy::cast_possible_truncation)]
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            #[allow(clippy::cast_lossless, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            #[allow(clippy::cast_lossless, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..=15);
            assert!((5..=15).contains(&x));
            let y = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unsized_rng_callers_compile() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(1u64..=6)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!((1..=6).contains(&draw(&mut rng)));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }
}
