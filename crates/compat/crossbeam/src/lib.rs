//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` module subset the workspace uses: cloneable
//! MPMC unbounded channels with blocking, timeout and disconnect
//! semantics, implemented over `Mutex<VecDeque>` + `Condvar`. Perfectly
//! adequate for the IOR harness's request/complete protocol traffic
//! (tens of messages per simulated second), if slower than real
//! crossbeam under heavy contention.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The sending side disconnected and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Outcome of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the window.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Outcome of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Self {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.chan.state.lock().unwrap().senders -= 1;
            self.chan.ready.notify_all();
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.ready.wait(state).unwrap();
            }
        }

        /// Block until a message, disconnection, or the timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, timed_out) = self.chan.ready.wait_timeout(state, remaining).unwrap();
                state = guard;
                if timed_out.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap();
            if let Some(msg) = state.queue.pop_front() {
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Self {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_after_all_senders_drop_errors() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_after_all_receivers_drop_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn timeout_fires_when_idle() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(err, Err(RecvTimeoutError::Timeout));
            drop(tx);
            let err = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(err, Err(RecvTimeoutError::Disconnected));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
                if got.len() == 100 {
                    break;
                }
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
