//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the API subset the
//! workspace's benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `sample_size`, the
//! `criterion_group!`/`criterion_main!` macros). Each benchmark is
//! auto-calibrated (iteration count doubles until the sample window
//! exceeds ~60 ms), then reported as `mean ns/iter` over the samples on
//! stdout, one line per benchmark:
//!
//! ```text
//! bench sim_congested_moment/maxsyseff/42 ... 1234567 ns/iter (min 1.2e6, max 1.3e6, 20 samples)
//! ```
//!
//! Under `cargo test` (the harness receives `--test`) every benchmark
//! body runs exactly once, as a smoke check.

use std::time::Instant;

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Top-level harness state.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Criterion {
    /// Build from the process arguments (`--test` selects smoke mode).
    #[must_use]
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            test_mode,
            sample_size: 10,
        }
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Bench directly on the harness (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&id.id, self.sample_size, self.test_mode, &mut f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.test_mode, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group (formatting no-op in this stub).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, test_mode: bool, f: &mut F) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
        smoke: test_mode,
    };
    if test_mode {
        f(&mut bencher);
        println!("bench {id} ... ok (smoke)");
        return;
    }
    // Calibrate: grow the per-sample iteration count until one sample
    // takes at least ~60 ms (or the count is plainly large enough).
    loop {
        f(&mut bencher);
        if bencher.elapsed_ns >= 6e7 || bencher.iters >= 1 << 20 {
            break;
        }
        bencher.iters *= 2;
    }
    let iters = bencher.iters;
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut bencher);
        #[allow(clippy::cast_precision_loss)]
        per_iter.push(bencher.elapsed_ns / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "bench {id} ... {mean:.0} ns/iter (min {min:.0}, max {max:.0}, {} samples x {iters} iters)",
        per_iter.len()
    );
}

/// Timing context handed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
    smoke: bool,
}

impl Bencher {
    /// Time `routine`, running it `iters` times per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = if self.smoke { 1 } else { self.iters };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.elapsed_ns = start.elapsed().as_nanos() as f64;
        }
    }
}

/// Group benchmark functions under one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}
