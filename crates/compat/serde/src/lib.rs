//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds on machines with no crates.io access, so the
//! serialization layer is vendored: a small value-tree data model
//! ([`Value`]), the [`Serialize`]/[`Deserialize`] traits over it, and
//! derive macros re-exported from the sibling `serde_derive` stub. The
//! public surface mirrors the subset of real serde the workspace uses
//! (`derive(Serialize, Deserialize)`, `#[serde(transparent)]`), so
//! swapping the real crates back in is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / a missing field / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (field order preserved for stable output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map if this is one.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence if this is one.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

/// Field lookup used by derived `Deserialize` impls; missing keys read as
/// [`Value::Null`] so `Option` fields default to `None`.
#[must_use]
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> &'a Value {
    map.iter().find(|(k, _)| k == key).map_or(&NULL, |(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Attach location context (derived impls tag the struct.field path).
    #[must_use]
    pub fn at(mut self, context: &str) -> Self {
        self.msg = format!("{context}: {}", self.msg);
        self
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- Primitive impls. ---------------------------------------------------

/// Largest magnitude (2^53) whose integers are all exactly representable
/// in an `f64` — the precision limit of this stub's numeric data model.
const MAX_SAFE_INT: f64 = 9_007_199_254_740_992.0;

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(clippy::cast_precision_loss)]
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                // Reject anything outside the exactly-representable range
                // *before* casting: saturating float→int casts would
                // otherwise clamp boundary values (e.g. 2^64 → u64::MAX)
                // instead of erroring, and integers above 2^53 have
                // already lost precision in the f64 data model.
                if n.fract() != 0.0 || n.abs() > MAX_SAFE_INT {
                    return Err(Error::custom(format!(
                        concat!("{} is not an exactly-representable ", stringify!($t)),
                        n
                    )));
                }
                #[allow(clippy::cast_lossless)]
                let wide = n as i128;
                #[allow(clippy::cast_lossless)]
                if wide < (<$t>::MIN as i128) || wide > (<$t>::MAX as i128) {
                    return Err(Error::custom(format!(
                        concat!("{} is out of range for ", stringify!($t)),
                        n
                    )));
                }
                Ok(wide as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple array"))?;
                if s.len() != $n {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} elements", $n, s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_within_the_safe_range() {
        for x in [0u64, 1, 2_u64.pow(53)] {
            let v = x.to_value();
            assert_eq!(u64::from_value(&v).unwrap(), x);
        }
        assert_eq!(i64::from_value(&(-42i64).to_value()).unwrap(), -42);
    }

    #[test]
    fn out_of_range_and_imprecise_integers_error_instead_of_clamping() {
        // 2^64: the saturating cast would clamp this to u64::MAX whose
        // f64 image is 2^64 again — must be rejected, not accepted.
        assert!(u64::from_value(&Value::Num(18_446_744_073_709_551_616.0)).is_err());
        // Above 2^53: silently imprecise in the f64 data model.
        assert!(u64::from_value(&Value::Num(9_007_199_254_740_994.0)).is_err());
        // Negative into unsigned, fractional, and narrow-type overflow.
        assert!(u64::from_value(&Value::Num(-1.0)).is_err());
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
        assert!(u8::from_value(&Value::Num(256.0)).is_err());
        assert!(i8::from_value(&Value::Num(-129.0)).is_err());
    }
}
