//! # iosched-model
//!
//! Platform and application model for *"Scheduling the I/O of HPC
//! applications under congestion"* (Gainaru, Aupy, Benoit, Cappello, Robert,
//! Snir — IPDPS 2015).
//!
//! This crate is the shared vocabulary of the workspace. It contains no
//! scheduling logic; it defines:
//!
//! * strongly-typed units ([`Time`], [`Bytes`], [`Bw`]) with the
//!   floating-point tolerance discipline used everywhere else
//!   ([`units::EPS`]),
//! * the platform model of §2 of the paper ([`Platform`]): `N` unit-speed
//!   processors with per-processor I/O bandwidth `b` and a centralized I/O
//!   system of bandwidth `B`, optionally fronted by a burst buffer,
//! * the application model ([`AppSpec`]): released at `r_k`, running on
//!   `β(k)` dedicated processors, executing instances of `w` units of
//!   computation followed by `vol_io` bytes of I/O,
//! * progress accounting ([`progress::AppProgress`]) implementing the
//!   application efficiency `ρ̃(k)(t)` and its congestion-free optimum
//!   `ρ(k)(t)`,
//! * the two optimization objectives of §2.2
//!   ([`objectives::ObjectiveReport`]),
//! * descriptive statistics used by every experiment ([`stats::Summary`]).
//!
//! ## Quick example
//!
//! ```
//! use iosched_model::{AppSpec, Platform, Time, Bytes};
//!
//! let platform = Platform::intrepid();
//! let app = AppSpec::periodic(0, Time::ZERO, 2_048, Time::secs(100.0),
//!                             Bytes::gib(512.0), 10);
//! // Dedicated-mode I/O time of one instance: vol / min(β·b, B).
//! let tio = platform.dedicated_io_time(app.procs(), app.instance(0).vol);
//! assert!(tio > Time::ZERO);
//! ```

pub mod app;
pub mod error;
pub mod interference;
pub mod lossless;
pub mod objectives;
pub mod platform;
pub mod progress;
pub mod stats;
pub mod units;

pub use app::{AppId, AppSpec, Instance, InstancePattern};
pub use error::ModelError;
pub use interference::Interference;
pub use objectives::{AppOutcome, ObjectiveAccumulator, ObjectiveReport};
pub use platform::{BurstBufferSpec, Platform};
pub use progress::AppProgress;
pub use stats::Summary;
pub use units::{Bw, Bytes, Time, EPS};
