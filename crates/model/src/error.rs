//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Validation and construction errors for model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The platform description is internally inconsistent (e.g. zero
    /// processors, non-positive bandwidth, NaN anywhere).
    InvalidPlatform(String),
    /// An application description is invalid (zero processors, no
    /// instances, negative work or volume, …).
    InvalidApp(String),
    /// A set of applications does not fit the platform (e.g. `Σ β(k) > N`:
    /// the paper assumes dedicated computational resources).
    InfeasibleAssignment(String),
    /// A schedule violates a model constraint; the payload says which.
    InvalidSchedule(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidPlatform(msg) => write!(f, "invalid platform: {msg}"),
            Self::InvalidApp(msg) => write!(f, "invalid application: {msg}"),
            Self::InfeasibleAssignment(msg) => {
                write!(f, "infeasible processor assignment: {msg}")
            }
            Self::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_payload() {
        let e = ModelError::InvalidPlatform("zero processors".into());
        assert!(e.to_string().contains("zero processors"));
        let e = ModelError::InfeasibleAssignment("sum beta 10 > N 4".into());
        assert!(e.to_string().contains("sum beta"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn Error) {}
        takes_err(&ModelError::InvalidApp("x".into()));
    }
}
